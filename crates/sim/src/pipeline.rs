//! The cycle-level pipeline: fetch → decode/rename/steer → issue →
//! execute → commit.
//!
//! ## Modelling decisions (also summarised in DESIGN.md §6)
//!
//! * **Trace-driven wrong path**: the functional stream contains only
//!   committed-path instructions, so a mispredicted branch stalls fetch
//!   until it resolves instead of fetching wrong-path work. No ROB
//!   squash ever happens, which also means µop sequence numbers in the
//!   ROB are contiguous.
//! * **Copies are ROB entries**: a consumer and the copies it needs are
//!   allocated atomically at dispatch, which makes physical-register
//!   freeing uniform (displaced mappings are released when the
//!   displacing µop commits) and rules out rename deadlock.
//! * **Local bypass 0 cycles / remote 1 cycle**: an ALU result produced
//!   by a µop issued at cycle *t* with latency *L* is usable by local
//!   consumers issuing at *t+L* and, through a copy issued at *t′*, by
//!   remote consumers at *t′+1+copy_latency*.
//! * **Store data**: integer store data must reside in the store's
//!   cluster (a copy is inserted if needed, per §2 of the paper); FP
//!   store data is read from the FP register file at commit without a
//!   copy, since FP values are never replicated.
//!
//! ## Performance notes (DESIGN.md §6)
//!
//! The backend offers two issue engines selected by
//! [`SimConfig::engine`]; both are **bit-for-bit stat-identical**
//! (enforced by `tests/engine_equivalence.rs` across every steering
//! scheme):
//!
//! * [`Engine::Scan`] — the executable specification: every cycle
//!   re-checks every IQ entry's every source register
//!   ([`Simulator::entry_ready`]), both for the [`SteerCtx`] ready
//!   counts and for the issue scan. O(IQ × sources) per cycle.
//! * [`Engine::Event`] — the default, event-driven engine:
//!   - each cluster's [`RegFile`] keeps a **waiter list** per physical
//!     register; a dispatching µop whose source is still in flight
//!     registers itself and carries a pending-operand counter;
//!   - when `set_ready`/`set_ready_from_copy` fires (the producer's
//!     ready cycle becomes known), waiters decrement their counter and,
//!     at zero, push a `(cycle, seq)` event onto the cluster's
//!     **timeline** (a min-heap) for `max(dispatch+1, max src ready)`;
//!   - at the start of each cycle due events drain onto the cluster's
//!     **ready list**, kept sorted by µop seq (a per-[`ExecClass`]
//!     breakdown is derivable on demand for diagnostics), so the
//!     [`SteerCtx`] ready counts are O(1) reads and the issue stage
//!     pops oldest-first instead of scanning the queue;
//!   - **skip-ahead**: when the machine is quiescent (no ready entry,
//!     empty fetch buffer, no load awaiting disambiguation), the main
//!     loop jumps to the next timeline / completion / fetch event,
//!     performing only the per-cycle bookkeeping (balance sample,
//!     replication integral, [`Steering::on_cycle`]) for the skipped
//!     cycles — those cycles are provably no-ops in the scan engine.
//!
//!   The invariant that keeps the engines identical is **order
//!   preservation**: the ready list enumerates exactly the entries the
//!   scan would have found ready, in the same oldest-first (by µop
//!   seq) order, so FU/bus/port arbitration sees the same request
//!   sequence every cycle. Wakeup events never fire retroactively:
//!   every `set_ready` cycle lies strictly in the future at the time
//!   it is announced (latencies are ≥ 1).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use dca_isa::{ClusterNeed, ExecClass, Opcode, Reg};
use dca_prog::{Checkpoint, DynInst, Interp, Memory, Program};
use dca_uarch::{
    latency_of, BranchPredictor, CacheStats, Combined, FuPool, FuPoolConfig, MemHierarchy,
    MemLevel, PortMeter, PredictorStats, SnapshotError, UarchSnapshot,
};

use crate::config::{ClusterId, ClusterSet, Engine, SimConfig, MAX_CLUSTERS};
use crate::lsq::{LoadState, Lsq, LsqEntry};
use crate::rename::{Displaced, PhysReg, RegFile, RenameMap, IN_FLIGHT};
use crate::stats::SimStats;
use crate::steering::{rank_clusters, Allowed, DecodedView, SrcView, SteerCtx, Steering};

/// Cycles without a single commit (with work in flight) after which the
/// simulator declares a livelock (a model bug, not a program property).
const NO_PROGRESS_LIMIT: u64 = 100_000;

#[derive(Copy, Clone, Debug)]
struct Fetched {
    d: DynInst,
    available_at: u64,
    mispredicted: bool,
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum UopKind {
    /// ALU/branch/jump/nop work executed in a cluster.
    Normal,
    /// Inter-cluster copy (dense id for critical-communication stats;
    /// 64-bit because the id counts *every* copy of a run and a
    /// paper-scale-or-longer run is not bounded by 2^32 of them).
    Copy { id: u64 },
    /// Load (EA µop + memory access via the LSQ).
    Load,
    /// Store (EA µop; writes memory at commit).
    Store,
}

#[derive(Clone, Debug)]
struct RobEntry {
    seq: u64,
    dyn_seq: u64,
    /// Static index of the program instruction (for copies: of the
    /// consumer the copy was inserted for) — the trace resolves the
    /// instruction text through it, keeping this entry small.
    sidx: u32,
    pc: u64,
    cluster: ClusterId,
    kind: UopKind,
    is_program: bool,
    /// Destination mapping installed at rename.
    dst: Option<(ClusterId, PhysReg)>,
    /// Mappings displaced at rename (at most one per cluster, held
    /// inline), freed at commit.
    displaced: Displaced,
    /// Cycle the instruction entered the fetch buffer.
    fetch_at: u64,
    /// Cycle the µop was dispatched.
    dispatch_at: u64,
    /// Cycle the µop left its instruction queue (nops never do).
    issue_at: Option<u64>,
    /// Cycle the µop's result is architecturally complete.
    complete_at: Option<u64>,
    mispredicted: bool,
    is_cond_branch: bool,
}

#[derive(Clone, Debug)]
struct IqEntry {
    seq: u64,
    /// Dynamic *program-instruction* sequence (what `DecodedView::seq`
    /// carried at steering time); copies inherit their consumer's.
    dyn_seq: u64,
    sidx: u32,
    /// Cluster whose queue holds this entry (copies sit in the *source*
    /// cluster and write into `copy_dst`).
    cluster: ClusterId,
    issue_class: ExecClass,
    kind: UopKind,
    srcs: [Option<PhysReg>; 2],
    /// For copies: destination cluster/register (sources are local).
    copy_dst: Option<(ClusterId, PhysReg)>,
    dst: Option<PhysReg>,
    ea: Option<u64>,
    dispatched_at: u64,
    mispredicted: bool,
    /// Event engine: source operands whose ready cycle is still
    /// unknown (producer not yet issued). The entry is scheduled onto
    /// the timeline when this reaches zero.
    pending: u8,
    /// Event engine: latest known source-ready cycle.
    ready_cycle: u64,
}

/// Dense index for the per-[`ExecClass`] ready counters.
fn class_index(c: ExecClass) -> usize {
    match c {
        ExecClass::IntAlu => 0,
        ExecClass::IntMul => 1,
        ExecClass::IntDiv => 2,
        ExecClass::FpAlu => 3,
        ExecClass::FpMul => 4,
        ExecClass::FpDiv => 5,
        ExecClass::Load => 6,
        ExecClass::Store => 7,
        ExecClass::Ctrl => 8,
        ExecClass::Nop => 9,
    }
}

/// Number of [`ExecClass`] slots tracked by [`IqBuf::ready_by_class`].
const N_CLASSES: usize = 10;

/// One cluster's instruction queue plus the event-engine wakeup
/// structures.
///
/// Entries live in a sequence-indexed ring: every queued µop is also
/// in the ROB, so in-flight sequence numbers span less than `rob_size`
/// and `seq & mask` (capacity rounded up to a power of two) can never
/// collide. All queue operations are O(1); program-order iteration
/// walks the ROB's sequence window.
struct IqBuf {
    /// Ring of queued entries, indexed by `seq & mask`.
    slots: Box<[Option<IqEntry>]>,
    mask: usize,
    len: usize,
    /// Sequences of entries with all operands ready, sorted oldest
    /// first. The issue stage pops from the front; [`SteerCtx::ready`]
    /// is this list's length (event engine).
    ready: Vec<u64>,
    /// Future wakeups as `(cycle, seq)` in a min-heap: entries whose
    /// operands are all known move here until their ready cycle is due.
    timeline: BinaryHeap<Reverse<(u64, u64)>>,
    /// High-watermark of `timeline` depth over the run (observability;
    /// reported as the `event_queue_peak` gauge after each run).
    timeline_peak: u64,
}

impl IqBuf {
    /// A queue able to hold every µop of a `rob_size`-entry window.
    fn for_rob(rob_size: u32) -> IqBuf {
        let cap = (rob_size as usize).next_power_of_two();
        IqBuf {
            slots: (0..cap).map(|_| None).collect(),
            mask: cap - 1,
            len: 0,
            ready: Vec::with_capacity(cap),
            timeline: BinaryHeap::with_capacity(cap),
            timeline_peak: 0,
        }
    }

    /// Schedules a wakeup at `when`, tracking the high-watermark.
    fn push_event(&mut self, when: u64, seq: u64) {
        self.timeline.push(Reverse((when, seq)));
        self.timeline_peak = self.timeline_peak.max(self.timeline.len() as u64);
    }

    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, seq: u64) -> Option<&IqEntry> {
        self.slots[seq as usize & self.mask]
            .as_ref()
            .filter(|e| e.seq == seq)
    }

    fn get_mut(&mut self, seq: u64) -> Option<&mut IqEntry> {
        self.slots[seq as usize & self.mask]
            .as_mut()
            .filter(|e| e.seq == seq)
    }

    fn insert(&mut self, e: IqEntry) {
        let slot = &mut self.slots[e.seq as usize & self.mask];
        debug_assert!(slot.is_none(), "IQ ring slot collision");
        *slot = Some(e);
        self.len += 1;
    }

    fn remove(&mut self, seq: u64) -> Option<IqEntry> {
        let slot = &mut self.slots[seq as usize & self.mask];
        if slot.as_ref().is_some_and(|e| e.seq == seq) {
            self.len -= 1;
            slot.take()
        } else {
            None
        }
    }

    /// Moves every timeline event due at or before `now` onto the
    /// ready list, restoring oldest-first order.
    fn drain_due(&mut self, now: u64) {
        let before = self.ready.len();
        while let Some(&Reverse((cycle, seq))) = self.timeline.peek() {
            if cycle > now {
                break;
            }
            self.timeline.pop();
            debug_assert!(self.get(seq).is_some(), "scheduled entry is queued");
            self.ready.push(seq);
        }
        if self.ready.len() > before {
            self.ready.sort_unstable();
        }
    }

    /// Removes the `i`-th ready entry (by position) from both the
    /// ready list and the queue.
    fn take_ready(&mut self, i: usize) -> IqEntry {
        let seq = self.ready.remove(i);
        self.remove(seq).expect("ready entry is queued")
    }

    /// Cycle of the earliest pending timeline event.
    fn next_event(&self) -> Option<u64> {
        self.timeline.peek().map(|&Reverse((cycle, _))| cycle)
    }

    /// Ready-entry counts per execution class, computed on demand
    /// (diagnostics only — the hot path carries no per-class state).
    fn ready_class_histogram(&self) -> [u32; N_CLASSES] {
        let mut counts = [0u32; N_CLASSES];
        for &seq in &self.ready {
            if let Some(e) = self.get(seq) {
                counts[class_index(e.issue_class)] += 1;
            }
        }
        counts
    }
}

/// Fetch-stall state while a mispredicted branch is in flight. Only one
/// can be outstanding because fetch stops at the first one.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum BranchWait {
    /// No outstanding mispredicted branch.
    None,
    /// Fetched but not yet dispatched (µop seq unknown).
    Fetched,
    /// Dispatched; waiting for this µop to issue and resolve.
    Dispatched(u64),
}

/// The simulator: owns the machine state and drives one program's
/// dynamic stream through the timing model.
///
/// See the crate-level docs for an end-to-end example.
pub struct Simulator<'p> {
    cfg: SimConfig,
    prog: &'p Program,
    interp: Option<Interp<'p>>,
    // frontend
    fetch_buf: VecDeque<Fetched>,
    pending: Option<DynInst>,
    icache_ready_at: u64,
    resume_at: u64,
    branch_wait: BranchWait,
    stream_done: bool,
    bpred: Combined,
    // backend
    rob: VecDeque<RobEntry>,
    rob_head_seq: u64,
    /// Per-cluster backend state, stored inline so the hot loops index
    /// at fixed offsets with no heap indirection (and, with
    /// [`ClusterId::index`]'s mask, no bounds checks). Entries past
    /// `n` are empty placeholders; live loops slice to `[..self.n]`.
    iq: [IqBuf; MAX_CLUSTERS],
    regs: [RegFile; MAX_CLUSTERS],
    map: RenameMap,
    lsq: Lsq,
    fus: [FuPool; MAX_CLUSTERS],
    hierarchy: MemHierarchy,
    dports: PortMeter,
    bus_used: [u32; MAX_CLUSTERS],
    rf_reads_used: [u32; MAX_CLUSTERS],
    rf_writes_used: [u32; MAX_CLUSTERS],
    now: u64,
    last_progress_cycle: u64,
    uop_seq: u64,
    copy_critical: Vec<bool>,
    /// Reused buffer of candidate load sequences (memory stage).
    load_scratch: Vec<u64>,
    /// Reused buffer of woken waiter sequences (event engine).
    wake_scratch: Vec<u64>,
    /// Reused buffer of I-cache lines touched by one fetch group.
    fetch_lines: Vec<u64>,
    /// Steering decision for the instruction at the head of the fetch
    /// buffer, kept across resource-stall retries so [`Steering::steer`]
    /// is called exactly once per decoded instruction (the documented
    /// contract — re-steering would let stateful schemes advance their
    /// state once per *retry cycle* instead of once per instruction).
    steer_cache: Option<(u64, ClusterId)>,
    /// Per-µop pipeline trace, collected only when enabled.
    trace: Option<crate::Trace>,
    stats: SimStats,
    /// Number of live clusters (`cfg.n()`, cached for the hot loops).
    n: usize,
    fp_cluster: ClusterId,
    /// Clusters able to execute complex integer work (mul/div units).
    int_complex_set: ClusterSet,
    /// FP-capable clusters.
    fp_set: ClusterSet,
    /// Clusters with simple integer ALUs (candidates for free
    /// instructions).
    simple_set: ClusterSet,
    /// Cache/predictor counter snapshot taken at the end of
    /// [`Simulator::warm_functional`], so the reported statistics cover
    /// only the measured (detailed) part of the run.
    warm_baseline: WarmBaseline,
}

/// Hierarchy/predictor counters at the warming→measurement boundary.
#[derive(Copy, Clone, Debug, Default)]
struct WarmBaseline {
    l1i: CacheStats,
    l1d: CacheStats,
    l2: CacheStats,
    bpred: PredictorStats,
}

impl<'p> Simulator<'p> {
    /// Builds a simulator for `prog` with the given initial memory.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`SimConfig::validate`].
    pub fn new(cfg: &SimConfig, prog: &'p Program, mem: Memory) -> Simulator<'p> {
        if let Err(e) = cfg.validate() {
            panic!("invalid simulator configuration: {e}");
        }
        let n = cfg.n();
        let fp_cluster = cfg.fp_cluster();
        // Capability masks steering decisions are clamped to: which
        // clusters hold the FU kind an instruction needs. On the paper
        // machines these reduce to the original rules (complex integer
        // → cluster 0, FP → cluster 1, free → both — or cluster 0 only
        // on the base machine, whose FP cluster has no simple ALUs).
        let mut int_complex_set = ClusterSet::EMPTY;
        let mut fp_set = ClusterSet::EMPTY;
        let mut simple_set = ClusterSet::EMPTY;
        for c in cfg.clusters() {
            let f = &cfg.fus[c.index()];
            if f.int_muldiv > 0 {
                int_complex_set.insert(c);
            }
            if f.fp_alu > 0 || f.fp_muldiv > 0 {
                fp_set.insert(c);
            }
            if f.int_alu > 0 {
                simple_set.insert(c);
            }
        }
        let mut regs: [RegFile; MAX_CLUSTERS] =
            std::array::from_fn(|c| RegFile::new(if c < n { cfg.phys_regs[c] as usize } else { 0 }));
        let mut map = RenameMap::new(fp_cluster);
        // Architectural state: integer registers live in the integer
        // cluster, FP registers in the FP cluster; everything ready.
        for r in 1..32u8 {
            let p = regs[ClusterId::INT.index()]
                .alloc()
                .expect("config validated: enough int registers");
            map.define(Reg::int(r), ClusterId::INT, p);
            regs[ClusterId::INT.index()].set_ready(p, 0);
        }
        for r in 0..32u8 {
            let p = regs[fp_cluster.index()]
                .alloc()
                .expect("config validated: enough fp registers");
            map.define(Reg::fp(r), fp_cluster, p);
            regs[fp_cluster.index()].set_ready(p, 0);
        }
        Simulator {
            prog,
            interp: Some(Interp::new(prog, mem)),
            fetch_buf: VecDeque::with_capacity(cfg.fetch_buffer as usize),
            pending: None,
            icache_ready_at: 0,
            resume_at: 0,
            branch_wait: BranchWait::None,
            stream_done: false,
            bpred: Combined::new(cfg.bpred),
            rob: VecDeque::with_capacity(cfg.rob_size as usize),
            rob_head_seq: 0,
            iq: std::array::from_fn(|c| IqBuf::for_rob(if c < n { cfg.rob_size } else { 1 })),
            regs,
            map,
            lsq: Lsq::new(),
            fus: std::array::from_fn(|c| {
                FuPool::new(if c < n {
                    cfg.fus[c]
                } else {
                    FuPoolConfig {
                        int_alu: 0,
                        int_muldiv: 0,
                        fp_alu: 0,
                        fp_muldiv: 0,
                    }
                })
            }),
            hierarchy: MemHierarchy::new(cfg.hierarchy),
            dports: PortMeter::new(cfg.dcache_ports),
            bus_used: [0; MAX_CLUSTERS],
            rf_reads_used: [0; MAX_CLUSTERS],
            rf_writes_used: [0; MAX_CLUSTERS],
            now: 0,
            last_progress_cycle: 0,
            uop_seq: 0,
            copy_critical: Vec::new(),
            load_scratch: Vec::new(),
            wake_scratch: Vec::new(),
            fetch_lines: Vec::new(),
            steer_cache: None,
            trace: None,
            stats: SimStats::default(),
            n,
            fp_cluster,
            int_complex_set,
            fp_set,
            simple_set,
            warm_baseline: WarmBaseline::default(),
            cfg: cfg.clone(),
        }
    }

    /// Builds a simulator warm-started from an interpreter
    /// [`Checkpoint`]: the functional stream resumes at the snapshot's
    /// architectural state (registers, memory, PC) while the timing
    /// machine — caches, predictor, queues — starts cold. Follow with
    /// [`Simulator::warm_functional`] to warm the memory structures
    /// before measuring, and remember that [`Simulator::run_mut`]'s
    /// `max_insts` is an *absolute* dynamic-instruction budget
    /// (`ckpt.seq() + interval` runs an `interval`-long slice).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`SimConfig::validate`].
    pub fn resume_from(cfg: &SimConfig, prog: &'p Program, ckpt: &Checkpoint) -> Simulator<'p> {
        let mut sim = Simulator::new(cfg, prog, Memory::new());
        sim.interp = Some(Interp::resume(prog, ckpt));
        sim
    }

    /// Captures the simulator's current cache-hierarchy and
    /// branch-predictor state (e.g. right after
    /// [`Simulator::warm_functional`], to compare detached and
    /// continuous warming — `tests/warming_equivalence.rs`).
    pub fn uarch_snapshot(&self) -> UarchSnapshot {
        UarchSnapshot::capture(&self.hierarchy, &self.bpred)
    }

    /// Restores a continuously-warmed [`UarchSnapshot`] into the
    /// machine and makes its counters the warming baseline, so the
    /// reported statistics cover only the measured interval — the
    /// continuous-warming replacement for [`Simulator::warm_functional`]
    /// (DESIGN.md §9). Call right after [`Simulator::resume_from`],
    /// before any detailed cycle runs.
    ///
    /// # Errors
    ///
    /// Fails, leaving the machine untouched, when the snapshot's cache
    /// or predictor geometry does not match this machine's
    /// configuration.
    pub fn restore_uarch(&mut self, snap: &UarchSnapshot) -> Result<(), SnapshotError> {
        snap.restore(&mut self.hierarchy, &mut self.bpred)?;
        let (l1i, l1d, l2, bpred) = snap.counters();
        self.warm_baseline = WarmBaseline { l1i, l1d, l2, bpred };
        Ok(())
    }

    /// Functional-warming mode of the sampled-simulation harness
    /// (DESIGN.md §7): advances the functional stream by at most
    /// `insts` instructions, updating the cache hierarchy and the
    /// branch predictor — but not the backend — exactly as fetch,
    /// the memory stage and branch resolution eventually would. The
    /// warming accesses are excluded from the run's reported
    /// statistics. Returns the number of instructions consumed (less
    /// than `insts` only if the stream ended).
    ///
    /// Call before [`Simulator::run_mut`]; the warmed instructions
    /// still count against that call's absolute `max_insts` budget.
    pub fn warm_functional(&mut self, insts: u64) -> u64 {
        self.warm_functional_inner(insts, None)
    }

    /// Like [`Simulator::warm_functional`], but additionally presents
    /// every warmed instruction to `steering` through
    /// [`Steering::warm_observe`], so schemes with decode-time state
    /// (slice tables) start the measured interval warm. The steering
    /// scheme's *decisions* are not consulted — warming only replays
    /// the committed-path stream.
    pub fn warm_functional_steered(&mut self, insts: u64, steering: &mut dyn Steering) -> u64 {
        self.warm_functional_inner(insts, Some(steering))
    }

    fn warm_functional_inner(
        &mut self,
        insts: u64,
        mut steering: Option<&mut dyn Steering>,
    ) -> u64 {
        let interp = self.interp.as_mut().expect("interpreter present");
        let mut done = 0;
        while done < insts {
            let Some(d) = interp.next() else { break };
            self.hierarchy.access_inst(d.pc);
            if let Some(ea) = d.ea {
                self.hierarchy.access_data(ea);
            }
            if d.inst.op.is_cond_branch() {
                self.bpred
                    .update(d.pc, d.taken.expect("cond branches have outcomes"));
            }
            if let Some(s) = steering.as_deref_mut() {
                s.warm_observe(d.sidx, &d.inst);
            }
            done += 1;
        }
        self.warm_baseline = WarmBaseline {
            l1i: self.hierarchy.l1i_stats(),
            l1d: self.hierarchy.l1d_stats(),
            l2: self.hierarchy.l2_stats(),
            bpred: self.bpred.stats(),
        };
        done
    }

    /// Runs at most `max_insts` dynamic instructions to completion
    /// (stream exhausted and pipeline drained) and returns the
    /// statistics.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline livelocks (a simulator bug) or if the
    /// workload requires an inter-cluster register transfer on a
    /// machine without bypasses (`cfg.intercluster == false` with a
    /// bank-crossing workload).
    pub fn run(mut self, steering: &mut dyn Steering, max_insts: u64) -> SimStats {
        self.run_mut(steering, max_insts)
    }

    /// Like [`Simulator::run`], but borrows the simulator, so post-run
    /// state — notably a collected [`Trace`](crate::Trace) — remains
    /// accessible through [`Simulator::take_trace`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Simulator::run`].
    pub fn run_mut(&mut self, steering: &mut dyn Steering, max_insts: u64) -> SimStats {
        let mut span = dca_obs::span("sim", "sim.run").arg("max_insts", max_insts);
        self.interp = Some(
            self.interp
                .take()
                .expect("interpreter present")
                .with_fuel(max_insts),
        );
        while !self.done() {
            self.step(steering);
            assert!(
                self.now < self.last_progress_cycle + NO_PROGRESS_LIMIT,
                "pipeline livelock: cycle {} ({} max instructions)\n\
                 rob head: {:?}\niq heads: {:?}\n\
                 ready: {:?} by class {:?}\n\
                 lsq: {:?}\nbranch_wait: {:?} resume_at {}\n\
                 fetch_buf {} pending {:?} stream_done {}",
                self.now,
                max_insts,
                self.rob.front(),
                self.cfg.clusters().map(|c| self.iq_first(c)).collect::<Vec<_>>(),
                self.iq[..self.n].iter().map(|q| &q.ready).collect::<Vec<_>>(),
                self.iq[..self.n].iter().map(IqBuf::ready_class_histogram).collect::<Vec<_>>(),
                self.lsq.entries().first(),
                self.branch_wait,
                self.resume_at,
                self.fetch_buf.len(),
                self.pending.map(|d| d.seq),
                self.stream_done,
            );
        }
        self.stats.cycles = self.now;
        self.stats.critical_copies = self.copy_critical.iter().filter(|&&c| c).count() as u64;
        self.stats.l1i = self.hierarchy.l1i_stats().since(&self.warm_baseline.l1i);
        self.stats.l1d = self.hierarchy.l1d_stats().since(&self.warm_baseline.l1d);
        self.stats.l2 = self.hierarchy.l2_stats().since(&self.warm_baseline.l2);
        self.stats.bpred = self.bpred.stats().since(&self.warm_baseline.bpred);
        span.add_arg("committed", self.stats.committed);
        span.add_arg("cycles", self.stats.cycles);
        let m = dca_obs::metrics();
        m.detailed_insts_total.add(self.stats.committed);
        let peak = self.iq[..self.n].iter().map(|q| q.timeline_peak).max();
        m.event_queue_peak.set_max(peak.unwrap_or(0));
        self.stats.clone()
    }

    /// Starts recording a [`Trace`](crate::Trace) of at most `capacity`
    /// committed µops. Call before [`Simulator::run_mut`]; retrieve the
    /// result with [`Simulator::take_trace`]. Enabling tracing does not
    /// change any timing.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(crate::Trace::with_capacity(capacity));
    }

    /// Takes the collected trace, leaving tracing disabled. Returns
    /// `None` if [`Simulator::enable_trace`] was never called.
    pub fn take_trace(&mut self) -> Option<crate::Trace> {
        self.trace.take()
    }

    fn done(&self) -> bool {
        self.stream_done
            && self.pending.is_none()
            && self.fetch_buf.is_empty()
            && self.rob.is_empty()
    }

    fn rob_index_of(&self, seq: u64) -> Option<usize> {
        let idx = seq.checked_sub(self.rob_head_seq)? as usize;
        (idx < self.rob.len()).then_some(idx)
    }

    /// Queue occupancies as the `u32`s `SteerCtx` carries. The narrowing
    /// is audited (ISSUE 2): occupancy is bounded by the *configured*
    /// queue size — dispatch checks free space before inserting — never
    /// by run length, so paper-scale (100M-instruction) runs cannot
    /// overflow it. Counters that do grow with run length
    /// (cycles, committed, copy ids) are all 64-bit.
    fn iq_lens(&self) -> [u32; MAX_CLUSTERS] {
        let mut lens = [0u32; MAX_CLUSTERS];
        for (c, q) in self.iq[..self.n].iter().enumerate() {
            debug_assert!(
                q.len() <= self.cfg.iq_size[c] as usize,
                "IQ occupancy exceeds the configured queue size"
            );
            lens[c] = q.len() as u32;
        }
        lens
    }

    /// Oldest entry queued in cluster `c` (diagnostics).
    fn iq_first(&self, c: ClusterId) -> Option<&IqEntry> {
        (self.rob_head_seq..self.uop_seq).find_map(|seq| self.iq[c.index()].get(seq))
    }

    // ------------------------------------------------------------------
    // cycle
    // ------------------------------------------------------------------

    fn step(&mut self, steering: &mut dyn Steering) {
        let now = self.now;
        for f in &mut self.fus[..self.n] {
            f.begin_cycle(now);
        }
        self.dports.begin_cycle();
        self.bus_used.fill(0);
        self.rf_reads_used.fill(0);
        self.rf_writes_used.fill(0);

        let ctx = self.make_ctx();
        self.stats.balance.record(self.balance_sample(&ctx.ready));
        self.stats.replication_reg_cycles += u64::from(self.map.replication_count());
        steering.on_cycle(&ctx);

        self.commit();
        self.memory_stage(steering);
        self.issue(steering);
        self.dispatch(steering, ctx);
        self.fetch();

        self.now += 1;
        self.skip_ahead(steering);
    }

    /// Fast-forwards `now` to the next cycle at which any stage can
    /// make progress, performing only the per-cycle bookkeeping
    /// (balance sample, replication integral, [`Steering::on_cycle`])
    /// for the skipped cycles. Only legal when the machine is
    /// *quiescent* — no ready IQ entry, an empty fetch buffer and no
    /// load awaiting disambiguation — because then commit, memory,
    /// issue, dispatch and fetch all provably no-op until the next
    /// timeline / completion / fetch event, making the skipped cycles
    /// bit-identical to stepping through them.
    fn skip_ahead(&mut self, steering: &mut dyn Steering) {
        if self.cfg.engine != Engine::Event {
            return;
        }
        if self.iq[..self.n].iter().any(|q| !q.ready.is_empty()) {
            return;
        }
        if !self.fetch_buf.is_empty() {
            return;
        }
        if self.done() {
            return;
        }
        fn consider(wake: &mut Option<u64>, t: u64) {
            *wake = Some(wake.map_or(t, |w| w.min(t)));
        }
        let mut wake: Option<u64> = None;
        for q in &self.iq[..self.n] {
            if let Some(t) = q.next_event() {
                consider(&mut wake, t);
            }
        }
        // Memory gate: a waiting load could first act (disambiguate)
        // once its own and every older store's address timer is due —
        // all known cycles. Unknown addresses resolve only through an
        // EA issue, which can only happen at a non-skipped cycle, so
        // loads behind one add no candidate. The candidate may be
        // earlier than the true action cycle (store-data forwarding
        // delays, D-port contention); waking early merely shortens the
        // skip and the real step re-arbitrates.
        if self.lsq.waiting_loads() > 0 {
            let mut older_store_addrs_known = true;
            let mut older_store_addr_at = 0u64;
            for en in self.lsq.entries() {
                if en.is_store {
                    match en.addr {
                        Some(_) => older_store_addr_at = older_store_addr_at.max(en.addr_at),
                        None => older_store_addrs_known = false,
                    }
                    continue;
                }
                if en.state != LoadState::Waiting {
                    continue;
                }
                if en.addr.is_some() && older_store_addrs_known {
                    consider(&mut wake, en.addr_at.max(older_store_addr_at));
                }
            }
        }
        // Commit gate: the earliest cycle the ROB head could retire.
        // Gates that are still event-driven (un-issued EA µop, in-flight
        // store data) contribute nothing — they resolve via an issue,
        // which can only happen at a non-skipped cycle.
        if let Some(head) = self.rob.front() {
            let gate = match head.kind {
                UopKind::Store => {
                    let entry = self.lsq.entries().first();
                    match (head.complete_at, entry) {
                        (Some(c), Some(en)) if en.addr.is_some() => {
                            debug_assert_eq!(en.seq, head.seq);
                            let data_known = en.data.map_or(Some(0), |(dc, dp)| {
                                let at = self.regs[dc.index()].ready_at(dp);
                                (at != IN_FLIGHT).then_some(at)
                            });
                            data_known.map(|d| c.max(en.addr_at).max(d))
                        }
                        _ => None,
                    }
                }
                _ => head.complete_at,
            };
            if let Some(t) = gate {
                consider(&mut wake, t);
            }
        }
        // Fetch gate: only when fetch is waiting on a timer (I-cache
        // fill or mispredict redirect). While a mispredicted branch is
        // unresolved, resolution itself is an issue event.
        if !(self.stream_done && self.pending.is_none())
            && self.branch_wait == BranchWait::None
        {
            consider(&mut wake, self.icache_ready_at.max(self.resume_at));
        }
        let Some(wake) = wake else { return };
        if wake <= self.now {
            return;
        }
        let iq_len = self.iq_lens();
        for cycle in self.now..wake {
            // Mirrors the bookkeeping prefix of `step` for a cycle in
            // which every stage no-ops: zero entries are ready in
            // any cluster and the rename map is untouched.
            self.stats.balance.record(0);
            self.stats.replication_reg_cycles += u64::from(self.map.replication_count());
            steering.on_cycle(&SteerCtx {
                now: cycle,
                n: self.cfg.n_clusters,
                ready: [0; MAX_CLUSTERS],
                iq_len,
                issue_width: self.cfg.issue_width,
            });
        }
        self.now = wake;
    }

    /// The balance-histogram sample for this cycle's ready counts: the
    /// paper's signed FP−INT difference on 2-cluster machines, the
    /// max−min spread (always ≥ 0) on wider ones.
    fn balance_sample(&self, ready: &[u32; MAX_CLUSTERS]) -> i64 {
        if self.n == 2 {
            i64::from(ready[1]) - i64::from(ready[0])
        } else {
            let live = &ready[..self.n];
            let max = live.iter().max().copied().unwrap_or(0);
            let min = live.iter().min().copied().unwrap_or(0);
            i64::from(max) - i64::from(min)
        }
    }

    fn make_ctx(&mut self) -> SteerCtx {
        let mut ready = [0u32; MAX_CLUSTERS];
        match self.cfg.engine {
            Engine::Event => {
                let now = self.now;
                for (k, q) in self.iq[..self.n].iter_mut().enumerate() {
                    q.drain_due(now);
                    ready[k] = q.ready.len() as u32;
                }
            }
            Engine::Scan => {
                for (k, q) in self.iq[..self.n].iter().enumerate() {
                    ready[k] = (self.rob_head_seq..self.uop_seq)
                        .filter_map(|seq| q.get(seq))
                        .filter(|e| self.entry_ready(e))
                        .count() as u32;
                }
            }
        }
        SteerCtx {
            now: self.now,
            n: self.cfg.n_clusters,
            ready,
            iq_len: self.iq_lens(),
            issue_width: self.cfg.issue_width,
        }
    }

    fn entry_ready(&self, e: &IqEntry) -> bool {
        if e.dispatched_at >= self.now {
            return false;
        }
        e.srcs
            .iter()
            .flatten()
            .all(|&p| self.regs[e.cluster.index()].is_ready(p, self.now))
    }

    // ------------------------------------------------------------------
    // commit
    // ------------------------------------------------------------------

    fn commit(&mut self) {
        let mut budget = self.cfg.retire_width;
        while budget > 0 {
            let Some(head) = self.rob.front() else { break };
            match head.kind {
                UopKind::Store => {
                    // Needs: EA complete, data ready, and a D-cache port.
                    if head.complete_at.is_none_or(|c| c > self.now) {
                        break;
                    }
                    let entry = self
                        .lsq
                        .entries()
                        .first()
                        .expect("store at ROB head is oldest in LSQ");
                    debug_assert_eq!(entry.seq, head.seq);
                    let addr = match entry.addr {
                        Some(a) if entry.addr_at <= self.now => a,
                        _ => break,
                    };
                    // `None` data means the store writes r0 (constant
                    // zero) — always ready.
                    if let Some((dc, dp)) = entry.data {
                        if !self.regs[dc.index()].is_ready(dp, self.now) {
                            break;
                        }
                    }
                    if !self.dports.try_acquire() {
                        break;
                    }
                    self.hierarchy.access_data(addr);
                    let seq = head.seq;
                    self.lsq.retire(seq);
                }
                UopKind::Load => {
                    if head.complete_at.is_none_or(|c| c > self.now) {
                        break;
                    }
                    let seq = head.seq;
                    self.lsq.retire(seq);
                }
                UopKind::Normal | UopKind::Copy { .. } => {
                    if head.complete_at.is_none_or(|c| c > self.now) {
                        break;
                    }
                }
            }
            let head = self.rob.pop_front().expect("checked non-empty");
            debug_assert!(
                head.sidx as usize * 2 < usize::MAX && head.cluster.index() < self.n,
                "ROB entry metadata intact"
            );
            if let Some(tr) = self.trace.as_mut() {
                tr.push(crate::trace::UopRecord {
                    seq: head.seq,
                    dyn_seq: head.dyn_seq,
                    sidx: head.sidx,
                    pc: head.pc,
                    text: crate::trace::record_text(&self.prog.static_insts()[head.sidx as usize].inst),
                    cluster: head.cluster,
                    kind: match head.kind {
                        UopKind::Normal => crate::TracedKind::Normal,
                        UopKind::Load => crate::TracedKind::Load,
                        UopKind::Store => crate::TracedKind::Store,
                        UopKind::Copy { .. } => crate::TracedKind::Copy,
                    },
                    fetch_at: head.fetch_at,
                    dispatch_at: head.dispatch_at,
                    issue_at: head.issue_at,
                    complete_at: head.complete_at.unwrap_or(self.now),
                    commit_at: self.now,
                    mispredicted: head.mispredicted && head.is_cond_branch,
                });
            }
            self.rob_head_seq = head.seq + 1;
            self.last_progress_cycle = self.now;
            for (c, p) in head.displaced.iter() {
                self.regs[c.index()].release(p);
            }
            self.stats.committed_uops += 1;
            if head.is_program {
                self.stats.committed += 1;
                match head.kind {
                    UopKind::Load => self.stats.loads += 1,
                    UopKind::Store => self.stats.stores += 1,
                    _ => {}
                }
                if head.is_cond_branch {
                    self.stats.branches += 1;
                    if head.mispredicted {
                        self.stats.mispredicts += 1;
                    }
                }
            }
            budget -= 1;
        }
    }

    // ------------------------------------------------------------------
    // memory (unified disambiguation logic)
    // ------------------------------------------------------------------

    fn memory_stage(&mut self, steering: &mut dyn Steering) {
        // Collect candidate loads in program order (into a reused
        // buffer); issue while ports remain.
        if self.lsq.waiting_loads() == 0 {
            return;
        }
        let now = self.now;
        let mut candidates = std::mem::take(&mut self.load_scratch);
        candidates.clear();
        candidates.extend(
            self.lsq
                .entries()
                .iter()
                .filter(|e| {
                    !e.is_store && e.state == LoadState::Waiting && e.retry_at <= now
                })
                .map(|e| e.seq),
        );
        for &seq in &candidates {
            let regs = &self.regs;
            let verdict = self.lsq.load_disambiguate(seq, now, |c, p| {
                regs[c.index()].is_ready(p, now)
            });
            let forward = match verdict {
                Ok(f) => f,
                Err(retry_at) => {
                    // Sleep until the blocking timer (or parked until
                    // the blocking store address arrives).
                    let e = self.lsq.entry_mut(seq).expect("entry exists");
                    e.retry_at = retry_at;
                    continue;
                }
            };
            let (done_at, missed) = match forward {
                Some(_store_seq) => {
                    self.stats.forwarded_loads += 1;
                    (now + 1, false)
                }
                None => {
                    if !self.dports.try_acquire() {
                        continue; // retry next cycle
                    }
                    let addr = self.lsq.entry_mut(seq).and_then(|e| e.addr).expect("addr known");
                    let (lat, lvl) = self.hierarchy.access_data(addr);
                    (now + u64::from(lat), lvl != MemLevel::L1)
                }
            };
            let sidx = self.lsq.mark_load_issued(seq);
            let rob_idx = self.rob_index_of(seq).expect("load in ROB");
            let (dc, dp) = self.rob[rob_idx].dst.expect("loads have destinations");
            self.rob[rob_idx].complete_at = Some(done_at);
            self.announce_ready(dc, dp, done_at, None);
            if missed {
                steering.on_load_miss(sidx);
            }
        }
        self.load_scratch = candidates;
    }

    // ------------------------------------------------------------------
    // issue / execute
    // ------------------------------------------------------------------

    /// The register-file port demand of an IQ entry issuing from
    /// `cluster`: reads in its own cluster, the write in the
    /// destination's cluster (for copies, the remote one).
    fn rf_port_demand(e: &IqEntry, cluster: ClusterId) -> (u32, Option<ClusterId>) {
        let reads = e.srcs.iter().flatten().count() as u32;
        let write_cluster = match e.kind {
            UopKind::Copy { .. } => e.copy_dst.map(|(dc, _)| dc),
            _ => e.dst.map(|_| cluster),
        };
        (reads, write_cluster)
    }

    /// Register-file port arbitration at issue. Returns `false` when a
    /// port limit is exceeded; otherwise reserves the ports.
    fn try_rf_ports(&mut self, reads: u32, write_cluster: Option<ClusterId>, cluster: ClusterId) -> bool {
        let read_cap = self.cfg.rf_read_ports[cluster.index()];
        if read_cap != 0 && self.rf_reads_used[cluster.index()] + reads > read_cap {
            return false;
        }
        if let Some(wc) = write_cluster {
            let write_cap = self.cfg.rf_write_ports[wc.index()];
            if write_cap != 0 && self.rf_writes_used[wc.index()] + 1 > write_cap {
                return false;
            }
            self.rf_writes_used[wc.index()] += 1;
        }
        self.rf_reads_used[cluster.index()] += reads;
        true
    }

    /// Structural-resource gauntlet shared by both engines: bus slot
    /// for copies, FU slot otherwise. Reservations stick for the cycle
    /// even if the µop is later port-rejected (see `try_rf_ports`).
    fn try_structural(&mut self, kind: UopKind, issue_class: ExecClass, c: ClusterId) -> bool {
        match kind {
            UopKind::Copy { .. } => {
                // Buses are provisioned per *source* cluster; a copy
                // issues from the cluster whose queue holds it.
                let dir = c.index();
                if self.bus_used[dir] < self.cfg.buses_per_dir {
                    self.bus_used[dir] += 1;
                    true
                } else {
                    false
                }
            }
            _ => self.fus[c.index()].try_issue(issue_class, self.now),
        }
    }

    fn issue(&mut self, steering: &mut dyn Steering) {
        match self.cfg.engine {
            Engine::Event => self.issue_event(steering),
            Engine::Scan => self.issue_scan(steering),
        }
    }

    /// Event-engine issue: pops oldest-first from the ready list. The
    /// list holds exactly the entries the scan would have found ready,
    /// in the same seq order, so arbitration behaves identically.
    fn issue_event(&mut self, steering: &mut dyn Steering) {
        for ci in 0..self.n {
            let c = ClusterId::from_index_unchecked(ci);
            let mut budget = self.cfg.issue_width[c.index()];
            let mut i = 0;
            while budget > 0 && i < self.iq[c.index()].ready.len() {
                let seq = self.iq[c.index()].ready[i];
                let (kind, issue_class, reads, write_cluster) = {
                    let e = self.iq[c.index()].get(seq).expect("ready entry is queued");
                    debug_assert!(self.entry_ready(e), "ready list ahead of operands");
                    let (reads, wc) = Self::rf_port_demand(e, c);
                    (e.kind, e.issue_class, reads, wc)
                };
                if !self.try_structural(kind, issue_class, c) {
                    i += 1;
                    continue;
                }
                if !self.try_rf_ports(reads, write_cluster, c) {
                    // FU/bus reservations for this µop are only logical
                    // within the cycle; skipping it leaves them charged,
                    // which conservatively models a port-starved issue
                    // slot that could not be reclaimed this cycle.
                    i += 1;
                    continue;
                }
                let e = self.iq[c.index()].take_ready(i);
                debug_assert_eq!(e.cluster, c, "IQ entry in the wrong queue");
                self.execute_uop(&e, c, steering);
                budget -= 1;
            }
        }
    }

    /// Scan-engine issue: the original full walk of the queue in
    /// program order, re-checking operand readiness per entry.
    fn issue_scan(&mut self, steering: &mut dyn Steering) {
        for ci in 0..self.n {
            let c = ClusterId::from_index_unchecked(ci);
            let mut budget = self.cfg.issue_width[c.index()];
            if budget == 0 {
                continue;
            }
            for seq in self.rob_head_seq..self.uop_seq {
                if budget == 0 {
                    break;
                }
                let Some(e) = self.iq[c.index()].get(seq) else { continue };
                let (ready, kind, issue_class) = (self.entry_ready(e), e.kind, e.issue_class);
                let (reads, write_cluster) = Self::rf_port_demand(e, c);
                if !ready {
                    continue;
                }
                if !self.try_structural(kind, issue_class, c) {
                    continue;
                }
                if !self.try_rf_ports(reads, write_cluster, c) {
                    continue;
                }
                let e = self
                    .iq[c.index()]
                    .remove(seq)
                    .expect("scanned entry is queued");
                debug_assert_eq!(e.cluster, c, "IQ entry in the wrong queue");
                self.execute_uop(&e, c, steering);
                budget -= 1;
            }
        }
    }

    /// Announces that register `p` of `cluster` becomes readable at
    /// `at` (with copy provenance when `copy` is set) and, under the
    /// event engine, wakes its waiters: each waiter's pending-operand
    /// counter drops and, at zero, the entry is scheduled on its
    /// cluster's timeline for `max(dispatch+1, max src ready)`. The
    /// waiter lists drain through a reused scratch buffer, so the
    /// steady state allocates nothing.
    fn announce_ready(&mut self, cluster: ClusterId, p: PhysReg, at: u64, copy: Option<u64>) {
        let rf = &mut self.regs[cluster.index()];
        match copy {
            Some(id) => rf.set_ready_from_copy(p, at, id),
            None => rf.set_ready(p, at),
        }
        if !rf.has_waiters(p) {
            return;
        }
        debug_assert_eq!(self.cfg.engine, Engine::Event, "scan engine registers no waiters");
        let mut woken = std::mem::take(&mut self.wake_scratch);
        woken.clear();
        self.regs[cluster.index()].drain_waiters_into(p, &mut woken);
        let buf = &mut self.iq[cluster.index()];
        for &seq in &woken {
            let e = buf.get_mut(seq).expect("waiting µop is queued");
            debug_assert!(e.pending > 0);
            e.pending -= 1;
            e.ready_cycle = e.ready_cycle.max(at);
            if e.pending == 0 {
                let when = e.ready_cycle.max(e.dispatched_at + 1);
                debug_assert!(when > self.now, "wakeups never fire retroactively");
                buf.push_event(when, seq);
            }
        }
        self.wake_scratch = woken;
    }

    /// Detects whether the last-arriving source of an issuing consumer
    /// was delivered by a copy that actually delayed it (the paper's
    /// critical-communication definition).
    fn note_critical_sources(&mut self, e: &IqEntry, cluster: ClusterId) {
        let rf = &self.regs[cluster.index()];
        // Track the last-arriving source (ties resolved in favour of
        // the later operand slot, matching the stable order the former
        // sort produced) and the runner-up arrival time.
        let mut any = false;
        let mut last_t = 0u64;
        let mut last_copy: Option<u64> = None;
        let mut second_t = 0u64;
        for &p in e.srcs.iter().flatten() {
            let t = rf.ready_at(p);
            let copy = rf.copy_id(p);
            if !any || t >= last_t {
                second_t = if any { last_t } else { 0 };
                last_t = t;
                last_copy = copy;
            } else if t > second_t {
                second_t = t;
            }
            any = true;
        }
        if !any {
            return;
        }
        let Some(copy_id) = last_copy else { return };
        let earliest_otherwise = second_t.max(e.dispatched_at + 1);
        if last_t > earliest_otherwise {
            self.copy_critical[copy_id as usize] = true;
        }
    }

    fn execute_uop(&mut self, e: &IqEntry, cluster: ClusterId, steering: &mut dyn Steering) {
        let now = self.now;
        self.note_critical_sources(e, cluster);
        if !matches!(e.kind, UopKind::Copy { .. }) {
            steering.on_issued(e.dyn_seq, cluster);
        }
        let rob_idx = self.rob_index_of(e.seq).expect("µop in ROB");
        self.rob[rob_idx].issue_at = Some(now);
        match e.kind {
            UopKind::Copy { id } => {
                // The copy reads its source through the local bypass
                // (0 cycles, like any FU) and drives the inter-cluster
                // bus for `copy_latency` cycles (plus the pair's extra
                // distance on non-flat topologies): a remote consumer
                // issues exactly that many cycles after a local one
                // could have.
                let (dst_cluster, dst) = e.copy_dst.expect("copies have destinations");
                let dist = self.cfg.extra_distance[cluster.index()][dst_cluster.index()];
                let at = now + u64::from(self.cfg.copy_latency.max(1)) + u64::from(dist);
                self.rob[rob_idx].complete_at = Some(at);
                self.announce_ready(dst_cluster, dst, at, Some(id));
            }
            UopKind::Load | UopKind::Store => {
                // EA micro-op: the address becomes usable next cycle.
                let addr = e.ea.expect("memory µops carry their effective address");
                self.lsq.set_addr(e.seq, addr, now + 1);
                if e.kind == UopKind::Store {
                    self.rob[rob_idx].complete_at = Some(now + 1);
                }
                // Loads complete when the access returns (memory_stage).
            }
            UopKind::Normal => {
                let lat = u64::from(latency_of(e.issue_class));
                let done = now + lat;
                if let Some(p) = e.dst {
                    let dst_cluster = self.rob[rob_idx]
                        .dst
                        .map(|(c, _)| c)
                        .unwrap_or(cluster);
                    self.announce_ready(dst_cluster, p, done, None);
                }
                self.rob[rob_idx].complete_at = Some(done);
                if e.mispredicted && self.branch_wait == BranchWait::Dispatched(e.seq) {
                    self.resume_at = done;
                    self.branch_wait = BranchWait::None;
                    steering.on_mispredict(e.sidx);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // dispatch (decode / steer / rename)
    // ------------------------------------------------------------------

    fn allowed_clusters(&self, op: Opcode) -> Allowed {
        if self.cfg.unified {
            return Allowed::only(ClusterId::INT);
        }
        // Capability masks, precomputed from the FU mix at
        // construction. On the base machine the FP cluster has no
        // simple ALUs, so `simple_set` collapses to cluster 0 — the
        // naive partitioning falls out of the mask rule.
        match op.cluster_need() {
            ClusterNeed::IntOnly => Allowed::from_set(self.int_complex_set),
            ClusterNeed::FpOnly => Allowed::from_set(self.fp_set),
            ClusterNeed::Either => Allowed::from_set(self.simple_set),
        }
    }

    /// Integer source registers that participate in renaming for the
    /// *cluster-local* part of the instruction (EA base and integer
    /// store data; FP operands are never replicated). At most two,
    /// returned inline and densely from slot 0.
    fn renamed_srcs(inst: &dca_isa::Inst) -> [Option<Reg>; 2] {
        let mut v = [None, None];
        match inst.op {
            Opcode::FSt => {
                // base (int) renames locally; FP data read at commit.
                v[0] = inst.src1.filter(|r| !r.is_zero());
            }
            _ => {
                for (k, r) in inst.srcs().take(2).enumerate() {
                    v[k] = Some(r);
                }
            }
        }
        v
    }

    fn dispatch(&mut self, steering: &mut dyn Steering, mut ctx: SteerCtx) {
        let mut budget = self.cfg.decode_width;
        let mut stalled = false;
        while budget > 0 {
            let Some(front) = self.fetch_buf.front() else { break };
            if front.available_at > self.now {
                break;
            }
            let f = *front;
            let d = &f.d;
            let inst = d.inst;
            // Build the steering view *before* inserting copies.
            let mut srcs: [Option<SrcView>; 2] = [None, None];
            for (k, r) in inst.srcs().take(2).enumerate() {
                srcs[k] = Some(SrcView {
                    reg: r,
                    mapped: self.map.mapped_set(r),
                });
            }
            let view = DecodedView {
                seq: d.seq,
                sidx: d.sidx,
                pc: d.pc,
                inst: &inst,
                class: inst.op.class(),
                srcs,
            };
            let allowed = self.allowed_clusters(inst.op);
            let cluster = if self.cfg.unified {
                ClusterId::INT
            } else if let Some((_, c)) = self.steer_cache.filter(|&(s, _)| s == d.seq) {
                // Decision already made when this instruction first
                // reached dispatch; a resource stall must not re-steer.
                c
            } else {
                match steering.steer(&view, allowed, &ctx) {
                    Some(c) => {
                        let c = allowed.clamp(c);
                        self.steer_cache = Some((d.seq, c));
                        c
                    }
                    None => {
                        stalled = true;
                        break;
                    }
                }
            };

            // ---- resource accounting -------------------------------
            // A copy is sourced from the mapped cluster *closest* to
            // the consumer (smallest extra distance, ties towards the
            // lowest index) — on 2-cluster machines necessarily the
            // other cluster. The copy µop occupies the source cluster's
            // queue and allocates its destination register locally.
            let mut needs_copy: [Option<(Reg, ClusterId)>; 2] = [None, None];
            let mut n_copies = 0u32;
            for r in Self::renamed_srcs(&inst).into_iter().flatten() {
                if self.map.lookup(r, cluster).is_none() {
                    let src = rank_clusters(self.map.mapped_set(r), |s| {
                        -i64::from(self.cfg.extra_distance[s.index()][cluster.index()])
                    })
                    .expect("a live operand is mapped in some cluster");
                    needs_copy[n_copies as usize] = Some((r, src));
                    n_copies += 1;
                }
            }
            if n_copies > 0 && !self.cfg.intercluster {
                panic!(
                    "machine without inter-cluster bypasses needs a copy of {:?} \
                     for `{inst}` — workload and configuration are inconsistent",
                    needs_copy
                );
            }
            let dst_cluster = inst.effective_dst().map(|r| {
                if r.is_fp() {
                    self.fp_cluster
                } else {
                    cluster
                }
            });
            let rob_free = self.cfg.rob_size - self.rob.len() as u32;
            let mut iq_needed = [0u32; MAX_CLUSTERS];
            iq_needed[cluster.index()] += 1;
            for &(_, src) in needs_copy.iter().flatten() {
                iq_needed[src.index()] += 1;
            }
            let mut regs_needed = [0u32; MAX_CLUSTERS];
            regs_needed[cluster.index()] += n_copies; // copy destinations are local
            if let Some(dc) = dst_cluster {
                regs_needed[dc.index()] += 1;
            }
            let enough = rob_free > n_copies
                && (0..self.n).all(|k| {
                    self.cfg.iq_size[k] - self.iq[k].len() as u32 >= iq_needed[k]
                        && self.regs[k].free_count() >= regs_needed[k] as usize
                });
            if !enough {
                stalled = true;
                break;
            }

            // ---- allocate copies -----------------------------------
            for (r, src) in needs_copy.into_iter().flatten() {
                let src_preg = self
                    .map
                    .lookup(r, src)
                    .expect("operand is mapped in the source cluster");
                let q = self.regs[cluster.index()].alloc().expect("checked");
                let mut displaced = Displaced::default();
                if let Some((dc, dp)) = self.map.replicate(r, cluster, q) {
                    displaced.push(dc, dp);
                }
                let id = self.copy_critical.len() as u64;
                self.copy_critical.push(false);
                let seq = self.next_uop_seq();
                self.rob.push_back(RobEntry {
                    seq,
                    dyn_seq: d.seq,
                    sidx: d.sidx,
                    pc: d.pc,
                    cluster: src,
                    kind: UopKind::Copy { id },
                    is_program: false,
                    dst: Some((cluster, q)),
                    displaced,
                    fetch_at: f.available_at.saturating_sub(1),
                    dispatch_at: self.now,
                    issue_at: None,
                    complete_at: None,
                    mispredicted: false,
                    is_cond_branch: false,
                });
                self.iq_insert(IqEntry {
                    seq,
                    dyn_seq: d.seq,
                    sidx: d.sidx,
                    cluster: src,
                    issue_class: ExecClass::IntAlu,
                    kind: UopKind::Copy { id },
                    srcs: [Some(src_preg), None],
                    copy_dst: Some((cluster, q)),
                    dst: None,
                    ea: None,
                    dispatched_at: self.now,
                    mispredicted: false,
                    pending: 0,
                    ready_cycle: 0,
                });
                self.stats.copies += 1;
                self.stats.copies_by_dir[src.index()] += 1;
            }

            // ---- main µop -------------------------------------------
            // Sources are renamed *before* the destination is defined,
            // so an instruction reading and writing the same logical
            // register sees the previous mapping.
            let seq = self.next_uop_seq();
            let kind = match inst.op.class() {
                ExecClass::Load => UopKind::Load,
                ExecClass::Store => UopKind::Store,
                _ => UopKind::Normal,
            };
            // IQ sources: EA base for memory ops, all sources otherwise.
            let mut iq_srcs: [Option<PhysReg>; 2] = [None, None];
            if inst.op.is_mem() {
                if let Some(b) = inst.src1.filter(|r| !r.is_zero()) {
                    iq_srcs[0] = Some(
                        self.map
                            .lookup(b, cluster)
                            .expect("base register mapped locally"),
                    );
                }
            } else {
                for (k, r) in Self::renamed_srcs(&inst).into_iter().flatten().enumerate() {
                    iq_srcs[k] = Some(
                        self.map
                            .lookup(r, cluster)
                            .expect("sources mapped locally after copies"),
                    );
                }
                // FP-bank sources of FP ops rename in the FP cluster.
                if matches!(
                    inst.op,
                    Opcode::FAdd
                        | Opcode::FSub
                        | Opcode::FMul
                        | Opcode::FDiv
                        | Opcode::FMov
                        | Opcode::FCmpLt
                        | Opcode::CvtFi
                ) {
                    for (k, r) in inst.srcs().take(2).enumerate() {
                        iq_srcs[k] = Some(
                            self.map
                                .lookup(r, self.fp_cluster)
                                .expect("FP sources mapped in the FP cluster"),
                        );
                    }
                }
            }
            // Store data operand is also a *source*: resolve before the
            // destination rename (stores have no destination, but keep
            // the ordering uniform and before `define`).
            let store_data = if inst.op.is_store() {
                let data_reg = inst.src2.expect("stores have data registers");
                if data_reg.is_zero() {
                    None
                } else if data_reg.is_fp() {
                    Some((
                        self.fp_cluster,
                        self.map
                            .lookup(data_reg, self.fp_cluster)
                            .expect("FP data mapped"),
                    ))
                } else {
                    Some((
                        cluster,
                        self.map
                            .lookup(data_reg, cluster)
                            .expect("integer data mapped locally"),
                    ))
                }
            } else {
                None
            };
            let (dst_map, displaced) = match (inst.effective_dst(), dst_cluster) {
                (Some(r), Some(dc)) => {
                    let p = self.regs[dc.index()].alloc().expect("checked");
                    (Some((dc, p)), self.map.define(r, dc, p))
                }
                _ => (None, Displaced::default()),
            };
            let issue_class = if inst.op.is_mem() {
                ExecClass::IntAlu
            } else {
                inst.op.class()
            };
            self.rob.push_back(RobEntry {
                seq,
                dyn_seq: d.seq,
                sidx: d.sidx,
                pc: d.pc,
                cluster,
                kind,
                is_program: true,
                dst: dst_map,
                displaced,
                fetch_at: f.available_at.saturating_sub(1),
                dispatch_at: self.now,
                issue_at: None,
                complete_at: if inst.op.class() == ExecClass::Nop {
                    Some(self.now + 1)
                } else {
                    None
                },
                mispredicted: f.mispredicted,
                is_cond_branch: inst.op.is_cond_branch(),
            });
            if inst.op.is_mem() {
                self.lsq.push(LsqEntry {
                    seq,
                    is_store: inst.op.is_store(),
                    addr: None,
                    addr_at: 0,
                    data: store_data,
                    state: LoadState::Waiting,
                    sidx: d.sidx,
                    retry_at: 0,
                });
            }
            if inst.op.class() != ExecClass::Nop {
                self.iq_insert(IqEntry {
                    seq,
                    dyn_seq: d.seq,
                    sidx: d.sidx,
                    cluster,
                    issue_class,
                    kind,
                    srcs: iq_srcs,
                    copy_dst: None,
                    dst: dst_map.map(|(_, p)| p),
                    ea: d.ea,
                    dispatched_at: self.now,
                    mispredicted: f.mispredicted,
                    pending: 0,
                    ready_cycle: 0,
                });
            }
            if f.mispredicted {
                debug_assert_eq!(self.branch_wait, BranchWait::Fetched);
                self.branch_wait = BranchWait::Dispatched(seq);
            }
            if inst.op.class() == ExecClass::Nop {
                // Nops bypass the instruction queues; tell the scheme
                // the slot is gone so occupancy-tracking schemes (FIFO)
                // stay consistent.
                steering.on_issued(d.seq, cluster);
            }
            self.stats.steered[cluster.index()] += 1;
            steering.on_steered(&view, cluster, &ctx);
            ctx.iq_len[cluster.index()] += 1;
            self.steer_cache = None;
            self.fetch_buf.pop_front();
            budget -= 1;
        }
        if stalled && !self.fetch_buf.is_empty() {
            self.stats.dispatch_stall_cycles += 1;
        }
    }

    fn next_uop_seq(&mut self) -> u64 {
        let s = self.uop_seq;
        self.uop_seq += 1;
        s
    }

    /// Inserts a freshly dispatched entry into its cluster's queue.
    /// Under the event engine this also takes the wakeup census:
    /// sources with a known ready cycle fold into `ready_cycle`,
    /// in-flight sources register the entry on the producer register's
    /// waiter list, and an entry with no outstanding operands goes
    /// straight onto the timeline (earliest issue is dispatch + 1).
    fn iq_insert(&mut self, mut e: IqEntry) {
        let c = e.cluster.index();
        if self.cfg.engine == Engine::Event {
            e.pending = 0;
            e.ready_cycle = 0;
            for k in 0..e.srcs.len() {
                let Some(p) = e.srcs[k] else { continue };
                let at = self.regs[c].ready_at(p);
                if at == IN_FLIGHT {
                    self.regs[c].add_waiter(p, e.seq);
                    e.pending += 1;
                } else {
                    e.ready_cycle = e.ready_cycle.max(at);
                }
            }
            if e.pending == 0 {
                let when = e.ready_cycle.max(e.dispatched_at + 1);
                self.iq[c].push_event(when, e.seq);
            }
        }
        self.iq[c].insert(e);
    }

    // ------------------------------------------------------------------
    // fetch
    // ------------------------------------------------------------------

    fn fetch(&mut self) {
        if self.branch_wait != BranchWait::None || self.now < self.resume_at {
            return;
        }
        if self.now < self.icache_ready_at {
            return;
        }
        let room = self.cfg.fetch_buffer as usize - self.fetch_buf.len();
        let width = (self.cfg.fetch_width as usize).min(room);
        if width == 0 {
            return;
        }
        let line_mask = !(self.cfg.hierarchy.l1i.line_bytes as u64 - 1);
        let mut fetched = 0usize;
        // Reused line-tracking buffer: a fetch group touches at most
        // `fetch_width` I-cache lines, so the capacity stabilises and
        // the steady state allocates nothing.
        let mut lines_touched = std::mem::take(&mut self.fetch_lines);
        lines_touched.clear();
        while fetched < width {
            let d = match self
                .pending
                .take()
                .or_else(|| self.interp.as_mut().expect("interpreter present").next())
            {
                Some(d) => d,
                None => {
                    self.stream_done = true;
                    break;
                }
            };
            let line = d.pc & line_mask;
            if !lines_touched.contains(&line) {
                let (lat, _lvl) = self.hierarchy.access_inst(d.pc);
                lines_touched.push(line);
                if lat > self.cfg.hierarchy.l1_hit {
                    // Miss: instructions from this line arrive after the
                    // fill; anything already fetched this cycle stands.
                    self.icache_ready_at = self.now + u64::from(lat);
                    self.pending = Some(d);
                    break;
                }
            }
            let mut mispredicted = false;
            let mut fetch_break = false;
            if d.inst.op.is_cond_branch() {
                let taken = d.taken.expect("cond branches have outcomes");
                let predicted = self.bpred.predict(d.pc);
                self.bpred.update(d.pc, taken);
                mispredicted = predicted != taken;
                if mispredicted {
                    // Trace-driven wrong path: stall fetch until the
                    // branch resolves.
                    self.branch_wait = BranchWait::Fetched;
                    fetch_break = true;
                } else if taken {
                    fetch_break = true; // taken-branch fetch break
                }
            } else if d.inst.op == Opcode::J {
                fetch_break = true;
            }
            self.fetch_buf.push_back(Fetched {
                d,
                available_at: self.now + 1,
                mispredicted,
            });
            fetched += 1;
            if fetch_break {
                break;
            }
        }
        self.fetch_lines = lines_touched;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steering::RoundRobin;
    use dca_prog::parse_asm;

    fn loop_prog() -> Program {
        parse_asm(
            "e:
                li r1, #50
                li r5, #8192
             l:
                ld r2, 0(r5)
                add r2, r2, r1
                st r2, 0(r5)
                add r5, r5, #8
                add r1, r1, #-1
                bne r1, r0, l
                halt",
        )
        .unwrap()
    }

    #[test]
    fn commits_exactly_the_dynamic_stream() {
        let p = loop_prog();
        let expected = Interp::new(&p, Memory::new()).count() as u64;
        let stats = Simulator::new(&SimConfig::paper_clustered(), &p, Memory::new())
            .run(&mut RoundRobin::new(), 1_000_000);
        assert_eq!(stats.committed, expected);
        assert!(stats.cycles > 0);
        assert!(stats.ipc() > 0.1, "ipc {}", stats.ipc());
    }

    #[test]
    fn base_machine_runs_without_copies() {
        let p = loop_prog();
        let stats = Simulator::new(&SimConfig::paper_base(), &p, Memory::new())
            .run(&mut RoundRobin::new(), 1_000_000);
        assert_eq!(stats.copies, 0, "no bypasses in the base machine");
        assert_eq!(stats.steered[1], 0, "integer code cannot enter the base FP cluster");
        assert_eq!(stats.avg_replication(), 0.0);
    }

    #[test]
    fn upper_bound_machine_at_least_as_fast_as_base() {
        let p = loop_prog();
        let base = Simulator::new(&SimConfig::paper_base(), &p, Memory::new())
            .run(&mut RoundRobin::new(), 1_000_000);
        let ub = Simulator::new(&SimConfig::paper_upper_bound(), &p, Memory::new())
            .run(&mut RoundRobin::new(), 1_000_000);
        assert_eq!(ub.committed, base.committed);
        assert!(ub.cycles <= base.cycles, "UB {} vs base {}", ub.cycles, base.cycles);
    }

    #[test]
    fn round_robin_on_clustered_machine_generates_copies() {
        let p = loop_prog();
        let stats = Simulator::new(&SimConfig::paper_clustered(), &p, Memory::new())
            .run(&mut RoundRobin::new(), 1_000_000);
        assert!(stats.copies > 0, "modulo steering must communicate");
        assert!(stats.comms_per_inst() > 0.05);
        assert!(stats.steered[0] > 0 && stats.steered[1] > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let p = loop_prog();
        let a = Simulator::new(&SimConfig::paper_clustered(), &p, Memory::new())
            .run(&mut RoundRobin::new(), 1_000_000);
        let b = Simulator::new(&SimConfig::paper_clustered(), &p, Memory::new())
            .run(&mut RoundRobin::new(), 1_000_000);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.copies, b.copies);
        assert_eq!(a.critical_copies, b.critical_copies);
        assert_eq!(a.balance, b.balance);
    }

    #[test]
    fn resumed_intervals_tile_the_full_stream() {
        let p = loop_prog();
        let cfg = SimConfig::paper_clustered();
        let full = Simulator::new(&cfg, &p, Memory::new()).run(&mut RoundRobin::new(), 1_000_000);
        let ff = dca_prog::fast_forward(&p, Memory::new(), 60, u64::MAX);
        assert!(ff.checkpoints.len() > 2, "needs several intervals");
        let mut merged = SimStats::default();
        for (k, c) in ff.checkpoints.iter().enumerate() {
            let end = ff
                .checkpoints
                .get(k + 1)
                .map_or(u64::MAX, dca_prog::Checkpoint::seq);
            let s = Simulator::resume_from(&cfg, &p, c).run(&mut RoundRobin::new(), end);
            assert!(s.committed > 0, "interval {k} is non-empty");
            merged.merge(&s);
        }
        // Warm-starting re-runs the exact functional stream: the tiled
        // intervals commit precisely the full run's instructions (the
        // cycle count differs — each interval restarts a cold backend).
        assert_eq!(merged.committed, full.committed);
        assert_eq!(merged.loads, full.loads);
        assert_eq!(merged.stores, full.stores);
        assert_eq!(merged.branches, full.branches);
    }

    #[test]
    fn functional_warming_is_excluded_from_stats() {
        let p = loop_prog();
        let cfg = SimConfig::paper_clustered();
        let mut sim = Simulator::new(&cfg, &p, Memory::new());
        let warmed = sim.warm_functional(100);
        assert_eq!(warmed, 100);
        // The fuel budget is absolute, so a budget equal to the warmed
        // count leaves nothing to measure — and the warming accesses
        // must not leak into the reported counters.
        let stats = sim.run_mut(&mut RoundRobin::new(), 100);
        assert_eq!(stats.committed, 0);
        assert_eq!(stats.l1i.accesses, 0);
        assert_eq!(stats.l1d.accesses, 0);
        assert_eq!(stats.bpred.lookups, 0);
    }

    #[test]
    fn warming_seeds_caches_and_predictor() {
        let p = loop_prog();
        let cfg = SimConfig::paper_clustered();
        // Cold interval vs the same interval warmed by its prefix.
        let ff = dca_prog::fast_forward(&p, Memory::new(), 120, u64::MAX);
        let c = &ff.checkpoints[1];
        let cold = Simulator::resume_from(&cfg, &p, c).run(&mut RoundRobin::new(), c.seq() + 60);
        let mut warm_sim = Simulator::new(&cfg, &p, Memory::new());
        let consumed = warm_sim.warm_functional(c.seq());
        assert_eq!(consumed, c.seq());
        let warm = warm_sim.run_mut(&mut RoundRobin::new(), c.seq() + 60);
        assert_eq!(warm.committed, cold.committed);
        assert!(
            warm.l1d.hits >= cold.l1d.hits,
            "warming cannot lose D-cache hits on this loop: {} vs {}",
            warm.l1d.hits,
            cold.l1d.hits
        );
    }

    #[test]
    fn fuel_truncates_long_runs() {
        let p = loop_prog();
        let stats = Simulator::new(&SimConfig::paper_clustered(), &p, Memory::new())
            .run(&mut RoundRobin::new(), 10);
        assert_eq!(stats.committed, 10);
    }

    #[test]
    fn small_machine_survives_structural_pressure() {
        let p = loop_prog();
        let stats = Simulator::new(&SimConfig::small_test(), &p, Memory::new())
            .run(&mut RoundRobin::new(), 1_000_000);
        let expected = Interp::new(&p, Memory::new()).count() as u64;
        assert_eq!(stats.committed, expected);
    }

    #[test]
    fn store_load_forwarding_is_exercised() {
        // The div keeps the ROB head busy for ~20 cycles, so the store
        // is still in the LSQ when the younger load disambiguates.
        let p = parse_asm(
            "e:
                li r1, #4096
                li r2, #7
                li r8, #1000
                li r9, #3
                div r8, r8, r9
                st r2, 0(r1)
                ld r3, 0(r1)
                add r4, r3, r3
                halt",
        )
        .unwrap();
        let stats = Simulator::new(&SimConfig::paper_clustered(), &p, Memory::new())
            .run(&mut RoundRobin::new(), 100);
        assert_eq!(stats.forwarded_loads, 1);
    }

    #[test]
    fn mispredicts_are_counted() {
        // A data-dependent branch pattern the predictor cannot learn
        // perfectly: alternating short runs.
        let p = parse_asm(
            "e:
                li r1, #200
             l:
                and r2, r1, #3
                beq r2, r0, skip
                add r3, r3, #1
             skip:
                add r1, r1, #-1
                bne r1, r0, l
                halt",
        )
        .unwrap();
        let stats = Simulator::new(&SimConfig::paper_clustered(), &p, Memory::new())
            .run(&mut RoundRobin::new(), 1_000_000);
        assert!(stats.branches >= 400);
        assert!(stats.bpred.lookups >= 400);
    }

    #[test]
    fn fp_workload_uses_fp_cluster() {
        let p = parse_asm(
            "e:
                li r1, #4096
                li r2, #30
                cvtif f1, r2
                fmov f2, f1
             l:
                fadd f2, f2, f1
                fmul f3, f2, f1
                fst f3, 0(r1)
                add r1, r1, #8
                add r2, r2, #-1
                bne r2, r0, l
                halt",
        )
        .unwrap();
        let expected = Interp::new(&p, Memory::new()).count() as u64;
        let stats = Simulator::new(&SimConfig::paper_clustered(), &p, Memory::new())
            .run(&mut RoundRobin::new(), 1_000_000);
        assert_eq!(stats.committed, expected);
        assert!(stats.steered[1] > 0, "FP ops must run in the FP cluster");
    }
}
