//! The steering interface — the hook the paper's mechanisms plug into.
//!
//! At decode/rename time the simulator presents each instruction to a
//! [`Steering`] implementation together with everything the paper's
//! hardware could observe: the instruction's PC and class, where its
//! source operands currently reside ([`SrcView`]), per-cluster ready
//! counts and queue occupancies ([`SteerCtx`]), and which clusters are
//! architecturally allowed ([`Allowed`]).
//!
//! With N-way machines the schemes *rank* candidate clusters rather
//! than picking a side: [`rank_clusters`] is the shared argmax over an
//! allowed set with deterministic lowest-index tie-breaking, and every
//! scheme expresses its policy as a (possibly lexicographic) score.
//!
//! The scheme implementations live in the `dca-steer` crate; a trivial
//! [`RoundRobin`] is provided here so the simulator can be exercised
//! without it.

use dca_isa::{ExecClass, Inst, Reg};

use crate::config::MAX_CLUSTERS;
use crate::{ClusterId, ClusterSet};

/// Which clusters may execute an instruction: the machine-capability
/// mask the steering logic must respect (complex integer → clusters
/// with integer mul/div units, FP → FP-capable clusters, simple
/// integer → every cluster with simple ALUs).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Allowed {
    set: ClusterSet,
}

impl Allowed {
    /// Both paper clusters allowed (2-cluster machines and tests; use
    /// [`Allowed::first_n`] for N-way machines).
    pub fn both() -> Allowed {
        Allowed::first_n(2)
    }

    /// Clusters `0..n` allowed.
    pub fn first_n(n: usize) -> Allowed {
        Allowed {
            set: ClusterSet::first_n(n),
        }
    }

    /// Exactly the given set allowed.
    pub fn from_set(set: ClusterSet) -> Allowed {
        Allowed { set }
    }

    /// Only `c` allowed.
    pub fn only(c: ClusterId) -> Allowed {
        Allowed {
            set: ClusterSet::only(c),
        }
    }

    /// The allowed set.
    pub fn set(&self) -> ClusterSet {
        self.set
    }

    /// `true` if `c` is allowed.
    pub fn contains(&self, c: ClusterId) -> bool {
        self.set.contains(c)
    }

    /// `true` if the steering logic actually has a choice.
    pub fn is_free(&self) -> bool {
        self.set.len() > 1
    }

    /// If exactly one cluster is allowed, returns it.
    pub fn forced(&self) -> Option<ClusterId> {
        if self.set.len() == 1 {
            self.set.first()
        } else {
            None
        }
    }

    /// Restricts `preferred` to the allowed set, falling back to the
    /// lowest-index allowed cluster when `preferred` is not allowed.
    pub fn clamp(&self, preferred: ClusterId) -> ClusterId {
        if self.contains(preferred) {
            preferred
        } else {
            self.set.first().unwrap_or(preferred)
        }
    }
}

/// The shared ranking primitive of the N-way steering interface: the
/// allowed cluster with the **highest** `score`, ties broken towards
/// the lowest index (iteration is in ascending index order and only a
/// strictly greater score displaces the incumbent). Schemes encode
/// lexicographic policies by returning tuples.
pub fn rank_clusters<K: Ord>(
    allowed: ClusterSet,
    mut score: impl FnMut(ClusterId) -> K,
) -> Option<ClusterId> {
    let mut best: Option<(ClusterId, K)> = None;
    for c in allowed.iter() {
        let k = score(c);
        match &best {
            Some((_, bk)) if k <= *bk => {}
            _ => best = Some((c, k)),
        }
    }
    best.map(|(c, _)| c)
}

/// Where one source operand currently resides.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SrcView {
    /// The logical register read.
    pub reg: Reg,
    /// Clusters in which the register has a valid (current) physical
    /// mapping — i.e. using it there needs no copy.
    pub mapped: ClusterSet,
}

impl SrcView {
    /// `true` if the operand is available in cluster `c` without a
    /// copy.
    pub fn in_cluster(&self, c: ClusterId) -> bool {
        self.mapped.contains(c)
    }
}

/// The decoded instruction as the steering hardware sees it.
#[derive(Copy, Clone, Debug)]
pub struct DecodedView<'a> {
    /// Dynamic sequence number (program order).
    pub seq: u64,
    /// Static instruction index (dense; the PC-indexed tables of the
    /// paper are modelled as tables over this index).
    pub sidx: u32,
    /// Program counter.
    pub pc: u64,
    /// The instruction.
    pub inst: &'a Inst,
    /// Functional-unit class.
    pub class: ExecClass,
    /// Source operands with their current cluster residency (up to 2;
    /// `None` entries are unused slots).
    pub srcs: [Option<SrcView>; 2],
}

impl DecodedView<'_> {
    /// Iterator over the present source views.
    pub fn src_views(&self) -> impl Iterator<Item = SrcView> + '_ {
        self.srcs.into_iter().flatten()
    }

    /// Number of source operands resident in cluster `c`.
    pub fn operands_in(&self, c: ClusterId) -> u32 {
        self.src_views().filter(|s| s.in_cluster(c)).count() as u32
    }

    /// `true` for loads/stores (the slice-defining instructions of the
    /// LdSt schemes).
    pub fn is_mem(&self) -> bool {
        self.inst.op.is_mem()
    }

    /// `true` for branches (the slice-defining instructions of the Br
    /// schemes).
    pub fn is_branch(&self) -> bool {
        self.inst.op.is_branch()
    }
}

/// Per-cycle machine state observable by the steering logic. Fixed
/// `MAX_CLUSTERS`-long arrays (entries `n..` are zero) keep this
/// `Copy` and alloc-free on the dispatch hot path.
#[derive(Copy, Clone, Debug)]
pub struct SteerCtx {
    /// Current cycle.
    pub now: u64,
    /// Number of live clusters.
    pub n: u8,
    /// Instructions with all operands ready, per cluster, at the start
    /// of this cycle — the paper's workload measure for metric I2.
    pub ready: [u32; MAX_CLUSTERS],
    /// Instruction-queue occupancy per cluster.
    pub iq_len: [u32; MAX_CLUSTERS],
    /// Issue width per cluster (constant, from the configuration).
    pub issue_width: [u32; MAX_CLUSTERS],
}

impl Default for SteerCtx {
    /// A 2-cluster context with empty queues (test convenience).
    fn default() -> SteerCtx {
        SteerCtx {
            now: 0,
            n: 2,
            ready: [0; MAX_CLUSTERS],
            iq_len: [0; MAX_CLUSTERS],
            issue_width: [0; MAX_CLUSTERS],
        }
    }
}

impl SteerCtx {
    /// The live clusters, in index order.
    pub fn clusters(&self) -> impl Iterator<Item = ClusterId> {
        (0..self.n).map(|i| ClusterId::from_index_unchecked(i as usize))
    }

    /// The cluster with the fewest queued instructions (ties → lowest
    /// index), a reasonable instantaneous "least loaded" measure.
    pub fn less_occupied(&self) -> ClusterId {
        rank_clusters(ClusterSet::first_n(self.n as usize), |c| {
            -i64::from(self.iq_len[c.index()])
        })
        .unwrap_or(ClusterId::INT)
    }

    /// The paper's instantaneous imbalance condition for metric I2 on
    /// the two-cluster machine: *"the workload is considered imbalanced
    /// when one cluster has more ready instructions than its issue
    /// width, and the other has less"*; in that case it is quantified
    /// as the difference in ready instructions (INT − FP), otherwise 0.
    pub fn instant_i2(&self) -> i64 {
        self.instant_imbalance(ClusterId::INT)
    }

    /// Per-cluster generalisation of [`SteerCtx::instant_i2`]: the sum
    /// over every *imbalanced pair* `(j, k)` — one over its issue
    /// width, the other under — of `ready[j] − ready[k]`. Positive
    /// means cluster `j` holds excess ready work. On a 2-cluster
    /// machine `instant_imbalance(INT)` is exactly the paper's I2
    /// instant and `instant_imbalance(FP)` its negation.
    pub fn instant_imbalance(&self, j: ClusterId) -> i64 {
        let ji = j.index();
        let over_j = self.ready[ji] > self.issue_width[ji];
        let under_j = self.ready[ji] < self.issue_width[ji];
        let mut sum = 0i64;
        for k in 0..self.n as usize {
            if k == ji {
                continue;
            }
            let over_k = self.ready[k] > self.issue_width[k];
            let under_k = self.ready[k] < self.issue_width[k];
            if (over_j && under_k) || (over_k && under_j) {
                sum += i64::from(self.ready[ji]) - i64::from(self.ready[k]);
            }
        }
        sum
    }
}

/// A dynamic cluster-assignment mechanism.
///
/// The simulator drives implementations through the following protocol,
/// all in program order:
///
/// 1. [`Steering::steer`] once per decoded instruction (the return
///    value is clamped to the allowed set by the caller as a safety
///    net; returning `None` requests a dispatch stall, used by the
///    FIFO-based scheme when no FIFO can accept the instruction);
/// 2. [`Steering::on_steered`] after the instruction is actually
///    dispatched (skipped if dispatch stalled for resources);
/// 3. [`Steering::on_cycle`] once at the start of every cycle;
/// 4. [`Steering::on_issued`] when any dispatched instruction leaves an
///    instruction queue;
/// 5. [`Steering::on_load_miss`] / [`Steering::on_mispredict`] when a
///    load misses the L1D or a conditional branch resolves
///    mispredicted (the criticality events of §3.7).
pub trait Steering {
    /// Short machine-readable name used in reports (e.g. `"ldst-slice"`).
    fn name(&self) -> String;

    /// Chooses a cluster for a decoded instruction, or `None` to stall
    /// dispatch this cycle.
    fn steer(&mut self, d: &DecodedView<'_>, allowed: Allowed, ctx: &SteerCtx)
        -> Option<ClusterId>;

    /// Notification that `d` was dispatched to `cluster`.
    fn on_steered(&mut self, d: &DecodedView<'_>, cluster: ClusterId, ctx: &SteerCtx) {
        let _ = (d, cluster, ctx);
    }

    /// Start-of-cycle notification.
    fn on_cycle(&mut self, ctx: &SteerCtx) {
        let _ = ctx;
    }

    /// A previously dispatched instruction (by dynamic `seq`) issued.
    fn on_issued(&mut self, seq: u64, cluster: ClusterId) {
        let _ = (seq, cluster);
    }

    /// The load at static index `sidx` missed in the L1 D-cache.
    fn on_load_miss(&mut self, sidx: u32) {
        let _ = sidx;
    }

    /// The conditional branch at static index `sidx` resolved
    /// mispredicted.
    fn on_mispredict(&mut self, sidx: u32) {
        let _ = sidx;
    }

    /// Functional-warming observation (DESIGN.md §8): called once per
    /// instruction of the committed-path stream consumed during
    /// `Simulator::warm_functional_steered`, in program order, before
    /// the measured interval opens. Schemes with *decode-time* state —
    /// the slice tables built by `observe` in `dca-steer` — rebuild it
    /// here so intervals start with warm tables instead of relearning
    /// slices from scratch. Timing-coupled state (FIFO occupancy,
    /// imbalance windows) cannot be reconstructed from the functional
    /// stream and keeps the default no-op.
    fn warm_observe(&mut self, sidx: u32, inst: &Inst) {
        let _ = (sidx, inst);
    }
}

/// Trivial reference scheme: rotates free instructions across the
/// clusters. This is the paper's **modulo steering** (§3.6); it is
/// defined here (rather than in `dca-steer`) so the simulator's own
/// tests and doctests have a scheme available.
///
/// # Example
///
/// ```
/// use dca_sim::steering::RoundRobin;
/// let rr = RoundRobin::new();
/// assert_eq!(rr.name(), "modulo");
/// # use dca_sim::Steering;
/// ```
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    next: u8,
}

impl RoundRobin {
    /// Creates the scheme starting at cluster 0.
    pub fn new() -> RoundRobin {
        RoundRobin::default()
    }
}

impl Steering for RoundRobin {
    fn name(&self) -> String {
        "modulo".into()
    }

    fn steer(
        &mut self,
        _d: &DecodedView<'_>,
        allowed: Allowed,
        ctx: &SteerCtx,
    ) -> Option<ClusterId> {
        if let Some(forced) = allowed.forced() {
            return Some(forced);
        }
        let n = ctx.n.max(1);
        // Rank by cyclic distance from the rotation pointer: the
        // pointer itself scores highest, then pointer+1, ... — on a
        // 2-cluster machine this is exactly the old alternation. Both
        // operands are `< n`, so the reductions are single compares
        // rather than divisions (this runs once per decoded µop).
        let next = self.next;
        let c = rank_clusters(allowed.set(), |c| {
            let d = c.index() as u8 + n - next;
            -i64::from(if d >= n { d - n } else { d })
        })?;
        let succ = c.index() as u8 + 1;
        self.next = if succ >= n { 0 } else { succ };
        Some(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowed_masks() {
        let b = Allowed::both();
        assert!(b.is_free() && b.forced().is_none());
        let i = Allowed::only(ClusterId::INT);
        assert!(i.contains(ClusterId::INT) && !i.contains(ClusterId::FP));
        assert_eq!(i.forced(), Some(ClusterId::INT));
        assert_eq!(i.clamp(ClusterId::FP), ClusterId::INT);
        assert_eq!(b.clamp(ClusterId::FP), ClusterId::FP);
    }

    #[test]
    fn ranking_breaks_ties_towards_lowest_index() {
        let set = ClusterSet::first_n(4);
        assert_eq!(rank_clusters(set, |_| 0), Some(ClusterId::INT));
        assert_eq!(
            rank_clusters(set, |c| i64::from(c.index() == 2)),
            ClusterId::from_index(2)
        );
        assert_eq!(rank_clusters(ClusterSet::EMPTY, |_| 0), None);
    }

    #[test]
    fn instant_i2_follows_paper_definition() {
        let mut ctx = SteerCtx::default();
        ctx.issue_width[0] = 4;
        ctx.issue_width[1] = 4;
        // One cluster above width, the other below: imbalanced.
        ctx.ready[0] = 7;
        ctx.ready[1] = 1;
        assert_eq!(ctx.instant_i2(), 6);
        assert_eq!(ctx.instant_imbalance(ClusterId::FP), -6);
        ctx.ready[0] = 1;
        ctx.ready[1] = 7;
        assert_eq!(ctx.instant_i2(), -6);
        // Both above width: the machine issues at full rate — balanced.
        ctx.ready[0] = 9;
        ctx.ready[1] = 12;
        assert_eq!(ctx.instant_i2(), 0);
        // Both below width: balanced.
        ctx.ready[0] = 2;
        ctx.ready[1] = 3;
        assert_eq!(ctx.instant_i2(), 0);
        // Exactly at width is neither over nor under.
        ctx.ready[0] = 4;
        ctx.ready[1] = 1;
        assert_eq!(ctx.instant_i2(), 0);
    }

    #[test]
    fn round_robin_alternates_and_respects_forced() {
        let mut rr = RoundRobin::new();
        let inst = dca_isa::Inst::nop();
        let d = DecodedView {
            seq: 0,
            sidx: 0,
            pc: 0,
            inst: &inst,
            class: dca_isa::ExecClass::Nop,
            srcs: [None, None],
        };
        let ctx = SteerCtx::default();
        let a = rr.steer(&d, Allowed::both(), &ctx).unwrap();
        let b = rr.steer(&d, Allowed::both(), &ctx).unwrap();
        assert_ne!(a, b);
        let f = rr.steer(&d, Allowed::only(ClusterId::FP), &ctx).unwrap();
        assert_eq!(f, ClusterId::FP);
    }

    #[test]
    fn round_robin_rotates_over_four_clusters() {
        let mut rr = RoundRobin::new();
        let inst = dca_isa::Inst::nop();
        let d = DecodedView {
            seq: 0,
            sidx: 0,
            pc: 0,
            inst: &inst,
            class: dca_isa::ExecClass::Nop,
            srcs: [None, None],
        };
        let ctx = SteerCtx {
            n: 4,
            ..SteerCtx::default()
        };
        let allowed = Allowed::first_n(4);
        let seq: Vec<usize> = (0..6)
            .map(|_| rr.steer(&d, allowed, &ctx).unwrap().index())
            .collect();
        assert_eq!(seq, vec![0, 1, 2, 3, 0, 1]);
    }
}
