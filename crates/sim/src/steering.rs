//! The steering interface — the hook the paper's mechanisms plug into.
//!
//! At decode/rename time the simulator presents each instruction to a
//! [`Steering`] implementation together with everything the paper's
//! hardware could observe: the instruction's PC and class, where its
//! source operands currently reside ([`SrcView`]), per-cluster ready
//! counts and queue occupancies ([`SteerCtx`]), and which clusters are
//! architecturally allowed ([`Allowed`]).
//!
//! The scheme implementations live in the `dca-steer` crate; a trivial
//! [`RoundRobin`] is provided here so the simulator can be exercised
//! without it.

use dca_isa::{ExecClass, Inst, Reg};

use crate::ClusterId;

/// Which clusters may execute an instruction: the machine-capability
/// mask the steering logic must respect (complex integer → integer
/// cluster, FP → FP cluster, simple integer → both — unless the
/// configuration removed the FP cluster's integer ALUs).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Allowed {
    mask: [bool; 2],
}

impl Allowed {
    /// Both clusters allowed.
    pub fn both() -> Allowed {
        Allowed { mask: [true, true] }
    }

    /// Only `c` allowed.
    pub fn only(c: ClusterId) -> Allowed {
        let mut mask = [false, false];
        mask[c.index()] = true;
        Allowed { mask }
    }

    /// `true` if `c` is allowed.
    pub fn contains(&self, c: ClusterId) -> bool {
        self.mask[c.index()]
    }

    /// `true` if the steering logic actually has a choice.
    pub fn is_free(&self) -> bool {
        self.mask[0] && self.mask[1]
    }

    /// If exactly one cluster is allowed, returns it.
    pub fn forced(&self) -> Option<ClusterId> {
        match self.mask {
            [true, false] => Some(ClusterId::Int),
            [false, true] => Some(ClusterId::Fp),
            _ => None,
        }
    }

    /// Restricts `preferred` to the allowed set, falling back to the
    /// forced cluster when `preferred` is not allowed.
    pub fn clamp(&self, preferred: ClusterId) -> ClusterId {
        if self.contains(preferred) {
            preferred
        } else {
            self.forced().unwrap_or(preferred)
        }
    }
}

/// Where one source operand currently resides.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SrcView {
    /// The logical register read.
    pub reg: Reg,
    /// `mapped[k]` is `true` if the register has a valid (current)
    /// physical mapping in cluster `k` — i.e. using it there needs no
    /// copy.
    pub mapped: [bool; 2],
}

impl SrcView {
    /// `true` if the operand is available in cluster `c` without a
    /// copy.
    pub fn in_cluster(&self, c: ClusterId) -> bool {
        self.mapped[c.index()]
    }
}

/// The decoded instruction as the steering hardware sees it.
#[derive(Copy, Clone, Debug)]
pub struct DecodedView<'a> {
    /// Dynamic sequence number (program order).
    pub seq: u64,
    /// Static instruction index (dense; the PC-indexed tables of the
    /// paper are modelled as tables over this index).
    pub sidx: u32,
    /// Program counter.
    pub pc: u64,
    /// The instruction.
    pub inst: &'a Inst,
    /// Functional-unit class.
    pub class: ExecClass,
    /// Source operands with their current cluster residency (up to 2;
    /// `None` entries are unused slots).
    pub srcs: [Option<SrcView>; 2],
}

impl DecodedView<'_> {
    /// Iterator over the present source views.
    pub fn src_views(&self) -> impl Iterator<Item = SrcView> + '_ {
        self.srcs.into_iter().flatten()
    }

    /// Number of source operands resident in cluster `c`.
    pub fn operands_in(&self, c: ClusterId) -> u32 {
        self.src_views().filter(|s| s.in_cluster(c)).count() as u32
    }

    /// `true` for loads/stores (the slice-defining instructions of the
    /// LdSt schemes).
    pub fn is_mem(&self) -> bool {
        self.inst.op.is_mem()
    }

    /// `true` for branches (the slice-defining instructions of the Br
    /// schemes).
    pub fn is_branch(&self) -> bool {
        self.inst.op.is_branch()
    }
}

/// Per-cycle machine state observable by the steering logic.
#[derive(Copy, Clone, Debug, Default)]
pub struct SteerCtx {
    /// Current cycle.
    pub now: u64,
    /// Instructions with all operands ready, per cluster, at the start
    /// of this cycle — the paper's workload measure for metric I2.
    pub ready: [u32; 2],
    /// Instruction-queue occupancy per cluster.
    pub iq_len: [u32; 2],
    /// Issue width per cluster (constant, from the configuration).
    pub issue_width: [u32; 2],
}

impl SteerCtx {
    /// The cluster with fewer queued instructions (ties → integer
    /// cluster), a reasonable instantaneous "least loaded" measure.
    pub fn less_occupied(&self) -> ClusterId {
        if self.iq_len[1] < self.iq_len[0] {
            ClusterId::Fp
        } else {
            ClusterId::Int
        }
    }

    /// The paper's instantaneous imbalance condition for metric I2:
    /// *"the workload is considered imbalanced when one cluster has
    /// more ready instructions than its issue width, and the other has
    /// less"*; in that case it is quantified as the difference in ready
    /// instructions (INT − FP), otherwise 0.
    pub fn instant_i2(&self) -> i64 {
        let over0 = self.ready[0] > self.issue_width[0];
        let over1 = self.ready[1] > self.issue_width[1];
        let under0 = self.ready[0] < self.issue_width[0];
        let under1 = self.ready[1] < self.issue_width[1];
        if (over0 && under1) || (over1 && under0) {
            i64::from(self.ready[0]) - i64::from(self.ready[1])
        } else {
            0
        }
    }
}

/// A dynamic cluster-assignment mechanism.
///
/// The simulator drives implementations through the following protocol,
/// all in program order:
///
/// 1. [`Steering::steer`] once per decoded instruction (the return
///    value is clamped to the allowed set by the caller as a safety
///    net; returning `None` requests a dispatch stall, used by the
///    FIFO-based scheme when no FIFO can accept the instruction);
/// 2. [`Steering::on_steered`] after the instruction is actually
///    dispatched (skipped if dispatch stalled for resources);
/// 3. [`Steering::on_cycle`] once at the start of every cycle;
/// 4. [`Steering::on_issued`] when any dispatched instruction leaves an
///    instruction queue;
/// 5. [`Steering::on_load_miss`] / [`Steering::on_mispredict`] when a
///    load misses the L1D or a conditional branch resolves
///    mispredicted (the criticality events of §3.7).
pub trait Steering {
    /// Short machine-readable name used in reports (e.g. `"ldst-slice"`).
    fn name(&self) -> String;

    /// Chooses a cluster for a decoded instruction, or `None` to stall
    /// dispatch this cycle.
    fn steer(&mut self, d: &DecodedView<'_>, allowed: Allowed, ctx: &SteerCtx)
        -> Option<ClusterId>;

    /// Notification that `d` was dispatched to `cluster`.
    fn on_steered(&mut self, d: &DecodedView<'_>, cluster: ClusterId, ctx: &SteerCtx) {
        let _ = (d, cluster, ctx);
    }

    /// Start-of-cycle notification.
    fn on_cycle(&mut self, ctx: &SteerCtx) {
        let _ = ctx;
    }

    /// A previously dispatched instruction (by dynamic `seq`) issued.
    fn on_issued(&mut self, seq: u64, cluster: ClusterId) {
        let _ = (seq, cluster);
    }

    /// The load at static index `sidx` missed in the L1 D-cache.
    fn on_load_miss(&mut self, sidx: u32) {
        let _ = sidx;
    }

    /// The conditional branch at static index `sidx` resolved
    /// mispredicted.
    fn on_mispredict(&mut self, sidx: u32) {
        let _ = sidx;
    }

    /// Functional-warming observation (DESIGN.md §8): called once per
    /// instruction of the committed-path stream consumed during
    /// `Simulator::warm_functional_steered`, in program order, before
    /// the measured interval opens. Schemes with *decode-time* state —
    /// the slice tables built by `observe` in `dca-steer` — rebuild it
    /// here so intervals start with warm tables instead of relearning
    /// slices from scratch. Timing-coupled state (FIFO occupancy,
    /// imbalance windows) cannot be reconstructed from the functional
    /// stream and keeps the default no-op.
    fn warm_observe(&mut self, sidx: u32, inst: &Inst) {
        let _ = (sidx, inst);
    }
}

/// Trivial reference scheme: alternates free instructions between the
/// clusters. This is the paper's **modulo steering** (§3.6); it is
/// defined here (rather than in `dca-steer`) so the simulator's own
/// tests and doctests have a scheme available.
///
/// # Example
///
/// ```
/// use dca_sim::steering::RoundRobin;
/// let rr = RoundRobin::new();
/// assert_eq!(rr.name(), "modulo");
/// # use dca_sim::Steering;
/// ```
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    next: bool,
}

impl RoundRobin {
    /// Creates the scheme starting at the integer cluster.
    pub fn new() -> RoundRobin {
        RoundRobin::default()
    }
}

impl Steering for RoundRobin {
    fn name(&self) -> String {
        "modulo".into()
    }

    fn steer(
        &mut self,
        _d: &DecodedView<'_>,
        allowed: Allowed,
        _ctx: &SteerCtx,
    ) -> Option<ClusterId> {
        if let Some(forced) = allowed.forced() {
            return Some(forced);
        }
        let c = if self.next { ClusterId::Fp } else { ClusterId::Int };
        self.next = !self.next;
        Some(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowed_masks() {
        let b = Allowed::both();
        assert!(b.is_free() && b.forced().is_none());
        let i = Allowed::only(ClusterId::Int);
        assert!(i.contains(ClusterId::Int) && !i.contains(ClusterId::Fp));
        assert_eq!(i.forced(), Some(ClusterId::Int));
        assert_eq!(i.clamp(ClusterId::Fp), ClusterId::Int);
        assert_eq!(b.clamp(ClusterId::Fp), ClusterId::Fp);
    }

    #[test]
    fn instant_i2_follows_paper_definition() {
        let mut ctx = SteerCtx {
            issue_width: [4, 4],
            ..SteerCtx::default()
        };
        // One cluster above width, the other below: imbalanced.
        ctx.ready = [7, 1];
        assert_eq!(ctx.instant_i2(), 6);
        ctx.ready = [1, 7];
        assert_eq!(ctx.instant_i2(), -6);
        // Both above width: the machine issues at full rate — balanced.
        ctx.ready = [9, 12];
        assert_eq!(ctx.instant_i2(), 0);
        // Both below width: balanced.
        ctx.ready = [2, 3];
        assert_eq!(ctx.instant_i2(), 0);
        // Exactly at width is neither over nor under.
        ctx.ready = [4, 1];
        assert_eq!(ctx.instant_i2(), 0);
    }

    #[test]
    fn round_robin_alternates_and_respects_forced() {
        let mut rr = RoundRobin::new();
        let inst = dca_isa::Inst::nop();
        let d = DecodedView {
            seq: 0,
            sidx: 0,
            pc: 0,
            inst: &inst,
            class: dca_isa::ExecClass::Nop,
            srcs: [None, None],
        };
        let ctx = SteerCtx::default();
        let a = rr.steer(&d, Allowed::both(), &ctx).unwrap();
        let b = rr.steer(&d, Allowed::both(), &ctx).unwrap();
        assert_ne!(a, b);
        let f = rr.steer(&d, Allowed::only(ClusterId::Fp), &ctx).unwrap();
        assert_eq!(f, ClusterId::Fp);
    }
}
