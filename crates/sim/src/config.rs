//! Machine configuration (the paper's Table 2) and its presets,
//! generalised to N-way (and heterogeneous) clustered machines.
//!
//! The paper evaluates exactly two clusters; this module keeps those
//! machines as presets (and the 2-cluster geometry is pinned
//! bit-identical by `tests/n2_golden.rs`) while the machine description
//! itself — [`MachineDesc`] — carries an arbitrary number of clusters
//! with per-cluster issue width, IQ size, register-file size, FU mix,
//! and an inter-cluster distance matrix.

use dca_uarch::{CombinedConfig, FuPoolConfig, HierarchyConfig};

/// Hard upper bound on clusters a single machine can have. Per-cluster
/// state in hot structures ([`SimStats`](crate::SimStats) counters,
/// steering contexts) is stored in fixed `[T; MAX_CLUSTERS]` arrays so
/// the hot paths stay alloc-free regardless of N.
pub const MAX_CLUSTERS: usize = 8;

/// Dense cluster index. The paper's two machines use cluster 0 as the
/// *integer cluster* (it owns the complex integer units — the paper's
/// "cluster 1" / C1) and cluster 1 as the *FP cluster* (the paper's
/// "cluster 2" / C2); N-way machines simply use indices `0..n`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterId(u8);

impl ClusterId {
    /// The integer cluster of the 2-cluster paper machines (index 0).
    pub const INT: ClusterId = ClusterId(0);
    /// The FP cluster of the 2-cluster paper machines (index 1).
    pub const FP: ClusterId = ClusterId(1);

    /// The two paper clusters, in index order. Only meaningful for
    /// 2-cluster machines and tests; N-aware code iterates
    /// [`SimConfig::clusters`] instead.
    pub const BOTH: [ClusterId; 2] = [ClusterId::INT, ClusterId::FP];

    /// Dense index. Masked to `MAX_CLUSTERS - 1` (a no-op for every id
    /// this crate constructs) so indexing a `[T; MAX_CLUSTERS]` array
    /// compiles without a bounds check.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize & (MAX_CLUSTERS - 1)
    }

    /// Cluster from a dense index; `None` if `i >= MAX_CLUSTERS`.
    #[inline]
    pub fn from_index(i: usize) -> Option<ClusterId> {
        if i < MAX_CLUSTERS {
            Some(ClusterId(i as u8))
        } else {
            None
        }
    }

    /// Cluster from a dense index the caller has already bounds-checked
    /// (hot paths: loop indices over `0..n_clusters`). Debug builds
    /// still assert.
    #[inline]
    pub fn from_index_unchecked(i: usize) -> ClusterId {
        debug_assert!(i < MAX_CLUSTERS, "cluster index {i} out of range");
        ClusterId(i as u8)
    }

    /// The other cluster of a 2-cluster machine. Meaningless for N>2 —
    /// N-aware code ranks candidates instead of flipping.
    #[inline]
    pub fn other(self) -> ClusterId {
        ClusterId(self.0 ^ 1)
    }
}

impl std::fmt::Display for ClusterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The historical names for the two paper clusters (kept so
        // 2-cluster traces render identically); higher indices are
        // plain "C2", "C3", ...
        match self.0 {
            0 => f.write_str("INT"),
            1 => f.write_str("FP"),
            n => write!(f, "C{n}"),
        }
    }
}

/// A small set of clusters (bitmask over dense indices). Replaces the
/// old pair-of-bools in steering interfaces.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct ClusterSet(u8);

impl ClusterSet {
    /// The empty set.
    pub const EMPTY: ClusterSet = ClusterSet(0);

    /// The set `{0, 1, ..., n-1}`.
    #[inline]
    pub fn first_n(n: usize) -> ClusterSet {
        debug_assert!(n <= MAX_CLUSTERS);
        ClusterSet(if n >= 8 { u8::MAX } else { (1u8 << n) - 1 })
    }

    /// The singleton set `{c}`.
    #[inline]
    pub fn only(c: ClusterId) -> ClusterSet {
        ClusterSet(1 << c.0)
    }

    /// Adds `c` to the set.
    #[inline]
    pub fn insert(&mut self, c: ClusterId) {
        self.0 |= 1 << c.0;
    }

    /// Removes `c` from the set.
    #[inline]
    pub fn remove(&mut self, c: ClusterId) {
        self.0 &= !(1 << c.0);
    }

    /// `true` if `c` is a member.
    #[inline]
    pub fn contains(self, c: ClusterId) -> bool {
        self.0 & (1 << c.0) != 0
    }

    /// `true` if no cluster is a member.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of clusters in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Members in ascending index order.
    #[inline]
    pub fn iter(self) -> impl Iterator<Item = ClusterId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let i = bits.trailing_zeros() as u8;
            bits &= bits - 1;
            Some(ClusterId(i))
        })
    }

    /// The lowest-index member, if any.
    #[inline]
    pub fn first(self) -> Option<ClusterId> {
        if self.0 == 0 {
            None
        } else {
            Some(ClusterId(self.0.trailing_zeros() as u8))
        }
    }
}

/// Which issue-engine implementation drives the backend. Both produce
/// **bit-for-bit identical** [`SimStats`](crate::SimStats) (enforced by
/// `tests/engine_equivalence.rs`); they differ only in host-side cost.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Event-driven wakeup lists: per-register waiter lists, per-cluster
    /// ready lists, O(1) ready counts and idle-cycle skip-ahead. The
    /// default.
    #[default]
    Event,
    /// The original per-cycle linear scan over every IQ entry and
    /// source register. Kept as the executable specification the event
    /// engine is checked against.
    Scan,
}

/// Full machine configuration. Public fields in the spirit of a plain
/// parameter record; [`SimConfig::validate`] checks consistency and the
/// presets encode the paper's machines. Per-cluster arrays are
/// `MAX_CLUSTERS` long with entries `n_clusters..` unused (zero).
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// Number of live clusters (2 for every paper machine).
    pub n_clusters: u8,
    /// Instructions fetched per cycle (paper: 8).
    pub fetch_width: u32,
    /// Instructions decoded/renamed per cycle (paper: 8).
    pub decode_width: u32,
    /// Instructions retired per cycle (paper: 8).
    pub retire_width: u32,
    /// Reorder-buffer entries = max in-flight instructions (paper: 64).
    pub rob_size: u32,
    /// Instruction-queue entries per cluster (paper: 64 + 64).
    pub iq_size: [u32; MAX_CLUSTERS],
    /// Issue width per cluster (paper: 4 + 4).
    pub issue_width: [u32; MAX_CLUSTERS],
    /// Physical registers per cluster (paper: 96 + 96).
    pub phys_regs: [u32; MAX_CLUSTERS],
    /// Functional units per cluster.
    pub fus: [FuPoolConfig; MAX_CLUSTERS],
    /// Inter-cluster transfers per cycle per *source* cluster
    /// (paper: 3).
    pub buses_per_dir: u32,
    /// Extra cycles an inter-cluster bypass adds over a local bypass
    /// (paper: 1).
    pub copy_latency: u32,
    /// Additional copy latency between specific cluster pairs on top of
    /// [`SimConfig::copy_latency`] — the inter-cluster *distance*
    /// matrix, `extra_distance[src][dst]` cycles. All-zero for the
    /// paper machines (a flat crossbar).
    pub extra_distance: [[u8; MAX_CLUSTERS]; MAX_CLUSTERS],
    /// D-cache read/write ports shared by loads and committing stores
    /// (paper: 3).
    pub dcache_ports: u32,
    /// Register-file read ports per cluster consumed at issue; `0`
    /// models unconstrained ports (the default — Table 2 does not give
    /// port counts, but §2 says copies "compete for … register file
    /// ports as any other instruction", which this knob exposes for
    /// ablation).
    pub rf_read_ports: [u32; MAX_CLUSTERS],
    /// Register-file write ports per cluster consumed at issue (result
    /// and copy-destination writes); `0` = unconstrained.
    pub rf_write_ports: [u32; MAX_CLUSTERS],
    /// Cache/memory hierarchy parameters.
    pub hierarchy: HierarchyConfig,
    /// Branch predictor geometry.
    pub bpred: CombinedConfig,
    /// Whether the inter-cluster bypasses exist. `false` reproduces the
    /// *base* (conventional) machine, which communicates only through
    /// memory.
    pub intercluster: bool,
    /// Upper-bound machine: a single unified cluster (index 0) holding
    /// the union of all resources; steering is ignored.
    pub unified: bool,
    /// Fetch-buffer capacity in instructions.
    pub fetch_buffer: u32,
    /// Issue-engine implementation (host-side choice; no timing effect).
    pub engine: Engine,
}

/// Fills a `MAX_CLUSTERS`-long per-cluster array from the given prefix,
/// zeroing (defaulting) the rest — the convenient way to write ablated
/// configs without spelling out all eight slots.
pub fn per_cluster<T: Copy + Default>(prefix: &[T]) -> [T; MAX_CLUSTERS] {
    let mut a = [T::default(); MAX_CLUSTERS];
    a[..prefix.len()].copy_from_slice(prefix);
    a
}

/// An empty FU pool for unused cluster slots.
fn no_fus() -> FuPoolConfig {
    FuPoolConfig {
        int_alu: 0,
        int_muldiv: 0,
        fp_alu: 0,
        fp_muldiv: 0,
    }
}

fn fus_from(prefix: &[FuPoolConfig]) -> [FuPoolConfig; MAX_CLUSTERS] {
    let mut a = [no_fus(); MAX_CLUSTERS];
    a[..prefix.len()].copy_from_slice(prefix);
    a
}

impl SimConfig {
    /// The paper's clustered machine (Table 2).
    pub fn paper_clustered() -> SimConfig {
        SimConfig {
            n_clusters: 2,
            fetch_width: 8,
            decode_width: 8,
            retire_width: 8,
            rob_size: 64,
            iq_size: per_cluster(&[64, 64]),
            issue_width: per_cluster(&[4, 4]),
            phys_regs: per_cluster(&[96, 96]),
            fus: fus_from(&[
                FuPoolConfig::paper_int_cluster(),
                FuPoolConfig::paper_fp_cluster(),
            ]),
            buses_per_dir: 3,
            copy_latency: 1,
            extra_distance: [[0; MAX_CLUSTERS]; MAX_CLUSTERS],
            dcache_ports: 3,
            rf_read_ports: [0; MAX_CLUSTERS],
            rf_write_ports: [0; MAX_CLUSTERS],
            hierarchy: HierarchyConfig::default(),
            bpred: CombinedConfig::default(),
            intercluster: true,
            unified: false,
            fetch_buffer: 16,
            engine: Engine::default(),
        }
    }

    /// The *base* conventional machine the paper reports speed-ups
    /// against: identical parameters, but the FP cluster has **no**
    /// simple integer units and there are **no** inter-cluster
    /// bypasses.
    pub fn paper_base() -> SimConfig {
        SimConfig {
            fus: fus_from(&[
                FuPoolConfig::paper_int_cluster(),
                FuPoolConfig::base_fp_cluster(),
            ]),
            intercluster: false,
            ..SimConfig::paper_clustered()
        }
    }

    /// The paper's upper bound ("UB arch"): a 16-way issue processor
    /// (8 integer + 8 FP) with no communication penalty, modelled as a
    /// single unified cluster with 8-wide issue on the integer side —
    /// the binding constraint for SpecInt workloads — and the union of
    /// all functional units.
    pub fn paper_upper_bound() -> SimConfig {
        SimConfig {
            iq_size: per_cluster(&[128, 0]),
            issue_width: per_cluster(&[8, 0]),
            phys_regs: per_cluster(&[192, 0]),
            fus: fus_from(&[FuPoolConfig::paper_unified(), FuPoolConfig::base_fp_cluster()]),
            unified: true,
            intercluster: false,
            ..SimConfig::paper_clustered()
        }
    }

    /// The clustered machine with a single bus each way (§3.8 claims
    /// performance is unchanged).
    pub fn one_bus() -> SimConfig {
        SimConfig {
            buses_per_dir: 1,
            ..SimConfig::paper_clustered()
        }
    }

    /// A deliberately tiny machine for stress tests: 2-wide everything,
    /// small queues — surfaces structural-hazard bugs quickly.
    pub fn small_test() -> SimConfig {
        SimConfig {
            fetch_width: 2,
            decode_width: 2,
            retire_width: 2,
            rob_size: 8,
            iq_size: per_cluster(&[4, 4]),
            issue_width: per_cluster(&[2, 2]),
            phys_regs: per_cluster(&[48, 72]),
            buses_per_dir: 1,
            fetch_buffer: 4,
            ..SimConfig::paper_clustered()
        }
    }

    /// A homogeneous N-cluster extension of the paper machine:
    /// cluster 0 keeps the complex integer units, cluster 1 keeps the
    /// FP units (plus its 3 simple ALUs), and clusters `2..n` are
    /// simple integer clusters (3 ALUs) with the same queue/register/
    /// issue geometry. `n_clustered(2)` *is* the paper's clustered
    /// machine, bit for bit.
    ///
    /// # Errors
    ///
    /// Rejects `n` outside `2..=MAX_CLUSTERS`.
    pub fn n_clustered(n: usize) -> Result<SimConfig, String> {
        if !(2..=MAX_CLUSTERS).contains(&n) {
            return Err(format!("cluster count {n} outside 2..={MAX_CLUSTERS}"));
        }
        let mut cfg = SimConfig::paper_clustered();
        cfg.n_clusters = n as u8;
        let simple = FuPoolConfig {
            int_alu: 3,
            int_muldiv: 0,
            fp_alu: 0,
            fp_muldiv: 0,
        };
        for c in 2..n {
            cfg.iq_size[c] = 64;
            cfg.issue_width[c] = 4;
            cfg.phys_regs[c] = 96;
            cfg.fus[c] = simple;
        }
        Ok(cfg)
    }

    /// Number of live clusters as a `usize`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n_clusters as usize
    }

    /// The live clusters, in index order.
    #[inline]
    pub fn clusters(&self) -> impl Iterator<Item = ClusterId> {
        (0..self.n_clusters).map(ClusterId)
    }

    /// The cluster owning the FP register bank: the first cluster with
    /// FP units (cluster 1 on the paper machines, cluster 0 on the
    /// unified upper bound).
    pub fn fp_cluster(&self) -> ClusterId {
        self.clusters()
            .find(|c| self.fus[c.index()].fp_alu > 0 || self.fus[c.index()].fp_muldiv > 0)
            .unwrap_or(ClusterId::INT)
    }

    /// A stable hash of every *timing-relevant* field (the engine
    /// choice is excluded — both engines are bit-identical). Used to
    /// key stored results so runs on different geometries or ablated
    /// configs can never collide. Derived from the `Debug` rendering,
    /// so any field addition/change also changes the hash — exactly
    /// the staleness behaviour a persistent store wants.
    pub fn config_hash(&self) -> u64 {
        let mut canon = self.clone();
        canon.engine = Engine::Event;
        fnv64(format!("{canon:?}").as_bytes())
    }

    /// A stable hash of the warming-relevant subset (cache hierarchy +
    /// branch predictor geometry). Checkpoint streams carry functional
    /// state plus µarch warming snapshots; two configs with equal
    /// `uarch_hash` can share a stream even if their cluster geometry
    /// differs.
    pub fn uarch_hash(&self) -> u64 {
        fnv64(format!("{:?}/{:?}", self.hierarchy, self.bpred).as_bytes())
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint (e.g. fewer physical registers than architectural
    /// state requires).
    pub fn validate(&self) -> Result<(), String> {
        if !(2..=MAX_CLUSTERS as u8).contains(&self.n_clusters) {
            return Err(format!(
                "cluster count {} outside 2..={MAX_CLUSTERS}",
                self.n_clusters
            ));
        }
        if self.fetch_width == 0 || self.decode_width == 0 || self.retire_width == 0 {
            return Err("pipeline widths must be non-zero".into());
        }
        if self.rob_size == 0 {
            return Err("ROB must have at least one entry".into());
        }
        // Architectural mappings: 31 int regs in cluster 0 (r0 is not
        // renamed), 32 FP regs in the FP cluster. With inter-cluster
        // bypasses any cluster can additionally hold a live *replica*
        // of every integer register (the paper's replication, Figure
        // 15), so each register file must cover its long-lived
        // mappings plus at least one in-flight allocation — undersizing
        // it deadlocks dispatch once replicas accumulate. The paper's
        // 96 registers satisfy this comfortably.
        if self.phys_regs[0] < 31 + 1 {
            return Err("cluster 0 needs at least 32 physical registers".into());
        }
        let fp_cluster = self.fp_cluster().index();
        // Unified: 31 int + 32 FP architectural mappings share the one
        // file. Clustered with bypasses: 32 FP plus up to 31 integer
        // *replicas*. Both compositions need the same 63 long-lived
        // mappings; without bypasses only the FP bank lives there.
        let fp_need = if self.unified || self.intercluster {
            31 + 32 + 1
        } else {
            32 + 1
        };
        if self.phys_regs[fp_cluster] < fp_need {
            return Err(format!(
                "cluster {fp_cluster} needs at least {fp_need} physical registers                  (architectural state + possible replicas + one in flight)"
            ));
        }
        if self.unified && self.intercluster {
            return Err("a unified machine has no inter-cluster buses".into());
        }
        if self.intercluster && self.buses_per_dir == 0 {
            return Err("clustered machine needs at least one bus per direction".into());
        }
        for c in 2..self.n() {
            if self.intercluster && self.phys_regs[c] < 31 + 1 {
                return Err(format!(
                    "cluster {c} needs at least 32 physical registers to hold replicas"
                ));
            }
            if !self.unified && self.iq_size[c] == 0 {
                return Err(format!("cluster {c} has no instruction-queue entries"));
            }
        }
        for c in 0..self.n() {
            if self.rf_read_ports[c] == 1 {
                return Err(format!(
                    "cluster {c}: 1 RF read port cannot issue two-source \
                     instructions (use 0 for unconstrained or >= 2)"
                ));
            }
            let f = &self.fus[c];
            if (f.fp_alu > 0) != (f.fp_muldiv > 0) {
                return Err(format!(
                    "cluster {c}: FP-capable clusters need both FP ALU and FP \
                     mul/div units (steering treats FP capability as atomic)"
                ));
            }
        }
        if self.fetch_buffer < self.fetch_width {
            return Err("fetch buffer must hold at least one fetch group".into());
        }
        Ok(())
    }
}

impl Default for SimConfig {
    /// Defaults to the paper's clustered machine.
    fn default() -> SimConfig {
        SimConfig::paper_clustered()
    }
}

/// FNV-1a over a byte string — the store's stable, dependency-free
/// content hash.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Geometry of one cluster, as carried by a [`MachineDesc`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ClusterDesc {
    /// Instructions issued per cycle.
    pub issue_width: u32,
    /// Instruction-queue entries.
    pub iq_size: u32,
    /// Physical registers.
    pub phys_regs: u32,
    /// Functional-unit mix.
    pub fus: FuPoolConfig,
}

/// A machine *geometry*: the per-cluster shape plus the inter-cluster
/// distance matrix, independent of the front-end/memory parameters it
/// is applied on top of. Parsed from `--geometry` specs, produced by
/// the N-cluster presets, and applied to a base [`SimConfig`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineDesc {
    /// Per-cluster geometry, index order.
    pub clusters: Vec<ClusterDesc>,
    /// `extra_distance[src][dst]` extra copy cycles (row-major,
    /// `n*n` entries).
    pub extra_distance: Vec<u8>,
}

impl MachineDesc {
    /// The geometry of an existing config.
    pub fn from_config(cfg: &SimConfig) -> MachineDesc {
        let n = cfg.n();
        let clusters = (0..n)
            .map(|c| ClusterDesc {
                issue_width: cfg.issue_width[c],
                iq_size: cfg.iq_size[c],
                phys_regs: cfg.phys_regs[c],
                fus: cfg.fus[c],
            })
            .collect();
        let mut extra_distance = Vec::with_capacity(n * n);
        for s in 0..n {
            for d in 0..n {
                extra_distance.push(cfg.extra_distance[s][d]);
            }
        }
        MachineDesc {
            clusters,
            extra_distance,
        }
    }

    /// The homogeneous N-cluster preset (see
    /// [`SimConfig::n_clustered`]).
    ///
    /// # Errors
    ///
    /// Rejects `n` outside `2..=MAX_CLUSTERS`.
    pub fn homogeneous(n: usize) -> Result<MachineDesc, String> {
        Ok(MachineDesc::from_config(&SimConfig::n_clustered(n)?))
    }

    /// The heterogeneous 4-cluster preset: the two paper clusters plus
    /// two narrow satellites (2-wide, half-size queues and register
    /// files, 2 simple ALUs) on a linear topology where each hop past
    /// an adjacent cluster costs one extra copy cycle.
    pub fn hetero4() -> MachineDesc {
        let narrow = ClusterDesc {
            issue_width: 2,
            iq_size: 32,
            phys_regs: 48,
            fus: FuPoolConfig {
                int_alu: 2,
                int_muldiv: 0,
                fp_alu: 0,
                fp_muldiv: 0,
            },
        };
        let mut desc = MachineDesc::from_config(&SimConfig::paper_clustered());
        desc.clusters.push(narrow);
        desc.clusters.push(narrow);
        desc.extra_distance = MachineDesc::line_distance(4);
        desc
    }

    /// Linear-topology distance: adjacent clusters are free, each
    /// further hop adds one cycle.
    fn line_distance(n: usize) -> Vec<u8> {
        let mut m = Vec::with_capacity(n * n);
        for s in 0..n {
            for d in 0..n {
                m.push((s as i32 - d as i32).unsigned_abs().saturating_sub(1) as u8);
            }
        }
        m
    }

    /// Parses a geometry spec: either a named preset (`homo2`, `homo4`,
    /// `homo8`, `hetero4`) or a comma-separated list of per-cluster
    /// descriptors `i<issue>q<iq>r<regs>[a<alus>][m][f]` where `m`
    /// grants the integer mul/div unit, `f` the FP units (3 ALU +
    /// 1 mul/div), and `a` overrides the simple-ALU count (default 3).
    /// An optional `@line` suffix selects the linear-topology distance
    /// matrix (default: flat, all-zero).
    ///
    /// # Errors
    ///
    /// Describes the first malformed token.
    pub fn parse(spec: &str) -> Result<MachineDesc, String> {
        match spec {
            "homo2" => return MachineDesc::homogeneous(2),
            "homo4" => return MachineDesc::homogeneous(4),
            "homo8" => return MachineDesc::homogeneous(8),
            "hetero4" => return Ok(MachineDesc::hetero4()),
            _ => {}
        }
        let (body, line) = match spec.strip_suffix("@line") {
            Some(b) => (b, true),
            None => (spec, false),
        };
        let mut clusters = Vec::new();
        for tok in body.split(',') {
            clusters.push(parse_cluster_desc(tok.trim())?);
        }
        let n = clusters.len();
        if !(2..=MAX_CLUSTERS).contains(&n) {
            return Err(format!("geometry has {n} clusters, need 2..={MAX_CLUSTERS}"));
        }
        let extra_distance = if line {
            MachineDesc::line_distance(n)
        } else {
            vec![0; n * n]
        };
        Ok(MachineDesc {
            clusters,
            extra_distance,
        })
    }

    /// Applies this geometry on top of `base` (front-end widths, memory
    /// hierarchy, bus count etc. are retained) and validates the
    /// result.
    ///
    /// # Errors
    ///
    /// Propagates [`SimConfig::validate`] failures and rejects
    /// out-of-range cluster counts.
    pub fn apply(&self, base: &SimConfig) -> Result<SimConfig, String> {
        let n = self.clusters.len();
        if !(2..=MAX_CLUSTERS).contains(&n) {
            return Err(format!("geometry has {n} clusters, need 2..={MAX_CLUSTERS}"));
        }
        if self.extra_distance.len() != n * n {
            return Err(format!(
                "distance matrix has {} entries, need {}",
                self.extra_distance.len(),
                n * n
            ));
        }
        let mut cfg = base.clone();
        cfg.n_clusters = n as u8;
        cfg.iq_size = [0; MAX_CLUSTERS];
        cfg.issue_width = [0; MAX_CLUSTERS];
        cfg.phys_regs = [0; MAX_CLUSTERS];
        cfg.fus = [no_fus(); MAX_CLUSTERS];
        cfg.extra_distance = [[0; MAX_CLUSTERS]; MAX_CLUSTERS];
        for (c, d) in self.clusters.iter().enumerate() {
            cfg.iq_size[c] = d.iq_size;
            cfg.issue_width[c] = d.issue_width;
            cfg.phys_regs[c] = d.phys_regs;
            cfg.fus[c] = d.fus;
        }
        for s in 0..n {
            for d in 0..n {
                cfg.extra_distance[s][d] = self.extra_distance[s * n + d];
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }
}

fn parse_cluster_desc(tok: &str) -> Result<ClusterDesc, String> {
    let bad = |why: &str| format!("bad cluster descriptor {tok:?}: {why}");
    let mut issue = None;
    let mut iq = None;
    let mut regs = None;
    let mut alus: Option<u32> = None;
    let mut muldiv = false;
    let mut fp = false;
    let bytes = tok.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let key = bytes[i] as char;
        i += 1;
        match key {
            'm' => {
                muldiv = true;
                continue;
            }
            'f' => {
                fp = true;
                continue;
            }
            'i' | 'q' | 'r' | 'a' => {}
            other => return Err(bad(&format!("unknown key {other:?}"))),
        }
        let start = i;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
        let v: u32 = tok[start..i]
            .parse()
            .map_err(|_| bad(&format!("key {key:?} needs a number")))?;
        match key {
            'i' => issue = Some(v),
            'q' => iq = Some(v),
            'r' => regs = Some(v),
            'a' => alus = Some(v),
            _ => unreachable!(),
        }
    }
    let issue = issue.ok_or_else(|| bad("missing issue width (i<n>)"))?;
    let iq = iq.ok_or_else(|| bad("missing IQ size (q<n>)"))?;
    let regs = regs.ok_or_else(|| bad("missing register count (r<n>)"))?;
    Ok(ClusterDesc {
        issue_width: issue,
        iq_size: iq,
        phys_regs: regs,
        fus: FuPoolConfig {
            int_alu: alus.unwrap_or(3),
            int_muldiv: u32::from(muldiv),
            fp_alu: if fp { 3 } else { 0 },
            fp_muldiv: u32::from(fp),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for cfg in [
            SimConfig::paper_clustered(),
            SimConfig::paper_base(),
            SimConfig::paper_upper_bound(),
            SimConfig::one_bus(),
            SimConfig::small_test(),
            SimConfig::n_clustered(4).unwrap(),
            SimConfig::n_clustered(8).unwrap(),
            MachineDesc::hetero4()
                .apply(&SimConfig::paper_clustered())
                .unwrap(),
        ] {
            cfg.validate().expect("preset must be valid");
        }
    }

    #[test]
    fn cluster_id_round_trips() {
        for c in ClusterId::BOTH {
            assert_eq!(ClusterId::from_index(c.index()), Some(c));
            assert_ne!(c.other(), c);
            assert_eq!(c.other().other(), c);
        }
        assert_eq!(ClusterId::from_index(MAX_CLUSTERS), None);
        assert_eq!(ClusterId::from_index(7).unwrap().to_string(), "C7");
        assert_eq!(ClusterId::INT.to_string(), "INT");
        assert_eq!(ClusterId::FP.to_string(), "FP");
    }

    #[test]
    fn cluster_sets() {
        let mut s = ClusterSet::first_n(3);
        assert_eq!(s.len(), 3);
        assert!(s.contains(ClusterId::INT));
        s.remove(ClusterId::INT);
        assert_eq!(s.first(), Some(ClusterId::FP));
        assert_eq!(
            s.iter().map(|c| c.index()).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert!(ClusterSet::EMPTY.is_empty());
        assert_eq!(ClusterSet::first_n(MAX_CLUSTERS).len(), MAX_CLUSTERS);
    }

    #[test]
    fn n2_preset_is_the_paper_machine() {
        assert_eq!(SimConfig::n_clustered(2).unwrap(), SimConfig::paper_clustered());
        assert_eq!(
            MachineDesc::homogeneous(2)
                .unwrap()
                .apply(&SimConfig::paper_clustered())
                .unwrap(),
            SimConfig::paper_clustered()
        );
    }

    #[test]
    fn geometry_hash_separates_machines() {
        let a = SimConfig::paper_clustered();
        let b = SimConfig::n_clustered(4).unwrap();
        let c = SimConfig {
            copy_latency: 2,
            ..SimConfig::paper_clustered()
        };
        assert_ne!(a.config_hash(), b.config_hash());
        assert_ne!(a.config_hash(), c.config_hash());
        // The engine choice must not affect the hash (both engines are
        // bit-identical).
        let d = SimConfig {
            engine: Engine::Scan,
            ..SimConfig::paper_clustered()
        };
        assert_eq!(a.config_hash(), d.config_hash());
        // Warming hash ignores cluster geometry.
        assert_eq!(a.uarch_hash(), b.uarch_hash());
    }

    #[test]
    fn geometry_spec_parses() {
        let d = MachineDesc::parse("i4q64r96m,i4q64r96f,i2q32r48a2,i2q32r48a2@line").unwrap();
        assert_eq!(d.clusters.len(), 4);
        assert_eq!(d.clusters[0].fus.int_muldiv, 1);
        assert_eq!(d.clusters[1].fus.fp_alu, 3);
        assert_eq!(d.clusters[2].fus.int_alu, 2);
        // line distance: 0<->2 is one extra hop.
        assert_eq!(d.extra_distance[2], 1);
        assert_eq!(d.extra_distance[1], 0);
        assert!(MachineDesc::parse("i4q64").is_err());
        assert!(MachineDesc::parse("x9").is_err());
        assert_eq!(
            MachineDesc::parse("homo4").unwrap(),
            MachineDesc::homogeneous(4).unwrap()
        );
    }

    #[test]
    fn base_machine_has_no_int_units_in_fp_cluster() {
        let base = SimConfig::paper_base();
        assert_eq!(base.fus[1].int_alu, 0);
        assert!(!base.intercluster);
    }

    #[test]
    fn fp_cluster_follows_fu_mix() {
        assert_eq!(SimConfig::paper_clustered().fp_cluster(), ClusterId::FP);
        assert_eq!(SimConfig::paper_base().fp_cluster(), ClusterId::FP);
        assert_eq!(SimConfig::paper_upper_bound().fp_cluster(), ClusterId::INT);
    }

    #[test]
    fn validate_rejects_tiny_regfiles() {
        let cfg = SimConfig {
            phys_regs: per_cluster(&[16, 96]),
            ..SimConfig::paper_clustered()
        };
        assert!(cfg.validate().is_err());
        // A clustered FP register file must also cover integer replicas.
        let cfg = SimConfig {
            phys_regs: per_cluster(&[96, 40]),
            ..SimConfig::paper_clustered()
        };
        assert!(cfg.validate().is_err());
        // ... unless the machine has no bypasses (no replication).
        let cfg = SimConfig {
            phys_regs: per_cluster(&[96, 40]),
            ..SimConfig::paper_base()
        };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_rejects_unified_with_buses() {
        let cfg = SimConfig {
            unified: true,
            intercluster: true,
            phys_regs: per_cluster(&[192, 0]),
            ..SimConfig::paper_clustered()
        };
        assert!(cfg.validate().is_err());
    }
}
