//! Machine configuration (the paper's Table 2) and its presets.

use dca_uarch::{CombinedConfig, FuPoolConfig, HierarchyConfig};

/// One of the two clusters. The paper calls cluster 1 the *integer
/// cluster* (it owns the complex integer units) and cluster 2 the *FP
/// cluster* (it owns the FP units and, in the clustered machine, three
/// simple integer ALUs).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ClusterId {
    /// The integer cluster (paper's "cluster 1" / C1).
    Int,
    /// The FP cluster (paper's "cluster 2" / C2).
    Fp,
}

impl ClusterId {
    /// Dense index: `Int` → 0, `Fp` → 1.
    pub fn index(self) -> usize {
        match self {
            ClusterId::Int => 0,
            ClusterId::Fp => 1,
        }
    }

    /// The other cluster.
    pub fn other(self) -> ClusterId {
        match self {
            ClusterId::Int => ClusterId::Fp,
            ClusterId::Fp => ClusterId::Int,
        }
    }

    /// Both clusters, in index order.
    pub const BOTH: [ClusterId; 2] = [ClusterId::Int, ClusterId::Fp];

    /// Cluster from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `i > 1`.
    pub fn from_index(i: usize) -> ClusterId {
        match i {
            0 => ClusterId::Int,
            1 => ClusterId::Fp,
            _ => panic!("cluster index {i} out of range"),
        }
    }
}

impl std::fmt::Display for ClusterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterId::Int => f.write_str("INT"),
            ClusterId::Fp => f.write_str("FP"),
        }
    }
}

/// Which issue-engine implementation drives the backend. Both produce
/// **bit-for-bit identical** [`SimStats`](crate::SimStats) (enforced by
/// `tests/engine_equivalence.rs`); they differ only in host-side cost.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Event-driven wakeup lists: per-register waiter lists, per-cluster
    /// ready lists, O(1) ready counts and idle-cycle skip-ahead. The
    /// default.
    #[default]
    Event,
    /// The original per-cycle linear scan over every IQ entry and
    /// source register. Kept as the executable specification the event
    /// engine is checked against.
    Scan,
}

/// Full machine configuration. Public fields in the spirit of a plain
/// parameter record; [`SimConfig::validate`] checks consistency and the
/// presets encode the paper's machines.
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// Instructions fetched per cycle (paper: 8).
    pub fetch_width: u32,
    /// Instructions decoded/renamed per cycle (paper: 8).
    pub decode_width: u32,
    /// Instructions retired per cycle (paper: 8).
    pub retire_width: u32,
    /// Reorder-buffer entries = max in-flight instructions (paper: 64).
    pub rob_size: u32,
    /// Instruction-queue entries per cluster (paper: 64 + 64).
    pub iq_size: [u32; 2],
    /// Issue width per cluster (paper: 4 + 4).
    pub issue_width: [u32; 2],
    /// Physical registers per cluster (paper: 96 + 96).
    pub phys_regs: [u32; 2],
    /// Functional units per cluster.
    pub fus: [FuPoolConfig; 2],
    /// Inter-cluster transfers per cycle per direction (paper: 3).
    pub buses_per_dir: u32,
    /// Extra cycles an inter-cluster bypass adds over a local bypass
    /// (paper: 1).
    pub copy_latency: u32,
    /// D-cache read/write ports shared by loads and committing stores
    /// (paper: 3).
    pub dcache_ports: u32,
    /// Register-file read ports per cluster consumed at issue; `0`
    /// models unconstrained ports (the default — Table 2 does not give
    /// port counts, but §2 says copies "compete for … register file
    /// ports as any other instruction", which this knob exposes for
    /// ablation).
    pub rf_read_ports: [u32; 2],
    /// Register-file write ports per cluster consumed at issue (result
    /// and copy-destination writes); `0` = unconstrained.
    pub rf_write_ports: [u32; 2],
    /// Cache/memory hierarchy parameters.
    pub hierarchy: HierarchyConfig,
    /// Branch predictor geometry.
    pub bpred: CombinedConfig,
    /// Whether the inter-cluster bypasses exist. `false` reproduces the
    /// *base* (conventional) machine, which communicates only through
    /// memory.
    pub intercluster: bool,
    /// Upper-bound machine: a single unified cluster (index 0) holding
    /// the union of all resources; steering is ignored.
    pub unified: bool,
    /// Fetch-buffer capacity in instructions.
    pub fetch_buffer: u32,
    /// Issue-engine implementation (host-side choice; no timing effect).
    pub engine: Engine,
}

impl SimConfig {
    /// The paper's clustered machine (Table 2).
    pub fn paper_clustered() -> SimConfig {
        SimConfig {
            fetch_width: 8,
            decode_width: 8,
            retire_width: 8,
            rob_size: 64,
            iq_size: [64, 64],
            issue_width: [4, 4],
            phys_regs: [96, 96],
            fus: [
                FuPoolConfig::paper_int_cluster(),
                FuPoolConfig::paper_fp_cluster(),
            ],
            buses_per_dir: 3,
            copy_latency: 1,
            dcache_ports: 3,
            rf_read_ports: [0, 0],
            rf_write_ports: [0, 0],
            hierarchy: HierarchyConfig::default(),
            bpred: CombinedConfig::default(),
            intercluster: true,
            unified: false,
            fetch_buffer: 16,
            engine: Engine::default(),
        }
    }

    /// The *base* conventional machine the paper reports speed-ups
    /// against: identical parameters, but the FP cluster has **no**
    /// simple integer units and there are **no** inter-cluster
    /// bypasses.
    pub fn paper_base() -> SimConfig {
        SimConfig {
            fus: [
                FuPoolConfig::paper_int_cluster(),
                FuPoolConfig::base_fp_cluster(),
            ],
            intercluster: false,
            ..SimConfig::paper_clustered()
        }
    }

    /// The paper's upper bound ("UB arch"): a 16-way issue processor
    /// (8 integer + 8 FP) with no communication penalty, modelled as a
    /// single unified cluster with 8-wide issue on the integer side —
    /// the binding constraint for SpecInt workloads — and the union of
    /// all functional units.
    pub fn paper_upper_bound() -> SimConfig {
        SimConfig {
            iq_size: [128, 0],
            issue_width: [8, 0],
            phys_regs: [192, 0],
            fus: [FuPoolConfig::paper_unified(), FuPoolConfig::base_fp_cluster()],
            unified: true,
            intercluster: false,
            ..SimConfig::paper_clustered()
        }
    }

    /// The clustered machine with a single bus each way (§3.8 claims
    /// performance is unchanged).
    pub fn one_bus() -> SimConfig {
        SimConfig {
            buses_per_dir: 1,
            ..SimConfig::paper_clustered()
        }
    }

    /// A deliberately tiny machine for stress tests: 2-wide everything,
    /// small queues — surfaces structural-hazard bugs quickly.
    pub fn small_test() -> SimConfig {
        SimConfig {
            fetch_width: 2,
            decode_width: 2,
            retire_width: 2,
            rob_size: 8,
            iq_size: [4, 4],
            issue_width: [2, 2],
            phys_regs: [48, 72],
            buses_per_dir: 1,
            fetch_buffer: 4,
            ..SimConfig::paper_clustered()
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint (e.g. fewer physical registers than architectural
    /// state requires).
    pub fn validate(&self) -> Result<(), String> {
        if self.fetch_width == 0 || self.decode_width == 0 || self.retire_width == 0 {
            return Err("pipeline widths must be non-zero".into());
        }
        if self.rob_size == 0 {
            return Err("ROB must have at least one entry".into());
        }
        // Architectural mappings: 31 int regs in cluster 0 (r0 is not
        // renamed), 32 FP regs in the FP cluster. With inter-cluster
        // bypasses the FP cluster can additionally hold a live *replica*
        // of every integer register (the paper's replication, Figure
        // 15), so its register file must cover 32 + 31 long-lived
        // mappings plus at least one in-flight allocation — undersizing
        // it deadlocks dispatch once replicas accumulate. The paper's
        // 96 registers satisfy this comfortably.
        if self.phys_regs[0] < 31 + 1 {
            return Err("cluster 0 needs at least 32 physical registers".into());
        }
        let fp_cluster = if self.unified { 0 } else { 1 };
        // Unified: 31 int + 32 FP architectural mappings share the one
        // file. Clustered with bypasses: 32 FP plus up to 31 integer
        // *replicas*. Both compositions need the same 63 long-lived
        // mappings; without bypasses only the FP bank lives there.
        let fp_need = if self.unified || self.intercluster {
            31 + 32 + 1
        } else {
            32 + 1
        };
        if self.phys_regs[fp_cluster] < fp_need {
            return Err(format!(
                "cluster {fp_cluster} needs at least {fp_need} physical registers                  (architectural state + possible replicas + one in flight)"
            ));
        }
        if self.unified && self.intercluster {
            return Err("a unified machine has no inter-cluster buses".into());
        }
        if self.intercluster && self.buses_per_dir == 0 {
            return Err("clustered machine needs at least one bus per direction".into());
        }
        for c in 0..2 {
            if self.rf_read_ports[c] == 1 {
                return Err(format!(
                    "cluster {c}: 1 RF read port cannot issue two-source \
                     instructions (use 0 for unconstrained or >= 2)"
                ));
            }
        }
        if self.fetch_buffer < self.fetch_width {
            return Err("fetch buffer must hold at least one fetch group".into());
        }
        Ok(())
    }
}

impl Default for SimConfig {
    /// Defaults to the paper's clustered machine.
    fn default() -> SimConfig {
        SimConfig::paper_clustered()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for cfg in [
            SimConfig::paper_clustered(),
            SimConfig::paper_base(),
            SimConfig::paper_upper_bound(),
            SimConfig::one_bus(),
            SimConfig::small_test(),
        ] {
            cfg.validate().expect("preset must be valid");
        }
    }

    #[test]
    fn cluster_id_round_trips() {
        for c in ClusterId::BOTH {
            assert_eq!(ClusterId::from_index(c.index()), c);
            assert_ne!(c.other(), c);
            assert_eq!(c.other().other(), c);
        }
    }

    #[test]
    fn base_machine_has_no_int_units_in_fp_cluster() {
        let base = SimConfig::paper_base();
        assert_eq!(base.fus[1].int_alu, 0);
        assert!(!base.intercluster);
    }

    #[test]
    fn validate_rejects_tiny_regfiles() {
        let cfg = SimConfig {
            phys_regs: [16, 96],
            ..SimConfig::paper_clustered()
        };
        assert!(cfg.validate().is_err());
        // A clustered FP register file must also cover integer replicas.
        let cfg = SimConfig {
            phys_regs: [96, 40],
            ..SimConfig::paper_clustered()
        };
        assert!(cfg.validate().is_err());
        // ... unless the machine has no bypasses (no replication).
        let cfg = SimConfig {
            phys_regs: [96, 40],
            ..SimConfig::paper_base()
        };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_rejects_unified_with_buses() {
        let cfg = SimConfig {
            unified: true,
            intercluster: true,
            phys_regs: [192, 0],
            ..SimConfig::paper_clustered()
        };
        assert!(cfg.validate().is_err());
    }
}
