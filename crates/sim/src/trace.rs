//! Per-µop pipeline tracing and text rendering.
//!
//! When enabled with [`Simulator::enable_trace`], the simulator records
//! one [`UopRecord`] per *committed* µop — program instructions and the
//! copy µops dispatch inserted for them — carrying the cycle each
//! pipeline stage happened. The collected [`Trace`] renders either as a
//! stage-timestamp table ([`Trace::render_table`]) or as a classic
//! pipetrace diagram with one column per cycle
//! ([`Trace::render_pipe`]), the format SimpleScalar users know from
//! `-ptrace`.
//!
//! Records are only appended up to the configured capacity; the
//! simulation itself is unaffected (timestamps are tracked in the ROB
//! whether or not tracing is on). `dropped()` reports how many µops
//! committed after the trace filled up.
//!
//! [`Simulator::enable_trace`]: crate::Simulator::enable_trace
//!
//! # Example
//!
//! ```
//! use dca_prog::{parse_asm, Memory};
//! use dca_sim::{steering::RoundRobin, SimConfig, Simulator};
//!
//! let prog = parse_asm(
//!     "e:
//!         li r1, #2
//!      l:
//!         add r2, r2, #1
//!         add r1, r1, #-1
//!         bne r1, r0, l
//!         halt",
//! )?;
//! let mut sim = Simulator::new(&SimConfig::paper_clustered(), &prog, Memory::new());
//! sim.enable_trace(64);
//! let mut scheme = RoundRobin::new();
//! let _stats = sim.run_mut(&mut scheme, 1_000);
//! let trace = sim.take_trace().expect("tracing was enabled");
//! assert!(!trace.is_empty());
//! println!("{}", trace.render_table());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::ClusterId;
use dca_isa::Inst;

/// What kind of µop a trace record describes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TracedKind {
    /// ALU / branch / jump / nop work.
    Normal,
    /// Load (effective-address µop plus the tracked memory access).
    Load,
    /// Store (effective-address µop; memory written at commit).
    Store,
    /// Inter-cluster copy inserted by dispatch. `text` carries the
    /// consumer instruction the copy was created for.
    Copy,
}

impl TracedKind {
    /// One-letter tag used by the renderers.
    fn tag(self) -> char {
        match self {
            TracedKind::Normal => ' ',
            TracedKind::Load => 'L',
            TracedKind::Store => 'S',
            TracedKind::Copy => '>',
        }
    }
}

/// Stage timestamps of one committed µop.
///
/// All cycles are absolute simulation cycles. `issue_at` is `None` for
/// µops that never pass through an instruction queue (nops).
#[derive(Clone, Debug)]
pub struct UopRecord {
    /// ROB sequence number (program *and* copy µops, in commit order).
    pub seq: u64,
    /// Dynamic program-instruction number (copies inherit their
    /// consumer's).
    pub dyn_seq: u64,
    /// Static instruction index.
    pub sidx: u32,
    /// Program counter.
    pub pc: u64,
    /// Disassembly of the instruction (for copies: the consumer).
    pub text: String,
    /// Cluster the µop executed in (for copies: the *source* cluster
    /// driving the bus).
    pub cluster: ClusterId,
    /// µop kind.
    pub kind: TracedKind,
    /// Cycle the instruction entered the fetch buffer.
    pub fetch_at: u64,
    /// Cycle it was decoded/renamed/steered into the queues.
    pub dispatch_at: u64,
    /// Cycle it left the instruction queue, if it ever sat in one.
    pub issue_at: Option<u64>,
    /// Cycle its result was architecturally complete.
    pub complete_at: u64,
    /// Cycle it retired from the ROB.
    pub commit_at: u64,
    /// `true` if this was a mispredicted conditional branch.
    pub mispredicted: bool,
}

impl UopRecord {
    /// Cycles spent waiting in an instruction queue (dispatch→issue).
    pub fn queue_wait(&self) -> u64 {
        self.issue_at
            .map_or(0, |i| i.saturating_sub(self.dispatch_at))
    }

    /// Total fetch-to-commit latency in cycles.
    pub fn lifetime(&self) -> u64 {
        self.commit_at.saturating_sub(self.fetch_at)
    }
}

/// A bounded log of committed µops with rendering helpers.
///
/// Construct indirectly through [`Simulator::enable_trace`]; the filled
/// trace is retrieved with [`Simulator::take_trace`] after the run.
///
/// [`Simulator::enable_trace`]: crate::Simulator::enable_trace
/// [`Simulator::take_trace`]: crate::Simulator::take_trace
#[derive(Clone, Debug, Default)]
pub struct Trace {
    records: Vec<UopRecord>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates an empty trace holding at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> Trace {
        Trace {
            records: Vec::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Appends a record, or counts it as dropped once full.
    pub(crate) fn push(&mut self, r: UopRecord) {
        if self.records.len() < self.capacity {
            self.records.push(r);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded µops, in commit order.
    pub fn records(&self) -> &[UopRecord] {
        &self.records
    }

    /// Number of µops that committed after the trace filled up.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of recorded µops.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Mean dispatch→issue wait over recorded µops of `cluster`.
    pub fn mean_queue_wait(&self, cluster: ClusterId) -> f64 {
        let (sum, n) = self
            .records
            .iter()
            .filter(|r| r.cluster == cluster && r.issue_at.is_some())
            .fold((0u64, 0u64), |(s, n), r| (s + r.queue_wait(), n + 1));
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// Renders a stage-timestamp table:
    ///
    /// ```text
    ///  seq |     pc |  C  | µop              |   F    D    I    W    C
    ///    4 | 0x1010 | INT | add r2, r2, #1   |   2    3    5    6    8
    ///    5 | 0x1010 | INT>| copy (for add…)  |   2    3    4    5    8
    /// ```
    ///
    /// `F` fetch, `D` dispatch, `I` issue, `W` result complete,
    /// `C` commit. A `>` after the cluster marks a copy µop; `!` marks
    /// a mispredicted branch.
    pub fn render_table(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 80 + 80);
        out.push_str(
            "  seq |       pc |  C   | uop                        |     F     D     I     W     C\n",
        );
        out.push_str(
            "------+----------+------+----------------------------+------------------------------\n",
        );
        for r in &self.records {
            let mark = if r.mispredicted { '!' } else { r.kind.tag() };
            let issue = r
                .issue_at
                .map_or_else(|| "    -".into(), |i| format!("{i:5}"));
            let text = if r.kind == TracedKind::Copy {
                format!("copy (for {})", r.text)
            } else {
                r.text.clone()
            };
            out.push_str(&format!(
                "{:5} | {:#8x} | {:>4}{} | {:26} | {:5} {:5} {} {:5} {:5}\n",
                r.seq,
                r.pc,
                r.cluster.to_string(),
                mark,
                truncate(&text, 26),
                r.fetch_at,
                r.dispatch_at,
                issue,
                r.complete_at,
                r.commit_at,
            ));
        }
        if self.dropped > 0 {
            out.push_str(&format!("... {} more uops not recorded\n", self.dropped));
        }
        out
    }

    /// Renders a pipetrace diagram for cycles `[from, to)`: one row per
    /// recorded µop alive in the window, one column per cycle.
    ///
    /// Stage letters: `f` in the fetch buffer, `d` waiting in an
    /// instruction queue, `e` issued and executing, `w` complete but
    /// not yet retired, `C` commit. Copies render in lower-case with a
    /// `>` prefix on the label.
    pub fn render_pipe(&self, from: u64, to: u64) -> String {
        assert!(from <= to, "cycle window is reversed");
        let width = (to - from) as usize;
        let mut out = String::new();
        // Cycle ruler (mod 10).
        out.push_str(&format!("{:32} |", format!("cycle {from}..{to}")));
        for c in from..to {
            out.push(char::from_digit((c % 10) as u32, 10).expect("digit"));
        }
        out.push('\n');
        for r in &self.records {
            if r.commit_at < from || r.fetch_at >= to {
                continue;
            }
            let label = if r.kind == TracedKind::Copy {
                format!("> copy {}", truncate(&r.text, 23))
            } else {
                truncate(&r.text, 30).to_string()
            };
            out.push_str(&format!("{label:32} |"));
            let mut row = vec![' '; width];
            let mut put = |cycle: u64, ch: char| {
                if cycle >= from && cycle < to {
                    row[(cycle - from) as usize] = ch;
                }
            };
            for c in r.fetch_at..r.dispatch_at {
                put(c, 'f');
            }
            let issue = r.issue_at.unwrap_or(r.dispatch_at);
            for c in r.dispatch_at..issue {
                put(c, 'd');
            }
            for c in issue..r.complete_at {
                put(c, 'e');
            }
            for c in r.complete_at..r.commit_at {
                put(c, 'w');
            }
            put(r.commit_at, 'C');
            out.extend(row);
            out.push('\n');
        }
        out
    }
}

/// Builds the display text for a µop (used by the simulator when
/// recording).
pub(crate) fn record_text(inst: &Inst) -> String {
    inst.to_string()
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, kind: TracedKind) -> UopRecord {
        UopRecord {
            seq,
            dyn_seq: seq,
            sidx: 0,
            pc: 0x1000 + seq * 4,
            text: "add r1, r1, #1".into(),
            cluster: ClusterId::INT,
            kind,
            fetch_at: seq,
            dispatch_at: seq + 1,
            issue_at: Some(seq + 3),
            complete_at: seq + 4,
            commit_at: seq + 6,
            mispredicted: false,
        }
    }

    #[test]
    fn capacity_bounds_recording() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5 {
            t.push(rec(i, TracedKind::Normal));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        assert!(t.render_table().contains("3 more uops"));
    }

    #[test]
    fn queue_wait_and_lifetime() {
        let r = rec(10, TracedKind::Normal);
        assert_eq!(r.queue_wait(), 2);
        assert_eq!(r.lifetime(), 6);
        let mut t = Trace::with_capacity(8);
        t.push(rec(0, TracedKind::Normal));
        t.push(rec(2, TracedKind::Normal));
        assert!((t.mean_queue_wait(ClusterId::INT) - 2.0).abs() < 1e-9);
        assert_eq!(t.mean_queue_wait(ClusterId::FP), 0.0);
    }

    #[test]
    fn table_marks_copies_and_mispredicts() {
        let mut t = Trace::with_capacity(8);
        t.push(rec(0, TracedKind::Copy));
        let mut m = rec(1, TracedKind::Normal);
        m.mispredicted = true;
        t.push(m);
        let s = t.render_table();
        assert!(s.contains("copy (for add r1, r1, #1)"));
        assert!(s.contains('!'));
    }

    #[test]
    fn pipe_diagram_letters_land_in_window() {
        let mut t = Trace::with_capacity(8);
        t.push(rec(0, TracedKind::Normal)); // f@0 d@1..3 e@3 w@4..6 C@6
        let s = t.render_pipe(0, 10);
        let row = s.lines().nth(1).expect("one record row");
        let cells: String = row.split('|').nth(1).expect("cells").into();
        assert_eq!(&cells[0..1], "f");
        assert_eq!(&cells[6..7], "C");
        // Out-of-window records are skipped entirely.
        let empty = t.render_pipe(100, 110);
        assert_eq!(empty.lines().count(), 1, "ruler only");
    }

    #[test]
    #[should_panic(expected = "reversed")]
    fn reversed_window_panics() {
        let t = Trace::with_capacity(1);
        let _ = t.render_pipe(5, 2);
    }
}
