//! # dca-sim — the clustered superscalar timing simulator
//!
//! A cycle-level model of the two-cluster dynamically scheduled
//! processor of *"Dynamic Cluster Assignment Mechanisms"* (Canal,
//! Parcerisa, González; HPCA 2000), built on the substrates of
//! `dca-uarch` and driven by the functional instruction stream of
//! `dca-prog`.
//!
//! ## Machine organisation (paper Figure 1 + Table 2)
//!
//! * centralised fetch (8-wide, combined branch predictor, 64 KB L1I)
//!   and decode/rename (8-wide) with a **single map table carrying two
//!   mapping fields per integer logical register** — one per cluster;
//! * a pluggable [`Steering`] hook decides, per decoded instruction,
//!   which cluster it dispatches to;
//! * when a source operand lives only in the remote cluster, dispatch
//!   inserts a **copy instruction** that reads the value in the remote
//!   cluster and drives it across a 1-cycle inter-cluster bypass
//!   (3 transfers/cycle/direction; copies compete for issue slots);
//! * each cluster has its own 64-entry instruction queue, 4-wide
//!   out-of-order issue, 96 physical registers and functional units
//!   (cluster 1: 3 int ALU + int mul/div; cluster 2: 3 simple int ALU +
//!   3 FP ALU + FP mul/div);
//! * loads/stores split into a steerable effective-address micro-op and
//!   a memory access handled by a **unified disambiguation logic**
//!   (loads wait for all prior store addresses; store-to-load
//!   forwarding; stores write the 3-ported D-cache at commit);
//! * 64-entry ROB (max in-flight), 8-wide retire.
//!
//! ## Quick start
//!
//! ```
//! use dca_prog::{parse_asm, Memory};
//! use dca_sim::{SimConfig, Simulator, steering::RoundRobin};
//!
//! let prog = parse_asm(
//!     "e:
//!         li r1, #100
//!      l:
//!         add r2, r2, r1
//!         add r1, r1, #-1
//!         bne r1, r0, l
//!         halt",
//! )?;
//! let mut steer = RoundRobin::new();
//! let stats = Simulator::new(&SimConfig::paper_clustered(), &prog, Memory::new())
//!     .run(&mut steer, 10_000);
//! assert_eq!(stats.committed, 1 + 100 * 3);
//! assert!(stats.ipc() > 0.5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
mod lsq;
mod pipeline;
mod rename;
pub mod stats;
pub mod steering;
pub mod trace;
pub mod warm;

pub use config::{
    per_cluster, ClusterDesc, ClusterId, ClusterSet, Engine, MachineDesc, SimConfig,
    MAX_CLUSTERS,
};

/// Version of the timing model's observable behaviour.
///
/// Bump this whenever a change alters the statistics a simulation run
/// reports for the same functional stream (pipeline timing, cache or
/// predictor geometry/policy, steering semantics, statistics
/// definitions). The persistent result store records it with every
/// per-interval result file; a mismatch invalidates the file. The
/// functional interpreter has its own `dca_prog::INTERP_VERSION`,
/// which additionally invalidates checkpoint streams.
///
/// History: 2 — continuous (SMARTS-style) warming: sampled intervals
/// can start from a restored [`UarchSnapshot`](dca_uarch::UarchSnapshot)
/// instead of detached functional warming, which changes the measured
/// windows and the reported per-interval statistics of sampled runs.
pub const TIMING_VERSION: u32 = 2;
pub use pipeline::Simulator;
pub use stats::{BalanceHistogram, SimStats};
pub use steering::{rank_clusters, Allowed, DecodedView, SrcView, SteerCtx, Steering};
pub use trace::{Trace, TracedKind, UopRecord};
pub use warm::ContinuousWarmer;
