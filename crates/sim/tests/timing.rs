//! Observable timing behaviour of the pipeline: resource knobs must
//! move cycle counts in the physically sensible direction, and the
//! bookkeeping invariants must hold on real runs.

use dca_prog::{parse_asm, Memory, Program};
use dca_sim::{
    per_cluster, steering::RoundRobin, Allowed, ClusterId, DecodedView, SimConfig, SimStats,
    Simulator, SteerCtx, Steering,
};

/// Stateless steering by static-index parity. Unlike `RoundRobin`,
/// whose counter is perturbed by wrong-path decodes (scheme state is
/// not checkpointed, matching the paper's hardware), this makes the
/// decision a pure function of the static instruction — so the
/// *committed* copy count must be identical across machines that
/// differ only in timing parameters.
struct ParitySteer;

impl Steering for ParitySteer {
    fn name(&self) -> String {
        "parity".into()
    }

    fn steer(
        &mut self,
        d: &DecodedView<'_>,
        allowed: Allowed,
        _ctx: &SteerCtx,
    ) -> Option<ClusterId> {
        Some(allowed.clamp(if d.sidx.is_multiple_of(2) {
            ClusterId::INT
        } else {
            ClusterId::FP
        }))
    }
}

fn copy_heavy_program() -> Program {
    // One long dependent chain: under modulo steering every other
    // instruction needs a copy, making inter-cluster parameters very
    // visible.
    parse_asm(
        "e:
            li r1, #3000
         l:
            add r2, r2, #1
            add r2, r2, #1
            add r2, r2, #1
            add r2, r2, #1
            add r1, r1, #-1
            bne r1, r0, l
            halt",
    )
    .unwrap()
}

fn load_heavy_program() -> Program {
    parse_asm(
        "e:
            li r1, #2000
            li r2, #65536
         l:
            ld r3, 0(r2)
            ld r4, 8(r2)
            ld r5, 16(r2)
            add r6, r3, r4
            add r6, r6, r5
            add r2, r2, #8
            add r1, r1, #-1
            bne r1, r0, l
            halt",
    )
    .unwrap()
}

fn run(cfg: &SimConfig, prog: &Program) -> SimStats {
    Simulator::new(cfg, prog, Memory::new()).run(&mut RoundRobin::new(), 200_000)
}

#[test]
fn fewer_buses_never_helps() {
    let prog = copy_heavy_program();
    let three = run(&SimConfig::paper_clustered(), &prog);
    let one = run(&SimConfig::one_bus(), &prog);
    assert_eq!(three.committed, one.committed);
    assert!(
        one.cycles >= three.cycles,
        "1 bus {} vs 3 buses {}",
        one.cycles,
        three.cycles
    );
}

#[test]
fn longer_copy_latency_costs_cycles() {
    let prog = copy_heavy_program();
    let run_parity = |cfg: &SimConfig| {
        Simulator::new(cfg, &prog, Memory::new()).run(&mut ParitySteer, 200_000)
    };
    let fast = run_parity(&SimConfig::paper_clustered());
    let mut slow_cfg = SimConfig::paper_clustered();
    slow_cfg.copy_latency = 6;
    let slow = run_parity(&slow_cfg);
    assert!(
        slow.cycles > fast.cycles,
        "latency 6 {} vs 1 {}",
        slow.cycles,
        fast.cycles
    );
    // Stateless steering ⇒ identical committed copy streams; only the
    // cycle count may move.
    assert_eq!(slow.copies, fast.copies, "same steering, same copies");
}

#[test]
fn fewer_dcache_ports_cost_cycles_on_load_heavy_code() {
    let prog = load_heavy_program();
    let three = run(&SimConfig::paper_clustered(), &prog);
    let mut one_port = SimConfig::paper_clustered();
    one_port.dcache_ports = 1;
    let one = run(&one_port, &prog);
    assert!(
        one.cycles > three.cycles,
        "1 port {} vs 3 ports {}",
        one.cycles,
        three.cycles
    );
}

#[test]
fn icache_pressure_shows_up_for_large_footprints() {
    // A loop fitting in one line misses only on the cold path.
    let small = parse_asm(
        "e:
            li r1, #5000
         l:
            add r1, r1, #-1
            bne r1, r0, l
            halt",
    )
    .unwrap();
    let s = run(&SimConfig::paper_clustered(), &small);
    assert!(s.l1i.miss_ratio() < 0.01, "tiny loop must stay resident");
    // The gcc analogue streams >64 KB of text per pass.
    let gcc = dca_workloads::build("gcc", dca_workloads::Scale::Smoke);
    let g = Simulator::new(&SimConfig::paper_clustered(), &gcc.program, gcc.memory.clone())
        .run(&mut RoundRobin::new(), 50_000);
    assert!(
        g.l1i.miss_ratio() > 0.005,
        "gcc analogue must feel the I-cache: {}",
        g.l1i.miss_ratio()
    );
}

#[test]
fn predictor_sees_every_conditional_branch_once() {
    let prog = copy_heavy_program();
    let s = run(&SimConfig::paper_clustered(), &prog);
    assert_eq!(s.bpred.lookups, s.branches);
    assert_eq!(s.bpred.mispredicts(), s.mispredicts);
}

#[test]
fn uop_accounting_is_consistent() {
    let prog = copy_heavy_program();
    for cfg in [
        SimConfig::paper_clustered(),
        SimConfig::paper_base(),
        SimConfig::paper_upper_bound(),
        SimConfig::small_test(),
    ] {
        let s = run(&cfg, &prog);
        assert_eq!(s.committed_uops, s.committed + s.copies);
        assert_eq!(s.steered[0] + s.steered[1], s.committed);
        assert!(s.critical_copies <= s.copies);
        assert_eq!(
            s.copies_by_dir[0] + s.copies_by_dir[1],
            s.copies,
            "per-direction counts must add up"
        );
    }
}

#[test]
fn balance_histogram_covers_every_cycle() {
    let prog = load_heavy_program();
    let s = run(&SimConfig::paper_clustered(), &prog);
    assert_eq!(s.balance.cycles(), s.cycles);
    let sum: f64 = s.balance.percent_series().iter().sum();
    assert!((sum - 100.0).abs() < 1e-6);
}

/// Counts trait callbacks to pin the documented steering contract.
#[derive(Default)]
struct CountingSteer {
    steer_calls: u64,
    steered: u64,
}

impl Steering for CountingSteer {
    fn name(&self) -> String {
        "counting".into()
    }

    fn steer(
        &mut self,
        _d: &DecodedView<'_>,
        allowed: Allowed,
        _ctx: &SteerCtx,
    ) -> Option<ClusterId> {
        self.steer_calls += 1;
        Some(allowed.clamp(ClusterId::INT))
    }

    fn on_steered(&mut self, _d: &DecodedView<'_>, _cluster: ClusterId, _ctx: &SteerCtx) {
        self.steered += 1;
    }
}

#[test]
fn steer_called_exactly_once_per_instruction() {
    // A deep serial chain keeps the ROB full, forcing dispatch to stall
    // and retry — the retries must NOT re-invoke `steer` (stateful
    // schemes would advance their state once per retry cycle).
    let prog = copy_heavy_program();
    let mut s = CountingSteer::default();
    let stats = Simulator::new(&SimConfig::paper_clustered(), &prog, Memory::new())
        .run(&mut s, 200_000);
    assert!(
        stats.dispatch_stall_cycles > 0,
        "workload must actually exercise dispatch stalls"
    );
    assert_eq!(s.steer_calls, stats.committed, "one steer per instruction");
    assert_eq!(s.steered, stats.committed, "one on_steered per dispatch");
}

#[test]
fn rf_port_limits_throttle_wide_issue() {
    // 6 independent chains want 6 issues/cycle on the UB machine; with
    // only 4 read ports the register file becomes the bottleneck.
    let prog = parse_asm(
        "e:
            li r1, #3000
         l:
            add r2, r2, #1
            add r3, r3, #2
            add r4, r4, #3
            add r5, r5, #4
            add r6, r6, #5
            add r7, r7, #6
            add r1, r1, #-1
            bne r1, r0, l
            halt",
    )
    .unwrap();
    let free = run(&SimConfig::paper_upper_bound(), &prog);
    let mut limited_cfg = SimConfig::paper_upper_bound();
    limited_cfg.rf_read_ports = per_cluster(&[4]);
    limited_cfg.rf_write_ports = per_cluster(&[4]);
    let limited = run(&limited_cfg, &prog);
    assert_eq!(free.committed, limited.committed, "architecture unchanged");
    assert!(
        limited.cycles > free.cycles * 11 / 10,
        "4 RF ports {} vs unconstrained {}",
        limited.cycles,
        free.cycles
    );
    // Ample ports change nothing.
    let mut ample_cfg = SimConfig::paper_upper_bound();
    ample_cfg.rf_read_ports = per_cluster(&[16]);
    ample_cfg.rf_write_ports = per_cluster(&[8]);
    let ample = run(&ample_cfg, &prog);
    assert_eq!(ample.cycles, free.cycles, "16r/8w ports are never binding");
}

#[test]
fn single_read_port_is_rejected() {
    let mut cfg = SimConfig::paper_clustered();
    cfg.rf_read_ports = per_cluster(&[1]);
    assert!(cfg.validate().is_err(), "1 read port cannot feed 2-src ops");
}

#[test]
fn wider_issue_helps_parallel_code() {
    // Four independent chains: the 8-wide unified machine must beat the
    // 4-wide base.
    let prog = parse_asm(
        "e:
            li r1, #3000
         l:
            add r2, r2, #1
            add r3, r3, #2
            add r4, r4, #3
            add r5, r5, #4
            add r6, r6, #5
            add r7, r7, #6
            add r1, r1, #-1
            bne r1, r0, l
            halt",
    )
    .unwrap();
    let base = run(&SimConfig::paper_base(), &prog);
    let ub = run(&SimConfig::paper_upper_bound(), &prog);
    assert!(
        (ub.ipc() - base.ipc()) / base.ipc() > 0.2,
        "UB {} vs base {} must differ by >20% on 7-wide parallel code",
        ub.ipc(),
        base.ipc()
    );
}
