//! End-to-end checks of the pipeline trace facility: records must be
//! complete, internally ordered, and agree with the run's statistics —
//! and tracing must never perturb timing.

use dca_prog::{parse_asm, Memory, Program};
use dca_sim::{
    steering::RoundRobin, ClusterId, SimConfig, Simulator, Trace, TracedKind,
};

fn chain_loop() -> Program {
    parse_asm(
        "e:
            li r1, #40
         l:
            add r2, r2, #1
            add r2, r2, #2
            ld r3, 0(r4)
            st r2, 8(r4)
            add r1, r1, #-1
            bne r1, r0, l
            halt",
    )
    .expect("valid asm")
}

fn traced_run(cfg: &SimConfig, cap: usize) -> (dca_sim::SimStats, Trace) {
    let prog = chain_loop();
    let mut sim = Simulator::new(cfg, &prog, Memory::new());
    sim.enable_trace(cap);
    let mut scheme = RoundRobin::new();
    let stats = sim.run_mut(&mut scheme, 10_000);
    let trace = sim.take_trace().expect("tracing enabled");
    (stats, trace)
}

#[test]
fn trace_records_every_committed_uop() {
    let (stats, trace) = traced_run(&SimConfig::paper_clustered(), usize::MAX);
    assert_eq!(trace.len() as u64, stats.committed_uops);
    assert_eq!(trace.dropped(), 0);
    let copies = trace
        .records()
        .iter()
        .filter(|r| r.kind == TracedKind::Copy)
        .count() as u64;
    assert_eq!(copies, stats.copies);
    let loads = trace
        .records()
        .iter()
        .filter(|r| r.kind == TracedKind::Load)
        .count() as u64;
    assert_eq!(loads, stats.loads);
}

#[test]
fn stage_timestamps_are_monotone() {
    let (stats, trace) = traced_run(&SimConfig::paper_clustered(), usize::MAX);
    let mut last_commit = 0;
    let mut last_seq = None;
    for r in trace.records() {
        assert!(r.fetch_at < r.dispatch_at, "fetch strictly before dispatch");
        if let Some(i) = r.issue_at {
            assert!(i >= r.dispatch_at, "issue not before dispatch");
            assert!(r.complete_at >= i, "complete not before issue");
        }
        assert!(r.commit_at >= r.complete_at, "commit not before complete");
        assert!(r.commit_at <= stats.cycles);
        // Commit order == ROB order.
        assert!(r.commit_at >= last_commit);
        last_commit = r.commit_at;
        if let Some(s) = last_seq {
            assert_eq!(r.seq, s + 1, "ROB sequence is dense in commit order");
        }
        last_seq = Some(r.seq);
    }
}

#[test]
fn tracing_does_not_change_timing() {
    let prog = chain_loop();
    let cfg = SimConfig::paper_clustered();
    let mut plain = RoundRobin::new();
    let a = Simulator::new(&cfg, &prog, Memory::new()).run(&mut plain, 10_000);
    let (b, _) = traced_run(&cfg, 16); // tiny capacity, heavy dropping
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.committed_uops, b.committed_uops);
    assert_eq!(a.copies, b.copies);
}

#[test]
fn copies_sit_in_the_source_cluster_and_precede_their_consumer() {
    let (_, trace) = traced_run(&SimConfig::paper_clustered(), usize::MAX);
    let records = trace.records();
    let mut saw_copy = false;
    for (i, r) in records.iter().enumerate() {
        if r.kind != TracedKind::Copy {
            continue;
        }
        saw_copy = true;
        // The consumer is the next µop with the same dynamic seq.
        let consumer = records[i + 1..]
            .iter()
            .find(|c| c.dyn_seq == r.dyn_seq && c.kind != TracedKind::Copy)
            .expect("copy has a consumer");
        assert_ne!(
            consumer.cluster, r.cluster,
            "copy drives the bus from the cluster opposite its consumer"
        );
        assert!(r.seq < consumer.seq, "copy allocated before its consumer");
    }
    assert!(saw_copy, "modulo steering on a chain must insert copies");
}

#[test]
fn renderers_cover_the_run() {
    let (stats, trace) = traced_run(&SimConfig::paper_clustered(), 64);
    let table = trace.render_table();
    assert_eq!(table.lines().count(), 64 + 2 + 1, "header + rows + dropped");
    let pipe = trace.render_pipe(0, 40);
    assert!(pipe.lines().count() > 1);
    assert!(pipe.contains('C'), "some µop commits inside the window");
    // Mean queue wait is defined for both clusters on this workload.
    let _ = stats;
    assert!(trace.mean_queue_wait(ClusterId::INT) >= 0.0);
}

#[test]
fn take_trace_is_one_shot() {
    let prog = chain_loop();
    let mut sim = Simulator::new(&SimConfig::paper_clustered(), &prog, Memory::new());
    assert!(sim.take_trace().is_none(), "no trace unless enabled");
    sim.enable_trace(8);
    let mut scheme = RoundRobin::new();
    let _ = sim.run_mut(&mut scheme, 1_000);
    assert!(sim.take_trace().is_some());
    assert!(sim.take_trace().is_none(), "taking twice yields nothing");
}
