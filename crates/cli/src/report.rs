//! Human-readable reports assembled from library results.

use dca_bench::Machine;
use dca_prog::{br_slice, ldst_slice, Program, Rdg};
use dca_sim::SimStats;

/// One-run summary: the counters a SimpleScalar user expects, grouped.
pub fn run_report(name: &str, machine: Machine, scheme: &str, s: &SimStats) -> String {
    let mut out = String::new();
    let p = |out: &mut String, k: &str, v: String| {
        out.push_str(&format!("  {k:<26} {v}\n"));
    };
    out.push_str(&format!("== {name} on {machine:?} under {scheme} ==\n"));
    p(&mut out, "cycles", s.cycles.to_string());
    p(&mut out, "instructions committed", s.committed.to_string());
    p(&mut out, "IPC", format!("{:.3}", s.ipc()));
    p(
        &mut out,
        "uops committed (w/ copies)",
        s.committed_uops.to_string(),
    );
    p(
        &mut out,
        "copies (critical)",
        format!("{} ({})", s.copies, s.critical_copies),
    );
    p(
        &mut out,
        "comms / instruction",
        format!("{:.4}", s.comms_per_inst()),
    );
    // SimStats does not record the cluster count, so render every
    // cluster that saw an instruction (at least the two the paper
    // machine always has — keeping the two-cluster line byte-stable,
    // which the warm-store identity checks rely on).
    let live = s.steered.iter().rposition(|&x| x != 0).map_or(2, |i| (i + 1).max(2));
    if live == 2 {
        p(
            &mut out,
            "steered INT / FP",
            format!("{} / {}", s.steered[0], s.steered[1]),
        );
    } else {
        let per: Vec<String> = s.steered[..live].iter().map(u64::to_string).collect();
        p(&mut out, "steered per cluster", per.join(" / "));
    }
    p(
        &mut out,
        "avg replicated registers",
        format!("{:.2}", s.avg_replication()),
    );
    p(
        &mut out,
        "loads / stores",
        format!("{} / {}", s.loads, s.stores),
    );
    p(
        &mut out,
        "branches (mispredicted)",
        format!("{} ({})", s.branches, s.mispredicts),
    );
    p(
        &mut out,
        "branch accuracy",
        format!("{:.1}%", s.bpred.accuracy() * 100.0),
    );
    p(
        &mut out,
        "L1I / L1D / L2 miss",
        format!(
            "{:.2}% / {:.2}% / {:.2}%",
            s.l1i.miss_ratio() * 100.0,
            s.l1d.miss_ratio() * 100.0,
            s.l2.miss_ratio() * 100.0
        ),
    );
    p(
        &mut out,
        "dispatch stall cycles",
        format!(
            "{} ({:.1}%)",
            s.dispatch_stall_cycles,
            s.dispatch_stall_cycles as f64 * 100.0 / s.cycles.max(1) as f64
        ),
    );
    out
}

/// Static slice report for a program (Figure 2 style).
pub fn slice_report(name: &str, prog: &Program) -> String {
    let rdg = Rdg::build(prog);
    let ldst = ldst_slice(prog, &rdg);
    let br = br_slice(prog, &rdg);
    let mut out = format!(
        "== static slices of {name} ({} static instructions) ==\n\
         LdSt slice: {} instructions; Br slice: {} instructions\n\n\
         sidx  inst                               LdSt  Br\n\
         ----  ---------------------------------  ----  --\n",
        prog.len(),
        ldst.inst_count(),
        br.inst_count()
    );
    for si in prog.static_insts() {
        out.push_str(&format!(
            "{:4}  {:33}  {:^4}  {:^2}\n",
            si.sidx,
            si.inst.to_string(),
            if ldst.contains_sidx(si.sidx) { "x" } else { "" },
            if br.contains_sidx(si.sidx) { "x" } else { "" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_prog::parse_asm;

    #[test]
    fn run_report_contains_key_counters() {
        let s = SimStats {
            cycles: 100,
            committed: 250,
            committed_uops: 260,
            copies: 10,
            ..SimStats::default()
        };
        let r = run_report("li", Machine::Clustered, "General bal.", &s);
        assert!(r.contains("li on Clustered under General bal."));
        assert!(r.contains("2.500"), "IPC rendered");
        assert!(r.contains("10 (0)"), "copies rendered");
    }

    #[test]
    fn slice_report_marks_members() {
        let p = parse_asm(
            "e:
                li r1, #4096
                ld r2, 0(r1)
                add r3, r2, r2
                beq r3, r0, e
                halt",
        )
        .unwrap();
        let r = slice_report("t", &p);
        assert!(r.contains("LdSt slice: 2 instructions"));
        // The load (access half) and the add feed the branch.
        assert!(r.contains("Br slice: 3 instructions"));
    }
}
