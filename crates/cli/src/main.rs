//! `dca` — command-line driver for the clustered-superscalar simulator.
//!
//! ```text
//! dca run --bench li --scheme general              # simulate a benchmark
//! dca run --asm kernel.s --scheme modulo --trace 40
//! dca compare --bench all                          # scheme × benchmark speedups
//! dca slices --bench compress                      # static slice report
//! dca list                                         # benchmarks and schemes
//! dca figures fig14                                # regenerate paper artefacts
//! ```
//!
//! The binary is a thin shell over the library crates: every number it
//! prints is reproducible through the public API (see the crate-level
//! docs of `dca-sim` and `dca-bench`).

mod report;

use std::process::ExitCode;

use dca_bench::{Lab, Machine, RunOpts, SchemeKind, ALL_SCHEMES};
use dca_prog::{parse_asm, Memory, Program};
use dca_sim::Simulator;
use dca_stats::Table;

fn usage() -> &'static str {
    "dca — dynamic cluster assignment simulator (HPCA 2000 reproduction)

USAGE:
    dca run     [--bench NAME | --kernel NAME | --asm FILE] [--scheme NAME]
                [--machine NAME] [--clusters N | --geometry SPEC]
                [--scale smoke|default|full|paper] [--max-insts N]
                [--trace N] [--pipe FROM:TO]
    dca compare [--bench NAME|all] [--schemes a,b,...] [--scale ...]
    dca slices  [--bench NAME | --kernel NAME | --asm FILE]
    dca list
    dca figures [ID ...]          (no ID: regenerate everything)
    dca store   stat|verify|gc|fsck [--repair] [--store-dir DIR]
                [--stale-secs N]
    dca serve   [--listen ADDR] [--http-addr ADDR] [--jobs K]
                [--store-dir DIR | --no-store] [--lock-wait-secs N]
                [--stale-secs N]
    dca client  [--addr ADDR] [--http] (--figure ID [-- OPTS...] |
                --ping | --stats | --shutdown) [--out FILE] [--json]
                [--json-out FILE]

Observability (run, figures, store): --verbose prints per-step detail,
-q/--quiet suppresses progress (warnings still print),
--trace-out FILE records hierarchical spans as Chrome trace-event JSON
(load in Perfetto), --metrics-out FILE writes a Prometheus text
exposition of the session counters. `dca run` and `dca figures` also
stamp results/run_manifest.json with versions, fingerprints, budgets
and per-phase wall-clock. None of this touches report bytes.

`--scale paper` runs the paper's 100M-instruction window per benchmark
via checkpointed sampled simulation (compare/figures only; tune with
--sample-period N, --sample-warmup N, --sample-interval N — the flags
also enable sampling at other scales). Intervals stop early once the
IPC standard error reaches --target-stderr X (default 0.01; 0 runs the
full budget). --warming continuous (the default) starts every interval
from the restored cache/predictor snapshot its checkpoint carries
(SMARTS-style continuous warming, zero detached-warming instructions);
--warming detached replays --sample-warmup instructions into cold
structures instead, and --warm-steering then additionally rebuilds
steering slice tables during that replay. `figures sampling`
regenerates the sampling methodology report.

Sampled runs persist checkpoint streams and per-interval results in a
store directory (default .dca-store; --store-dir DIR overrides,
--no-store disables), so repeated invocations skip the fast-forward
and finished intervals. Shards carry per-shard checksums, writes are
temp+atomic-rename, and concurrent processes coordinate through
advisory shard locks, so several runs may share one --store-dir.
`dca store stat` summarises the directory, `verify` checksums every
shard (exit 0 clean, 1 corrupt/stale, 2 I/O error), `gc` deletes
corrupt or stale-version entries (skipping shards a live writer
holds locked), `fsck` additionally sweeps orphaned temp files and
dead-owner locks (--repair also deletes damaged shards).
--lock-wait-secs N bounds how long a run waits for a peer's shard
lock before degrading to in-memory compute; --stale-secs N is the
shared staleness threshold for lock takeover and temp sweeps.

`dca serve` runs the harness as a daemon on a Unix socket (default
.dca-serve.sock) or host:port. Clients (`dca client`) request figures
over a framed, checksummed protocol; identical in-flight requests are
deduplicated onto one computation, scheduling is round-robin across
clients, progress streams per sampling round, and results already in
the store are served warm with zero recompute. --http-addr ADDR adds
an HTTP/1.1 front over the same core (POST /v1/figures, job polling,
chunked progress streams, Prometheus /v1/metrics); dedup and fairness
span both transports. --jobs K runs up to K jobs concurrently on one
shared worker budget, keeping per-job accounting exact. `dca client
--figure ID -- --scale paper ...` forwards everything after `--` as
harness options; --http speaks to the HTTP front instead of the
framed protocol, --json prints the serving summary as JSON on stdout;
--ping, --stats and --shutdown probe and manage the daemon.

Machines: base | clustered | one-bus | ub | homo<N> | hetero4
`--clusters N` simulates N copies of the paper's cluster (shorthand for
--machine homoN). `--geometry SPEC` builds an arbitrary machine: a
preset (homo2|homo4|homo8|hetero4) or comma-separated cluster specs
`i<issue>q<iq>r<regs>[a<alus>][m][f]` (m = load/store pipe, f = FP
units), with an optional `@line` suffix for a line topology, e.g.
`--geometry i4q64r96a3mf,i2q32r48a2,i2q32r48a2@line`.
Run `dca list` for benchmark and scheme names."
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    let cmd = args.remove(0);
    let result = match cmd.as_str() {
        "run" => cmd_run(args),
        "compare" => cmd_compare(args),
        "slices" => cmd_slices(args),
        "list" => cmd_list(),
        // `store` owns its exit code (verify: 0 clean, 1 corrupt,
        // 2 I/O error) rather than the shared ok/fail mapping.
        "store" => {
            return match cmd_store(args) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "serve" => dca_serve::cmd_serve(args),
        "client" => dca_serve::cmd_client(args),
        "figures" => {
            // Delegate to the bench harness (same artefacts as the
            // fig*/table*/ablate_* binaries).
            dca_bench::run_cli_with(args.into_iter(), None);
            Ok(())
        }
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// A `--flag value` puller over the argument list.
struct Flags(Vec<String>);

impl Flags {
    fn take(&mut self, flag: &str) -> Option<String> {
        let i = self.0.iter().position(|a| a == flag)?;
        if i + 1 >= self.0.len() {
            // Treated as a parse error by callers needing a value.
            self.0.remove(i);
            return Some(String::new());
        }
        self.0.remove(i);
        Some(self.0.remove(i))
    }

    fn finish(self, context: &str) -> Result<(), String> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(format!("unrecognised arguments for {context}: {:?}", self.0))
        }
    }
}

/// The program under test: a built-in benchmark, a micro-kernel, or an
/// assembled file.
fn load_program(
    bench: Option<&str>,
    kernel: Option<&str>,
    asm: Option<&str>,
    scale: dca_workloads::Scale,
) -> Result<(String, Program, Memory, Option<u64>), String> {
    if [bench.is_some(), kernel.is_some(), asm.is_some()]
        .iter()
        .filter(|&&x| x)
        .count()
        > 1
    {
        return Err("--bench, --kernel and --asm are mutually exclusive".into());
    }
    match (bench, kernel, asm) {
        (Some(b), None, None) => {
            if !dca_workloads::NAMES.contains(&b) {
                return Err(format!(
                    "unknown benchmark `{b}` (valid: {})",
                    dca_workloads::NAMES.join(", ")
                ));
            }
            let w = dca_workloads::build(b, scale);
            let fp = w.fingerprint();
            Ok((b.to_string(), w.program, w.memory, Some(fp)))
        }
        (None, Some(k), None) => {
            let w = dca_workloads::kernels::by_name(k).ok_or_else(|| {
                format!(
                    "unknown kernel `{k}` (valid: {})",
                    dca_workloads::kernels::NAMES.join(", ")
                )
            })?;
            let fp = w.fingerprint();
            Ok((k.to_string(), w.program, w.memory, Some(fp)))
        }
        (None, None, Some(path)) => {
            let src = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read `{path}`: {e}"))?;
            let prog = parse_asm(&src).map_err(|e| format!("{path}: {e}"))?;
            Ok((path.to_string(), prog, Memory::new(), None))
        }
        _ => Err("need --bench NAME, --kernel NAME or --asm FILE (try `dca list`)".into()),
    }
}

fn parse_opts(args: Vec<String>) -> (RunOpts, Flags) {
    let (opts, rest) = RunOpts::from_args(args.into_iter());
    opts.apply_observability();
    (opts, Flags(rest))
}

fn cmd_run(args: Vec<String>) -> Result<(), String> {
    let (opts, mut flags) = parse_opts(args);
    let bench = flags.take("--bench");
    let kernel = flags.take("--kernel");
    let asm = flags.take("--asm");
    let scheme = SchemeKind::from_name(&flags.take("--scheme").unwrap_or_else(|| "general".into()))?;
    let machine = Machine::from_name(&flags.take("--machine").unwrap_or_else(|| "clustered".into()))?;
    let clusters = flags.take("--clusters");
    let geometry = flags.take("--geometry");
    let trace_cap: usize = match flags.take("--trace") {
        Some(v) => v.parse().map_err(|_| "--trace needs a number")?,
        None => 0,
    };
    let pipe = flags.take("--pipe");
    flags.finish("run")?;

    let cfg = match (clusters, geometry) {
        (Some(_), Some(_)) => {
            return Err("--clusters and --geometry are mutually exclusive".into())
        }
        (Some(n), None) => {
            let n: usize = n.parse().map_err(|_| "--clusters needs a number")?;
            dca_sim::SimConfig::n_clustered(n)?
        }
        // The spec's substrates (caches, predictor, front end) come
        // from the selected --machine preset.
        (None, Some(spec)) => dca_sim::MachineDesc::parse(&spec)?.apply(&machine.config())?,
        (None, None) => machine.config(),
    };
    let (name, prog, mem, fingerprint) =
        load_program(bench.as_deref(), kernel.as_deref(), asm.as_deref(), opts.scale)?;
    let mut steering = scheme.instantiate(&prog);
    let mut sim = Simulator::new(&cfg, &prog, mem);
    if trace_cap > 0 {
        sim.enable_trace(trace_cap);
    }
    let t0 = std::time::Instant::now();
    let stats = sim.run_mut(steering.as_mut(), opts.max_insts);
    let sim_secs = t0.elapsed().as_secs_f64();
    println!(
        "{}",
        report::run_report(&name, machine, scheme.label(), &stats)
    );
    if let Some(trace) = sim.take_trace() {
        println!("{}", trace.render_table());
        if let Some(win) = pipe {
            let (from, to) = win
                .split_once(':')
                .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
                .ok_or("--pipe expects FROM:TO cycle numbers")?;
            println!("{}", trace.render_pipe(from, to));
        }
    } else if pipe.is_some() {
        return Err("--pipe needs --trace N".into());
    }
    save_run_manifest(&opts, &name, machine, scheme, fingerprint, sim_secs);
    opts.write_observability();
    Ok(())
}

/// Stamps `results/run_manifest.json` for a `dca run` invocation:
/// engine versions, program identity, budgets and wall-clock, plus the
/// final metrics snapshot (DESIGN.md §12). Best-effort — a run on a
/// read-only filesystem still prints its report.
fn save_run_manifest(
    opts: &RunOpts,
    program: &str,
    machine: Machine,
    scheme: SchemeKind,
    fingerprint: Option<u64>,
    sim_secs: f64,
) {
    use dca_obs::json::Json;
    let mut m = dca_obs::manifest::Manifest::new("run");
    m.set_u64("interp_version", u64::from(dca_prog::INTERP_VERSION))
        .set_u64("timing_version", u64::from(dca_sim::TIMING_VERSION))
        .set_u64(
            "format_version",
            u64::from(dca_store::file::FORMAT_VERSION),
        )
        .set_str("program", program)
        .set_str("machine", machine.key())
        .set_str("scheme", scheme.name())
        .set_str("scale", opts.scale.name())
        .set_u64("max_insts", opts.max_insts);
    m.set(
        "workload_fingerprint",
        match fingerprint {
            Some(fp) => Json::Str(format!("{fp:#018x}")),
            None => Json::Null,
        },
    );
    m.phase_secs("detailed", sim_secs);
    m.set_metrics(&dca_obs::metrics().snapshot());
    let path = std::path::Path::new("results").join("run_manifest.json");
    match m.save(&path) {
        Ok(()) => dca_obs::progress::detail(format!("[dca] wrote {}", path.display())),
        Err(e) => dca_obs::progress::detail(format!(
            "[dca] could not write manifest {}: {e}",
            path.display()
        )),
    }
}

fn cmd_compare(args: Vec<String>) -> Result<(), String> {
    let (opts, mut flags) = parse_opts(args);
    let bench = flags.take("--bench").unwrap_or_else(|| "all".into());
    let schemes: Vec<SchemeKind> = match flags.take("--schemes") {
        Some(list) => list
            .split(',')
            .map(SchemeKind::from_name)
            .collect::<Result<_, _>>()?,
        None => ALL_SCHEMES
            .into_iter()
            .filter(|s| *s != SchemeKind::Naive)
            .collect(),
    };
    flags.finish("compare")?;

    let benches: Vec<&str> = if bench == "all" {
        dca_workloads::NAMES.to_vec()
    } else if dca_workloads::NAMES.contains(&bench.as_str()) {
        // The Lab keys workloads by their static name.
        vec![dca_workloads::NAMES
            .iter()
            .find(|n| **n == bench)
            .copied()
            .expect("checked")]
    } else {
        return Err(format!(
            "unknown benchmark `{bench}` (valid: all, {})",
            dca_workloads::NAMES.join(", ")
        ));
    };

    let mut lab = Lab::new(opts.clone());
    let mut headers = vec!["scheme"];
    headers.extend(benches.iter().copied());
    if benches.len() > 1 {
        headers.push("H-mean");
    }
    let mut t = Table::new(&headers);
    for s in schemes {
        let mut row = vec![s.label().to_string()];
        let mut ratios = Vec::new();
        for &b in &benches {
            let sp = lab.speedup(b, Machine::Clustered, s);
            ratios.push(1.0 + sp / 100.0);
            row.push(format!("{sp:.1}"));
        }
        if benches.len() > 1 {
            let hm = dca_stats::harmonic_mean(&ratios);
            row.push(format!("{:.1}", (hm - 1.0) * 100.0));
        }
        t.row(&row);
    }
    println!("Speed-up (%) over the base machine, clustered machine runs\n");
    println!("{}", t.to_aligned());
    opts.write_observability();
    Ok(())
}

fn cmd_slices(args: Vec<String>) -> Result<(), String> {
    let (opts, mut flags) = parse_opts(args);
    let bench = flags.take("--bench");
    let kernel = flags.take("--kernel");
    let asm = flags.take("--asm");
    flags.finish("slices")?;
    let (name, prog, _, _) =
        load_program(bench.as_deref(), kernel.as_deref(), asm.as_deref(), opts.scale)?;
    println!("{}", report::slice_report(&name, &prog));
    Ok(())
}

/// Prints one `verify`/`fsck`-style status line and returns the exit
/// code the report implies (0 clean, 1 corrupt/stale, 2 I/O error).
fn print_file_report(r: &dca_store::FileReport) -> u8 {
    use dca_store::FileStatus;
    let name = r
        .path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    match &r.status {
        FileStatus::Ok { records } => {
            println!("ok       {name} ({} bytes, {records} records)", r.bytes);
            0
        }
        FileStatus::StaleVersion { what, found, expected } => {
            println!("stale    {name} ({what} version {found}, current {expected})");
            1
        }
        FileStatus::Corrupt { reason } => {
            println!("corrupt  {name} ({reason})");
            1
        }
        FileStatus::IoError { reason } => {
            println!("io-error {name} ({reason})");
            2
        }
    }
}

fn cmd_store(args: Vec<String>) -> Result<ExitCode, String> {
    use dca_store::Store;

    // `store` predates RunOpts and keeps its own flag handling, but
    // shares the observability switches with run/figures.
    let mut obs = RunOpts::default();
    let mut flags = Flags(args);
    for q in ["-q", "--quiet"] {
        if let Some(i) = flags.0.iter().position(|a| a == q) {
            flags.0.remove(i);
            obs.quiet = true;
        }
    }
    if let Some(i) = flags.0.iter().position(|a| a == "--verbose") {
        flags.0.remove(i);
        obs.verbose = true;
    }
    obs.trace_out = flags.take("--trace-out").map(std::path::PathBuf::from);
    obs.metrics_out = flags.take("--metrics-out").map(std::path::PathBuf::from);
    obs.apply_observability();
    let dir = match flags.take("--store-dir") {
        Some(d) if d.is_empty() => return Err("--store-dir needs a directory".into()),
        Some(d) => d,
        None => ".dca-store".into(),
    };
    let stale_secs = flags
        .take("--stale-secs")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| format!("--stale-secs needs a number of seconds, got `{v}`"))
        })
        .transpose()?;
    let sub = if flags.0.is_empty() {
        "stat".to_string()
    } else {
        flags.0.remove(0)
    };
    let repair = flags.0.iter().position(|a| a == "--repair").map(|i| {
        flags.0.remove(i);
    });
    flags.finish("store")?;
    if repair.is_some() && sub != "fsck" {
        return Err("--repair only applies to `dca store fsck`".into());
    }
    let mut store = Store::open(&dir);
    if let Some(secs) = stale_secs {
        store = store.with_stale_after(std::time::Duration::from_secs(secs));
    }
    let code = cmd_store_sub(&store, &dir, &sub, repair.is_some())?;
    // Every store op runs through the instrumented I/O layer, so the
    // session counters are exactly this maintenance op's footprint.
    let m = dca_obs::metrics();
    dca_obs::progress::info(format!(
        "  io: {} reads / {} bytes in, {} writes / {} bytes out, {} meta ops",
        m.store_reads_total.get(),
        m.store_read_bytes_total.get(),
        m.store_writes_total.get(),
        m.store_written_bytes_total.get(),
        m.store_meta_ops_total.get(),
    ));
    obs.write_observability();
    Ok(code)
}

fn cmd_store_sub(
    store: &dca_store::Store,
    dir: &str,
    sub: &str,
    repair: bool,
) -> Result<ExitCode, String> {
    match sub {
        "stat" => {
            let s = store.stat();
            println!("store {dir}");
            println!(
                "  checkpoint shards:  {:>4} files, {:>10} bytes",
                s.checkpoint_files.0, s.checkpoint_files.1
            );
            println!(
                "  result shards:      {:>4} files, {:>10} bytes",
                s.result_files.0, s.result_files.1
            );
            for sh in &s.shards {
                let kind = match sh.kind {
                    Some(dca_store::FileKind::Checkpoints) => "checkpoints",
                    Some(dca_store::FileKind::Results) => "results",
                    None => "unknown",
                };
                println!(
                    "    {:<40} {kind:<11} {:>10} bytes, {:>5} records",
                    sh.name, sh.bytes, sh.records
                );
            }
            for l in &s.locks {
                println!(
                    "    {:<40} lock        owner {} age {} ({})",
                    l.name,
                    l.pid.map_or("?".to_string(), |p| p.to_string()),
                    l.age_secs.map_or("?".to_string(), |a| format!("{a}s")),
                    if l.live { "live" } else { "stale" },
                );
            }
            if s.stale_files > 0 {
                println!("  stale-version shards: {} (run `dca store gc`)", s.stale_files);
            }
            if s.unreadable_files > 0 {
                println!("  unreadable shards:  {} (run `dca store gc`)", s.unreadable_files);
            }
            if s.legacy_files > 0 {
                println!(
                    "  legacy (v2) files:  {} (unmigratable; run `dca store gc`)",
                    s.legacy_files
                );
            }
            if s.live_locks > 0 {
                println!("  live shard locks:   {} (writers in flight)", s.live_locks);
            }
            if s.stale_locks > 0 {
                println!("  stale shard locks:  {} (run `dca store fsck`)", s.stale_locks);
            }
            println!(
                "  versions: interpreter {}, timing model {}, container {}",
                dca_prog::INTERP_VERSION,
                dca_sim::TIMING_VERSION,
                dca_store::file::FORMAT_VERSION
            );
            Ok(ExitCode::SUCCESS)
        }
        "verify" => {
            let reports = store.verify();
            if reports.is_empty() {
                println!("store {dir}: empty");
                return Ok(ExitCode::SUCCESS);
            }
            // Full sweep, no first-bad bail; the worst status wins the
            // exit code (0 clean, 1 corrupt/stale, 2 I/O error).
            let mut code = 0u8;
            let mut bad = 0u64;
            for r in &reports {
                let c = print_file_report(r);
                code = code.max(c);
                bad += u64::from(c != 0);
            }
            if bad > 0 {
                eprintln!("{bad} file(s) failed verification (run `dca store gc`)");
            }
            Ok(ExitCode::from(code))
        }
        "gc" => {
            let r = store.gc();
            println!(
                "store {dir}: removed {} file(s), freed {} bytes, kept {}",
                r.removed, r.freed_bytes, r.kept
            );
            if r.skipped_locked > 0 {
                println!(
                    "  skipped {} damaged shard(s) under a live writer lock",
                    r.skipped_locked
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        "fsck" => {
            let r = store.fsck(repair);
            let mut code = 0u8;
            for file in &r.reports {
                code = code.max(print_file_report(file));
            }
            println!(
                "store {dir}: swept {} temp file(s), {} stale lock(s)",
                r.temps_removed, r.stale_locks_removed
            );
            if repair {
                println!("  repaired (removed) {} damaged shard(s)", r.repaired);
            }
            if r.skipped_locked > 0 {
                println!(
                    "  skipped {} damaged shard(s) under a live writer lock",
                    r.skipped_locked
                );
            }
            // Repair clears damage, so only I/O errors — or damage
            // left behind under a live lock — keep a non-zero exit.
            if repair && r.skipped_locked == 0 && code == 1 {
                code = 0;
            }
            Ok(ExitCode::from(code))
        }
        other => Err(format!(
            "unknown store subcommand `{other}` (stat|verify|gc|fsck)"
        )),
    }
}

fn cmd_list() -> Result<(), String> {
    println!("benchmarks (SpecInt95 analogues):");
    for name in dca_workloads::NAMES {
        let w = dca_workloads::build(name, dca_workloads::Scale::Smoke);
        println!("  {name:10} {} (paper input: {})", w.description, w.paper_input);
    }
    println!("\nmicro-kernels (dca-workloads::kernels):");
    for name in dca_workloads::kernels::NAMES {
        let w = dca_workloads::kernels::by_name(name).expect("registered");
        println!("  {name:16} {}", w.description);
    }
    println!("\nsteering schemes:");
    for s in ALL_SCHEMES {
        println!("  {:15} {}", s.name(), s.label());
    }
    println!("\nmachines: base | clustered | one-bus | ub | homo<N> | hetero4");
    Ok(())
}
