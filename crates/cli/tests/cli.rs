//! End-to-end tests of the `dca` binary: each subcommand, plus the
//! error paths a user will actually hit.

use std::process::{Command, Output};

fn dca(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dca"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn list_names_everything() {
    let o = dca(&["list"]);
    assert!(o.status.success());
    let s = stdout(&o);
    for b in dca_workloads::NAMES {
        assert!(s.contains(b), "missing benchmark {b}");
    }
    for scheme in ["naive", "modulo", "general", "fifo", "ldst-slicebal"] {
        assert!(s.contains(scheme), "missing scheme {scheme}");
    }
}

#[test]
fn run_benchmark_prints_counters() {
    let o = dca(&["run", "--bench", "li", "--scheme", "general", "--scale", "smoke"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let s = stdout(&o);
    assert!(s.contains("li on Clustered under General bal."));
    assert!(s.contains("IPC"));
    assert!(s.contains("copies (critical)"));
}

#[test]
fn run_asm_with_trace_and_pipe() {
    let dir = std::env::temp_dir().join("dca-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("kernel.s");
    std::fs::write(
        &path,
        "e:\n li r1, #3\nl:\n add r2, r2, #1\n add r1, r1, #-1\n bne r1, r0, l\n halt\n",
    )
    .unwrap();
    let o = dca(&[
        "run",
        "--asm",
        path.to_str().unwrap(),
        "--scheme",
        "modulo",
        "--trace",
        "8",
        "--pipe",
        "0:48",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let s = stdout(&o);
    assert!(s.contains("uop"), "trace table rendered");
    assert!(s.contains("cycle 0..48"), "pipe diagram rendered");
}

#[test]
fn run_kernel_by_name() {
    let o = dca(&["run", "--kernel", "serial-chain", "--scheme", "modulo"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let s = stdout(&o);
    assert!(s.contains("serial-chain on Clustered under Modulo"));
    // Modulo on a serial chain must communicate heavily.
    assert!(s.contains("comms / instruction"));
    let bad = dca(&["run", "--kernel", "nosuch"]);
    assert!(!bad.status.success());
    assert!(stderr(&bad).contains("unknown kernel"));
    let both = dca(&["run", "--kernel", "branchy", "--bench", "li"]);
    assert!(!both.status.success());
    assert!(stderr(&both).contains("mutually exclusive"));
}

#[test]
fn compare_prints_speedup_table() {
    let o = dca(&[
        "compare",
        "--bench",
        "compress",
        "--schemes",
        "modulo,general",
        "--scale",
        "smoke",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let s = stdout(&o);
    assert!(s.contains("Modulo"));
    assert!(s.contains("General bal."));
    assert!(s.contains("compress"));
}

#[test]
fn slices_reports_both_slices() {
    let o = dca(&["slices", "--bench", "compress", "--scale", "smoke"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let s = stdout(&o);
    assert!(s.contains("LdSt slice:"));
    assert!(s.contains("Br slice:"));
}

#[test]
fn error_paths_fail_with_diagnostics() {
    let cases: &[(&[&str], &str)] = &[
        (&["run", "--bench", "nosuch", "--scale", "smoke"], "unknown benchmark"),
        (&["run", "--bench", "li", "--scheme", "nosuch"], "unknown scheme"),
        (&["run"], "need --bench NAME, --kernel NAME or --asm FILE"),
        (
            &["run", "--bench", "li", "--asm", "x.s"],
            "mutually exclusive",
        ),
        (
            &["run", "--bench", "li", "--pipe", "0:9", "--scale", "smoke"],
            "--pipe needs --trace",
        ),
        (&["nosuch"], "unknown command"),
        (
            &["run", "--bench", "li", "--machine", "warp", "--scale", "smoke"],
            "unknown machine",
        ),
    ];
    for (args, needle) in cases {
        let o = dca(args);
        assert!(!o.status.success(), "{args:?} must fail");
        assert!(
            stderr(&o).contains(needle),
            "{args:?}: stderr {:?} missing {needle:?}",
            stderr(&o)
        );
    }
}

#[test]
fn help_exits_cleanly() {
    let o = dca(&["--help"]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("USAGE"));
}

#[test]
fn figures_subcommand_writes_artefacts() {
    let dir = std::env::temp_dir().join("dca-cli-figures");
    std::fs::create_dir_all(&dir).unwrap();
    let o = Command::new(env!("CARGO_BIN_EXE_dca"))
        .args(["figures", "table2", "--scale", "smoke"])
        .current_dir(&dir)
        .output()
        .expect("binary runs");
    assert!(o.status.success(), "{}", stderr(&o));
    let written = dir.join("results").join("table2.md");
    assert!(written.exists(), "artefact written to results/");
    let body = std::fs::read_to_string(written).unwrap();
    assert!(body.contains("Fetch width"), "Table 2 content present");
}

/// The observability acceptance criteria in one end-to-end pass: the
/// same sampled figures run with and without `--trace-out` /
/// `--metrics-out` produces byte-identical reports; the trace is valid
/// Chrome trace-event JSON with spans from all four layers (Lab
/// worker, fast-forward, interval simulation, store I/O); the metrics
/// file is a Prometheus exposition; and the run manifest stamps the
/// invocation.
#[test]
fn observability_artefacts_leave_reports_byte_identical() {
    use dca_obs::json::Json;

    let base = std::env::temp_dir().join("dca-cli-obs");
    std::fs::remove_dir_all(&base).ok();
    let sampled_args = |store: &str| {
        vec![
            "figures".to_string(),
            "sampling".to_string(),
            "--scale".to_string(),
            "smoke".to_string(),
            "--max-insts".to_string(),
            "40000".to_string(),
            "--sample-period".to_string(),
            "10000".to_string(),
            "--sample-warmup".to_string(),
            "1000".to_string(),
            "--sample-interval".to_string(),
            "2000".to_string(),
            "--store-dir".to_string(),
            store.to_string(),
        ]
    };

    // Plain run: no observability flags.
    let plain = base.join("plain");
    std::fs::create_dir_all(&plain).unwrap();
    let o = Command::new(env!("CARGO_BIN_EXE_dca"))
        .args(sampled_args(plain.join("store").to_str().unwrap()))
        .current_dir(&plain)
        .output()
        .expect("binary runs");
    assert!(o.status.success(), "{}", stderr(&o));

    // Instrumented run: spans + metrics on, everything else equal.
    let traced = base.join("traced");
    std::fs::create_dir_all(&traced).unwrap();
    let mut args = sampled_args(traced.join("store").to_str().unwrap());
    args.extend(
        ["--trace-out", "obs/trace.json", "--metrics-out", "obs/metrics.prom"]
            .map(String::from),
    );
    let o = Command::new(env!("CARGO_BIN_EXE_dca"))
        .args(&args)
        .current_dir(&traced)
        .output()
        .expect("binary runs");
    assert!(o.status.success(), "{}", stderr(&o));

    // Report bytes are identical with tracing on vs off.
    let report = |d: &std::path::Path| {
        std::fs::read(d.join("results").join("sampling.md")).expect("report written")
    };
    assert_eq!(
        report(&plain),
        report(&traced),
        "tracing/metrics must not perturb report bytes"
    );

    // The trace parses as Chrome trace-event JSON and carries spans
    // from every instrumented layer.
    let trace =
        std::fs::read_to_string(traced.join("obs").join("trace.json")).expect("trace written");
    let doc = dca_obs::json::parse(&trace).expect("trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "spans recorded");
    for want in ["lab", "prog", "sim", "store"] {
        assert!(
            events.iter().any(|e| {
                e.get("cat").and_then(Json::as_str) == Some(want)
                    && e.get("ph").and_then(Json::as_str) == Some("X")
            }),
            "no `{want}` span in trace"
        );
    }

    // The metrics file is a Prometheus text exposition with the core
    // session counters.
    let prom = std::fs::read_to_string(traced.join("obs").join("metrics.prom"))
        .expect("metrics written");
    for needle in [
        "# TYPE dca_intervals_computed_total counter",
        "dca_store_writes_total",
        "dca_interval_ns_bucket",
    ] {
        assert!(prom.contains(needle), "metrics missing {needle}:\n{prom}");
    }

    // The run manifest stamps the invocation.
    let manifest = std::fs::read_to_string(traced.join("results").join("run_manifest.json"))
        .expect("manifest written");
    let doc = dca_obs::json::parse(&manifest).expect("manifest is valid JSON");
    assert_eq!(doc.get("command").and_then(Json::as_str), Some("figures"));
    for key in ["interp_version", "timing_version", "format_version"] {
        assert!(doc.get(key).and_then(Json::as_u64).is_some(), "missing {key}");
    }
    assert!(
        doc.get("workload_fingerprints")
            .and_then(|f| f.get("compress"))
            .and_then(Json::as_str)
            .is_some(),
        "workload fingerprint stamped"
    );
    assert!(
        doc.get("counters")
            .and_then(|c| c.get("intervals_computed_total"))
            .and_then(Json::as_u64)
            .is_some_and(|v| v > 0),
        "metrics snapshot embedded"
    );

    // `-q` silences progress lines entirely (warnings excepted).
    let o = Command::new(env!("CARGO_BIN_EXE_dca"))
        .args(["figures", "table2", "--scale", "smoke", "-q"])
        .current_dir(&plain)
        .output()
        .expect("binary runs");
    assert!(o.status.success());
    assert_eq!(stderr(&o), "", "quiet run must not print progress");

    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn store_lifecycle_stat_verify_gc() {
    let dir = std::env::temp_dir().join("dca-cli-store");
    std::fs::remove_dir_all(&dir).ok();
    let store_dir = dir.join("store");
    std::fs::create_dir_all(&dir).unwrap();
    let store_arg = store_dir.to_str().unwrap();

    // Empty store: stat works, verify reports empty.
    let o = dca(&["store", "stat", "--store-dir", store_arg]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("checkpoint shards"));
    let o = dca(&["store", "verify", "--store-dir", store_arg]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("empty"));

    // A sampled figures run fills the store.
    let o = Command::new(env!("CARGO_BIN_EXE_dca"))
        .args([
            "figures", "sampling", "--scale", "smoke", "--max-insts", "40000",
            "--sample-period", "10000", "--sample-warmup", "1000",
            "--sample-interval", "2000", "--store-dir", store_arg,
        ])
        .current_dir(&dir)
        .output()
        .expect("binary runs");
    assert!(o.status.success(), "{}", stderr(&o));

    let o = dca(&["store", "verify", "--store-dir", store_arg]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("ck_compress_smoke"), "{}", stdout(&o));

    // Corrupt one shard (the v3 layout keeps results under rs/):
    // verify fails with exit 1 and reports *every* shard — no
    // first-bad bail — then gc heals and verify passes again.
    let victim = std::fs::read_dir(store_dir.join("rs"))
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "dcr"))
        .expect("result shard persisted");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x55;
    std::fs::write(&victim, bytes).unwrap();
    let o = dca(&["store", "verify", "--store-dir", store_arg]);
    assert_eq!(o.status.code(), Some(1), "corrupt shard exits 1");
    assert!(stdout(&o).contains("corrupt"));
    assert!(
        stdout(&o).contains("ck_compress_smoke"),
        "full sweep still lists the healthy shards: {}",
        stdout(&o)
    );
    let o = dca(&["store", "gc", "--store-dir", store_arg]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("removed 1"));
    let o = dca(&["store", "verify", "--store-dir", store_arg]);
    assert_eq!(o.status.code(), Some(0), "{}", stderr(&o));

    // An unreadable entry (a directory posing as a shard) is an I/O
    // error: exit 2, and gc leaves it alone (removal could lose data).
    let imposter = store_dir.join("rs").join("imposter.dcr");
    std::fs::create_dir_all(&imposter).unwrap();
    let o = dca(&["store", "verify", "--store-dir", store_arg]);
    assert_eq!(o.status.code(), Some(2), "I/O error exits 2");
    assert!(stdout(&o).contains("io-error"));
    std::fs::remove_dir_all(&imposter).unwrap();

    // fsck sweeps an orphaned temp and a dead-owner lock.
    let temp = store_dir.join("ck").join(".tmp-999999999-0-ck_orphan.dcc");
    std::fs::write(&temp, b"half-written").unwrap();
    let locks = store_dir.join("locks");
    std::fs::create_dir_all(&locks).unwrap();
    std::fs::write(
        locks.join("ck_orphan.dcc.lock"),
        b"DCALOCK1 pid=999999999 ts=0 seq=0\n",
    )
    .unwrap();
    let o = dca(&["store", "fsck", "--store-dir", store_arg]);
    assert!(o.status.success(), "{}", stderr(&o));
    // The dead-owner temp may already fall to the startup sweep that
    // `Store::open` runs; either way it is gone and the stale lock is
    // fsck's to reap.
    assert!(stdout(&o).contains("1 stale lock(s)"), "{}", stdout(&o));
    assert!(!temp.exists(), "orphaned temp removed");

    // Unknown subcommand is a clean error; --repair needs fsck.
    let o = dca(&["store", "frobnicate"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("unknown store subcommand"));
    let o = dca(&["store", "verify", "--repair", "--store-dir", store_arg]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("--repair only applies"));

    std::fs::remove_dir_all(&dir).ok();
}
