//! Plain-text rendering: tables (markdown/CSV/aligned) and ASCII charts.
//!
//! Every figure of the paper is regenerated as a text artefact: bar
//! charts (speed-up figures) and line series (the workload-balance
//! distribution figures) printed to stdout and to `results/*.md`.

use std::fmt::Write as _;

/// A column-typed table builder.
///
/// # Example
///
/// ```
/// use dca_stats::Table;
/// let mut t = Table::new(&["bench", "speedup %"]);
/// t.row(&["go".into(), format!("{:.1}", 31.4)]);
/// t.row(&["gcc".into(), format!("{:.1}", 28.9)]);
/// let md = t.to_markdown();
/// assert!(md.contains("| go"));
/// assert!(t.to_csv().starts_with("bench,speedup %"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for r in &self.rows {
            let _ = writeln!(out, "| {} |", r.join(" | "));
        }
        out
    }

    /// Renders as CSV (no quoting: cells must not contain commas).
    ///
    /// # Panics
    ///
    /// Panics if a cell contains a comma or newline.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for c in cells {
                assert!(
                    !c.contains(',') && !c.contains('\n'),
                    "CSV cells must not contain commas or newlines: {c:?}"
                );
            }
            let _ = writeln!(out, "{}", cells.join(","));
        };
        emit(&mut out, &self.headers);
        for r in &self.rows {
            emit(&mut out, r);
        }
        out
    }

    /// Renders as an aligned monospace table for terminals.
    pub fn to_aligned(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for i in 0..cols {
                let pad = widths[i] - cells[i].chars().count();
                let _ = write!(out, "{}{}", cells[i], " ".repeat(pad));
                if i + 1 < cols {
                    let _ = write!(out, "  ");
                }
            }
            let _ = writeln!(out);
        };
        emit(&mut out, &self.headers);
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        emit(&mut out, &rule);
        for r in &self.rows {
            emit(&mut out, r);
        }
        out
    }
}

/// Renders labelled values as a horizontal ASCII bar chart, the text
/// stand-in for the paper's speed-up bar figures.
///
/// # Example
///
/// ```
/// use dca_stats::ascii_bars;
/// let chart = ascii_bars(&[("go".into(), 31.0), ("li".into(), 12.5)], 40);
/// assert!(chart.contains("go"));
/// assert!(chart.lines().count() >= 2);
/// ```
pub fn ascii_bars(items: &[(String, f64)], width: usize) -> String {
    let max = items
        .iter()
        .map(|(_, v)| v.abs())
        .fold(0.0_f64, f64::max)
        .max(1e-9);
    let label_w = items
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (label, v) in items {
        let n = ((v.abs() / max) * width as f64).round() as usize;
        let bar: String = std::iter::repeat_n('█', n).collect();
        let sign = if *v < 0.0 { "-" } else { "" };
        let _ = writeln!(
            out,
            "{label:<label_w$}  {sign}{bar} {v:.1}",
            label = label,
            label_w = label_w
        );
    }
    out
}

/// Renders one or more named series over a shared integer x-axis as an
/// ASCII chart with one column per x value — used for the
/// workload-balance distribution figures (x = `#ready FP − #ready INT`,
/// y = % of cycles). Values are printed row-wise (one row per series)
/// plus a sparkline-style profile per series.
pub fn ascii_series(xs: &[i64], series: &[(String, Vec<f64>)]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:>18}", "x:");
    for x in xs {
        let _ = write!(out, "{x:>6}");
    }
    let _ = writeln!(out);
    for (name, ys) in series {
        assert_eq!(ys.len(), xs.len(), "series `{name}` length mismatch");
        let _ = write!(out, "{name:>17}:");
        for y in ys {
            let _ = write!(out, "{y:>6.1}");
        }
        let _ = writeln!(out);
    }
    // Profile lines (8 shades).
    const SHADES: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = series
        .iter()
        .flat_map(|(_, ys)| ys.iter().copied())
        .fold(0.0_f64, f64::max)
        .max(1e-9);
    for (name, ys) in series {
        let profile: String = ys
            .iter()
            .map(|y| SHADES[((y / max) * 8.0).round().clamp(0.0, 8.0) as usize])
            .collect();
        let _ = writeln!(out, "{name:>17}: [{profile}]");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["x".into(), "1".into()]);
        t.row(&["yy".into(), "22".into()]);
        t
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        let lines: Vec<_> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].contains("---"));
        assert!(lines[3].starts_with("| yy"));
    }

    #[test]
    fn csv_shape() {
        let csv = sample().to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().next().unwrap(), "a,b");
    }

    #[test]
    fn aligned_pads_columns() {
        let txt = sample().to_aligned();
        let lines: Vec<_> = txt.lines().collect();
        // header, rule, 2 rows
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].starts_with("--"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    #[should_panic(expected = "CSV cells")]
    fn csv_rejects_commas() {
        let mut t = Table::new(&["a"]);
        t.row(&["x,y".into()]);
        let _ = t.to_csv();
    }

    #[test]
    fn bars_scale_to_max() {
        let chart = ascii_bars(&[("big".into(), 100.0), ("half".into(), 50.0)], 10);
        let lines: Vec<_> = chart.lines().collect();
        let bars: Vec<usize> = lines
            .iter()
            .map(|l| l.chars().filter(|&c| c == '█').count())
            .collect();
        assert_eq!(bars[0], 10);
        assert_eq!(bars[1], 5);
    }

    #[test]
    fn series_renders_all_rows() {
        let xs: Vec<i64> = (-2..=2).collect();
        let out = ascii_series(
            &xs,
            &[
                ("modulo".into(), vec![1.0, 2.0, 30.0, 2.0, 1.0]),
                ("slice".into(), vec![5.0, 10.0, 15.0, 10.0, 5.0]),
            ],
        );
        assert!(out.contains("modulo"));
        assert!(out.contains("slice"));
        assert!(out.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn series_length_checked() {
        ascii_series(&[0, 1], &[("s".into(), vec![1.0])]);
    }
}
