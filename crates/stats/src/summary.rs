//! Statistical summaries used by the paper's figures.
//!
//! Figure 3 reports the **geometric mean** of per-benchmark
//! improvements; Figures 4 onwards report **harmonic means** (labelled
//! "H-mean" on the x-axes). Both operate on speed-up *ratios* (e.g.
//! 1.16 for +16%), so the helpers here take ratios and the percent
//! conversion is explicit.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean of positive values; 0.0 for an empty slice.
///
/// # Panics
///
/// Panics if any value is non-positive (a speed-up ratio must be > 0).
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geometric mean requires positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Harmonic mean of positive values; 0.0 for an empty slice.
///
/// # Panics
///
/// Panics if any value is non-positive.
pub fn harmonic_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let recip_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "harmonic mean requires positive values, got {x}");
            1.0 / x
        })
        .sum();
    xs.len() as f64 / recip_sum
}

/// Converts a ratio (`new / old`) into a percentage change
/// (`1.36 → 36.0`).
pub fn percent_change(ratio: f64) -> f64 {
    (ratio - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_of_known_values() {
        let xs = [1.0, 2.0, 4.0];
        assert!((mean(&xs) - 7.0 / 3.0).abs() < 1e-12);
        assert!((geometric_mean(&xs) - 2.0).abs() < 1e-12);
        assert!((harmonic_mean(&xs) - 3.0 / 1.75).abs() < 1e-12);
    }

    #[test]
    fn mean_ordering_inequality() {
        // HM <= GM <= AM for positive, non-constant data.
        let xs = [1.1, 1.3, 1.02, 2.4];
        let h = harmonic_mean(&xs);
        let g = geometric_mean(&xs);
        let a = mean(&xs);
        assert!(h < g && g < a);
    }

    #[test]
    fn constant_data_all_means_agree() {
        let xs = [1.36; 8];
        for m in [mean(&xs), geometric_mean(&xs), harmonic_mean(&xs)] {
            assert!((m - 1.36).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_slices_yield_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(geometric_mean(&[]), 0.0);
        assert_eq!(harmonic_mean(&[]), 0.0);
    }

    #[test]
    fn percent_change_round_trip() {
        assert!((percent_change(1.36) - 36.0).abs() < 1e-12);
        assert!((percent_change(1.0)).abs() < 1e-12);
        assert!((percent_change(0.9) + 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn geometric_mean_rejects_zero() {
        geometric_mean(&[1.0, 0.0]);
    }
}
