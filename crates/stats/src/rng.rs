//! Deterministic pseudo-random numbers (xoshiro256\*\* + SplitMix64).
//!
//! Implemented from the public-domain reference algorithms by Blackman
//! & Vigna. Chosen over the `rand` crate for *library* code because the
//! synthetic workloads must be bit-reproducible forever: the programs
//! they generate are part of the experimental setup, exactly like the
//! fixed SpecInt95 binaries the paper used.

/// A xoshiro256\*\* generator.
///
/// # Example
///
/// ```
/// use dca_stats::Rng64;
/// let mut a = Rng64::seeded(42);
/// let mut b = Rng64::seeded(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// let r = a.range(10, 20);
/// assert!((10..20).contains(&r));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64,
    /// per the xoshiro authors' recommendation).
    pub fn seeded(seed: u64) -> Rng64 {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[lo, hi)` (unbiased via rejection).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Rejection sampling over the biased zone.
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + v % span;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p.clamp(0.0, 1.0)
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        &items[self.range(0, items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range(0, i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_from_splitmix_seed_zero() {
        // First outputs for seed 0 must stay frozen forever: the
        // workloads depend on them.
        let mut r = Rng64::seeded(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = Rng64::seeded(0);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Rng64::seeded(1).next_u64();
        let b = Rng64::seeded(2).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn range_bounds_hold() {
        let mut r = Rng64::seeded(7);
        for _ in 0..10_000 {
            let v = r.range(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = Rng64::seeded(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.range(0, 8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut r = Rng64::seeded(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn chance_matches_probability_roughly() {
        let mut r = Rng64::seeded(4);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng64::seeded(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng64::seeded(0).range(5, 5);
    }
}
