//! # dca-stats — deterministic randomness, summaries and rendering
//!
//! Support crate for the experiment harness:
//!
//! * [`rng`] — a from-scratch xoshiro256\*\* PRNG seeded via SplitMix64.
//!   The workload generators must emit bit-identical programs on every
//!   platform and toolchain, which rules out depending on `rand`'s
//!   evolving algorithms for *library* code (`rand` remains a
//!   dev-dependency for property tests).
//! * [`summary`] — geometric/harmonic means and friends. The paper
//!   reports G-means (Figure 3) and H-means (Figures 4–16) over
//!   per-benchmark speed-ups.
//! * [`render`] — markdown tables, aligned text tables, CSV and ASCII
//!   bar/series charts used to regenerate every figure as text.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod render;
pub mod rng;
pub mod summary;

pub use render::{ascii_bars, ascii_series, Table};
pub use rng::Rng64;
pub use summary::{geometric_mean, harmonic_mean, mean, percent_change};
