//! Criterion micro-benchmarks for the substrate components: branch
//! predictors, caches, the RDG analysis and the functional interpreter.
//!
//! These measure the *simulator's* wall-clock performance (host-side),
//! complementing the figure binaries that measure the *simulated*
//! machine.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dca_prog::{Interp, Rdg};
use dca_stats::Rng64;
use dca_uarch::{Bimodal, BranchPredictor, Cache, CacheConfig, Combined, Gshare};
use dca_workloads::{build, Scale};

fn bench_predictors(c: &mut Criterion) {
    let mut g = c.benchmark_group("bpred");
    g.throughput(Throughput::Elements(1024));
    let mut rng = Rng64::seeded(1);
    let stimuli: Vec<(u64, bool)> = (0..1024)
        .map(|_| (0x1000 + rng.range(0, 256) * 4, rng.chance(0.6)))
        .collect();
    g.bench_function("bimodal_2k", |b| {
        let mut p = Bimodal::new(2048);
        b.iter(|| {
            for &(pc, t) in &stimuli {
                black_box(p.predict(pc));
                p.update(pc, t);
            }
        })
    });
    g.bench_function("gshare_64k", |b| {
        let mut p = Gshare::new(64 * 1024, 16);
        b.iter(|| {
            for &(pc, t) in &stimuli {
                black_box(p.predict(pc));
                p.update(pc, t);
            }
        })
    });
    g.bench_function("combined_paper", |b| {
        let mut p = Combined::paper();
        b.iter(|| {
            for &(pc, t) in &stimuli {
                black_box(p.predict(pc));
                p.update(pc, t);
            }
        })
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(1024));
    let mut rng = Rng64::seeded(2);
    let addrs: Vec<u64> = (0..1024).map(|_| rng.range(0, 1 << 20)).collect();
    g.bench_function("l1_64k_2way", |b| {
        let mut cache = Cache::new(CacheConfig::paper_l1());
        b.iter(|| {
            for &a in &addrs {
                black_box(cache.access(a));
            }
        })
    });
    g.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("analysis");
    let w = build("compress", Scale::Smoke);
    g.bench_function("rdg_build_compress", |b| {
        b.iter(|| black_box(Rdg::build(&w.program)))
    });
    let gcc = build("gcc", Scale::Smoke);
    g.bench_function("rdg_build_gcc_17k_insts", |b| {
        b.iter(|| black_box(Rdg::build(&gcc.program)))
    });
    g.finish();
}

fn bench_interp(c: &mut Criterion) {
    let mut g = c.benchmark_group("interp");
    let w = build("compress", Scale::Smoke);
    let n = w.execute_functional().dyn_insts;
    g.throughput(Throughput::Elements(n));
    g.bench_function("functional_compress", |b| {
        b.iter(|| {
            let count = Interp::new(&w.program, w.memory.clone()).count();
            black_box(count)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_predictors, bench_cache, bench_analysis, bench_interp
}
criterion_main!(benches);
