//! Criterion end-to-end benchmarks: simulated instructions per second
//! for the full pipeline under different steering schemes, plus a
//! direct event-vs-scan engine comparison.
//!
//! The `engine` group measures the ready-list (wakeup) path explicitly
//! on two workload characters:
//!
//! * **copy-heavy** — `compress` under Modulo steering, which
//!   alternates clusters blindly and therefore maximises inter-cluster
//!   copies and cross-cluster wakeups;
//! * **balanced** — `compress` under GeneralBalance, which keeps
//!   dependence chains local, so the ready lists stay short and the
//!   wakeup-list overhead itself becomes visible.
//!
//! Run with `CRITERION_SHIM_JSON=BENCH_pipeline.json cargo bench
//! --bench simulator` to record the cycles/sec trajectory (CI does).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dca_sim::{Engine, SimConfig, Simulator};
use dca_steer::{FifoSteering, GeneralBalance, Modulo, SliceKind, SliceSteering};
use dca_workloads::{build, Scale};

const FUEL: u64 = 20_000;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    let w = build("compress", Scale::Smoke);
    g.throughput(Throughput::Elements(FUEL));
    g.bench_function("base_naive", |b| {
        let cfg = SimConfig::paper_base();
        b.iter(|| {
            let mut s = dca_steer::Naive::new();
            black_box(Simulator::new(&cfg, &w.program, w.memory.clone()).run(&mut s, FUEL))
        })
    });
    g.bench_function("clustered_general_balance", |b| {
        let cfg = SimConfig::paper_clustered();
        b.iter(|| {
            let mut s = GeneralBalance::new();
            black_box(Simulator::new(&cfg, &w.program, w.memory.clone()).run(&mut s, FUEL))
        })
    });
    g.bench_function("clustered_ldst_slice", |b| {
        let cfg = SimConfig::paper_clustered();
        b.iter(|| {
            let mut s = SliceSteering::new(SliceKind::LdSt);
            black_box(Simulator::new(&cfg, &w.program, w.memory.clone()).run(&mut s, FUEL))
        })
    });
    g.bench_function("clustered_fifo", |b| {
        let cfg = SimConfig::paper_clustered();
        b.iter(|| {
            let mut s = FifoSteering::paper();
            black_box(Simulator::new(&cfg, &w.program, w.memory.clone()).run(&mut s, FUEL))
        })
    });
    g.bench_function("clustered_modulo", |b| {
        let cfg = SimConfig::paper_clustered();
        b.iter(|| {
            let mut s = Modulo::new();
            black_box(Simulator::new(&cfg, &w.program, w.memory.clone()).run(&mut s, FUEL))
        })
    });
    g.finish();
}

/// Event vs scan on the clustered machine: copy-heavy (Modulo) and
/// balanced (GeneralBalance) workloads, plus a pointer-chasing stream
/// (`li`) whose load-latency bubbles exercise the skip-ahead rule.
fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    let compress = build("compress", Scale::Smoke);
    let li = build("li", Scale::Smoke);
    g.throughput(Throughput::Elements(FUEL));
    for (engine_name, engine) in [("event", Engine::Event), ("scan", Engine::Scan)] {
        let cfg = SimConfig {
            engine,
            ..SimConfig::paper_clustered()
        };
        g.bench_function(format!("clustered_copyheavy_modulo_{engine_name}"), |b| {
            b.iter(|| {
                let mut s = Modulo::new();
                black_box(
                    Simulator::new(&cfg, &compress.program, compress.memory.clone())
                        .run(&mut s, FUEL),
                )
            })
        });
        g.bench_function(format!("clustered_balanced_general_{engine_name}"), |b| {
            b.iter(|| {
                let mut s = GeneralBalance::new();
                black_box(
                    Simulator::new(&cfg, &compress.program, compress.memory.clone())
                        .run(&mut s, FUEL),
                )
            })
        });
        g.bench_function(format!("clustered_pointer_chase_li_{engine_name}"), |b| {
            b.iter(|| {
                let mut s = GeneralBalance::new();
                black_box(Simulator::new(&cfg, &li.program, li.memory.clone()).run(&mut s, FUEL))
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline, bench_engines
}
criterion_main!(benches);
