//! Criterion end-to-end benchmarks: simulated instructions per second
//! for the full pipeline under different steering schemes, plus the
//! per-call cost of the steering decision itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dca_sim::{SimConfig, Simulator};
use dca_steer::{FifoSteering, GeneralBalance, Modulo, SliceKind, SliceSteering};
use dca_workloads::{build, Scale};

const FUEL: u64 = 20_000;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    let w = build("compress", Scale::Smoke);
    g.throughput(Throughput::Elements(FUEL));
    g.bench_function("base_naive", |b| {
        let cfg = SimConfig::paper_base();
        b.iter(|| {
            let mut s = dca_steer::Naive::new();
            black_box(Simulator::new(&cfg, &w.program, w.memory.clone()).run(&mut s, FUEL))
        })
    });
    g.bench_function("clustered_general_balance", |b| {
        let cfg = SimConfig::paper_clustered();
        b.iter(|| {
            let mut s = GeneralBalance::new();
            black_box(Simulator::new(&cfg, &w.program, w.memory.clone()).run(&mut s, FUEL))
        })
    });
    g.bench_function("clustered_ldst_slice", |b| {
        let cfg = SimConfig::paper_clustered();
        b.iter(|| {
            let mut s = SliceSteering::new(SliceKind::LdSt);
            black_box(Simulator::new(&cfg, &w.program, w.memory.clone()).run(&mut s, FUEL))
        })
    });
    g.bench_function("clustered_fifo", |b| {
        let cfg = SimConfig::paper_clustered();
        b.iter(|| {
            let mut s = FifoSteering::paper();
            black_box(Simulator::new(&cfg, &w.program, w.memory.clone()).run(&mut s, FUEL))
        })
    });
    g.bench_function("clustered_modulo", |b| {
        let cfg = SimConfig::paper_clustered();
        b.iter(|| {
            let mut s = Modulo::new();
            black_box(Simulator::new(&cfg, &w.program, w.memory.clone()).run(&mut s, FUEL))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);
