//! Criterion benchmarks for the N-way cluster geometry: simulated
//! instructions per second at N ∈ {2, 4} (plus the `hetero4` preset),
//! so the N-cluster generalisation's cost on the hot issue/steer path
//! is tracked against the two-cluster baseline.
//!
//! Run with `CRITERION_SHIM_JSON=BENCH_nclusters.json cargo bench
//! --bench nclusters` to record the trajectory (CI does).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dca_sim::{MachineDesc, SimConfig, Simulator};
use dca_steer::GeneralBalance;
use dca_workloads::{build, Scale};

const FUEL: u64 = 20_000;

fn bench_nclusters(c: &mut Criterion) {
    let mut g = c.benchmark_group("nclusters");
    let w = build("compress", Scale::Smoke);
    g.throughput(Throughput::Elements(FUEL));
    let machines = [
        ("homo2_general_balance", SimConfig::n_clustered(2).unwrap()),
        ("homo4_general_balance", SimConfig::n_clustered(4).unwrap()),
        (
            "hetero4_general_balance",
            MachineDesc::hetero4()
                .apply(&SimConfig::paper_clustered())
                .unwrap(),
        ),
    ];
    for (name, cfg) in &machines {
        g.bench_function(*name, |b| {
            b.iter(|| {
                let mut s = GeneralBalance::new();
                black_box(Simulator::new(cfg, &w.program, w.memory.clone()).run(&mut s, FUEL))
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_nclusters
}
criterion_main!(benches);
