//! Decision-logic overhead of each steering scheme, isolated from the
//! pipeline: ns per `steer`+`on_steered` pair on a realistic decode
//! stream. The paper argues (§3.3) that the steering hardware is
//! simple; in software terms the schemes must add negligible cost per
//! simulated instruction.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dca_bench::ALL_SCHEMES;
use dca_prog::Program;
use dca_sim::{Allowed, ClusterId, DecodedView, SteerCtx, Steering};
use dca_workloads::{build, Scale};

/// A decode stream replayed against a scheme outside the simulator:
/// static instructions in program order with synthetic-but-plausible
/// operand residency.
fn decode_stream(prog: &Program) -> Vec<(u32, u64)> {
    prog.static_insts()
        .iter()
        .map(|si| (si.sidx, 0x1000 + u64::from(si.sidx) * 4))
        .collect()
}

fn drive(scheme: &mut dyn Steering, prog: &Program, rounds: usize) -> u64 {
    let stream = decode_stream(prog);
    let ctx = SteerCtx::default();
    let mut int_count = 0u64;
    let mut seq = 0u64;
    for _ in 0..rounds {
        for &(sidx, pc) in &stream {
            let inst = &prog.static_inst(sidx).inst;
            if inst.op == dca_isa::Opcode::Halt {
                continue;
            }
            let view = DecodedView {
                seq,
                sidx,
                pc,
                inst,
                class: inst.op.class(),
                srcs: [None, None],
            };
            seq += 1;
            let c = scheme
                .steer(&view, Allowed::both(), &ctx)
                .unwrap_or(ClusterId::INT);
            scheme.on_steered(&view, c, &ctx);
            scheme.on_issued(view.seq, c);
            int_count += u64::from(c == ClusterId::INT);
        }
    }
    int_count
}

fn bench_steering(c: &mut Criterion) {
    let w = build("compress", Scale::Smoke);
    let rounds = 50;
    let per_iter = (w.program.len() - 1) * rounds;
    let mut g = c.benchmark_group("steering_decision");
    g.throughput(Throughput::Elements(per_iter as u64));
    for kind in ALL_SCHEMES {
        g.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut scheme = kind.instantiate(&w.program);
                black_box(drive(scheme.as_mut(), &w.program, rounds))
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_steering
}
criterion_main!(benches);
