//! Regenerates the paper artefact `fig11` (see dca-bench docs).
fn main() {
    dca_bench::run_cli(Some("fig11"));
}
