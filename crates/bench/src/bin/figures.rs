//! Regenerates every table and figure (or a named subset):
//! `cargo run -p dca-bench --release --bin figures -- [ids...] [--scale smoke|default|full]`.
fn main() {
    dca_bench::run_cli(None);
}
