//! Regenerates the paper artefact `table2` (see dca-bench docs).
fn main() {
    dca_bench::run_cli(Some("table2"));
}
