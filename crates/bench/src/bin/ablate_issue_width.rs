//! Regenerates the paper artefact `ablate_issue_width` (see dca-bench docs).
fn main() {
    dca_bench::run_cli(Some("ablate_issue_width"));
}
