//! Regenerates the paper artefact `fig06` (see dca-bench docs).
fn main() {
    dca_bench::run_cli(Some("fig06"));
}
