//! Regenerates the paper artefact `fig08` (see dca-bench docs).
fn main() {
    dca_bench::run_cli(Some("fig08"));
}
