//! Regenerates the paper artefact `fig12` (see dca-bench docs).
fn main() {
    dca_bench::run_cli(Some("fig12"));
}
