//! Regenerates the paper artefact `ablate_rf_ports` (see dca-bench docs).
fn main() {
    dca_bench::run_cli(Some("ablate_rf_ports"));
}
