//! Regenerates the paper artefact `fig16` (see dca-bench docs).
fn main() {
    dca_bench::run_cli(Some("fig16"));
}
