//! Diagnostic dump: per-benchmark pipeline statistics for the base,
//! clustered (general balance) and upper-bound machines — used to
//! understand where cycles go when calibrating the workloads.

use dca_bench::{Lab, Machine, RunOpts, SchemeKind};
use dca_stats::Table;

fn main() {
    let (opts, _) = RunOpts::from_args(std::env::args().skip(1));
    let mut lab = Lab::new(opts);
    let mut t = Table::new(&[
        "bench",
        "machine",
        "IPC",
        "cycles",
        "insts",
        "mispred%",
        "L1D miss%",
        "L1I miss%",
        "comms/i",
        "crit/i",
        "disp-stall%",
        "steered I/F",
        "repl",
    ]);
    for bench in dca_workloads::NAMES {
        for (label, machine, scheme) in [
            ("base", Machine::Base, SchemeKind::Naive),
            ("general", Machine::Clustered, SchemeKind::GeneralBalance),
            ("ub", Machine::UpperBound, SchemeKind::Naive),
        ] {
            let s = lab.stats(bench, machine, scheme);
            t.row(&[
                bench.to_string(),
                label.to_string(),
                format!("{:.3}", s.ipc()),
                s.cycles.to_string(),
                s.committed.to_string(),
                format!("{:.1}", s.mispredict_ratio() * 100.0),
                format!("{:.1}", s.l1d.miss_ratio() * 100.0),
                format!("{:.1}", s.l1i.miss_ratio() * 100.0),
                format!("{:.3}", s.comms_per_inst()),
                format!("{:.3}", s.critical_comms_per_inst()),
                format!("{:.1}", s.dispatch_stall_cycles as f64 * 100.0 / s.cycles as f64),
                format!("{}/{}", s.steered[0] * 100 / s.committed.max(1), s.steered[1] * 100 / s.committed.max(1)),
                format!("{:.1}", s.avg_replication()),
            ]);
        }
    }
    println!("{}", t.to_aligned());
}
