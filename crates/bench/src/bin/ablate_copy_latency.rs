//! Regenerates the paper artefact `ablate_copy_latency` (see dca-bench docs).
fn main() {
    dca_bench::run_cli(Some("ablate_copy_latency"));
}
