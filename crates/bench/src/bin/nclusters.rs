//! Regenerates the cluster-count scaling artefact `nclusters`
//! (homogeneous N ∈ {2, 4, 8} plus the `hetero4` preset).
fn main() {
    dca_bench::run_cli(Some("nclusters"));
}
