//! Regenerates the paper artefact `table1` (see dca-bench docs).
fn main() {
    dca_bench::run_cli(Some("table1"));
}
