//! Regenerates the paper artefact `ablate_imbalance` (see dca-bench docs).
fn main() {
    dca_bench::run_cli(Some("ablate_imbalance"));
}
