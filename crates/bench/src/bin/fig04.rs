//! Regenerates the paper artefact `fig04` (see dca-bench docs).
fn main() {
    dca_bench::run_cli(Some("fig04"));
}
