//! Regenerates the paper artefact `fig14` (see dca-bench docs).
fn main() {
    dca_bench::run_cli(Some("fig14"));
}
