//! Regenerates the paper artefact `fig15` (see dca-bench docs).
fn main() {
    dca_bench::run_cli(Some("fig15"));
}
