//! Regenerates the paper artefact `fig13` (see dca-bench docs).
fn main() {
    dca_bench::run_cli(Some("fig13"));
}
