//! `obs_validate` — CI gate for observability artefacts.
//!
//! ```text
//! obs_validate trace.json metrics.prom
//! ```
//!
//! Exits 0 when `trace.json` is valid Chrome trace-event JSON carrying
//! complete (`ph:"X"`) spans from all four instrumented layers (`lab`,
//! `prog`, `sim`, `store`) with sane timestamps, and `metrics.prom` is
//! a Prometheus text exposition carrying the core session counters.
//! Prints a one-line summary per file; exits 1 with a diagnostic on
//! the first violation.

use std::collections::BTreeSet;
use std::process::ExitCode;

use dca_obs::json::Json;

fn fail(msg: &str) -> ExitCode {
    eprintln!("obs_validate: FAIL: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(trace_path), Some(metrics_path)) = (args.next(), args.next()) else {
        return fail("usage: obs_validate TRACE.json METRICS.prom");
    };

    // --- Chrome trace-event JSON ---
    let text = match std::fs::read_to_string(&trace_path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {trace_path}: {e}")),
    };
    let doc = match dca_obs::json::parse(&text) {
        Ok(d) => d,
        Err(e) => return fail(&format!("{trace_path} is not valid JSON: {e}")),
    };
    let Some(events) = doc.get("traceEvents").and_then(Json::as_array) else {
        return fail(&format!("{trace_path} lacks a traceEvents array"));
    };
    if events.is_empty() {
        return fail(&format!("{trace_path} has zero span events"));
    }
    let mut cats = BTreeSet::new();
    for (i, e) in events.iter().enumerate() {
        let name = e.get("name").and_then(Json::as_str);
        if name.is_none_or(str::is_empty) {
            return fail(&format!("event {i} has no name"));
        }
        if e.get("ph").and_then(Json::as_str) != Some("X") {
            return fail(&format!("event {i} is not a complete (ph:X) event"));
        }
        if e.get("ts").and_then(Json::as_f64).is_none()
            || e.get("dur").and_then(Json::as_f64).is_none()
        {
            return fail(&format!("event {i} lacks numeric ts/dur"));
        }
        if let Some(c) = e.get("cat").and_then(Json::as_str) {
            cats.insert(c.to_string());
        }
    }
    for want in ["lab", "prog", "sim", "store"] {
        if !cats.contains(want) {
            return fail(&format!(
                "no `{want}` span in {trace_path} (cats present: {cats:?})"
            ));
        }
    }
    println!(
        "obs_validate: {trace_path}: {} events across layers {:?}",
        events.len(),
        cats
    );

    // --- Prometheus text exposition ---
    let prom = match std::fs::read_to_string(&metrics_path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {metrics_path}: {e}")),
    };
    for needle in [
        "# TYPE dca_intervals_computed_total counter",
        "# TYPE dca_store_reads_total counter",
        "# TYPE dca_interval_ns histogram",
        "dca_interval_ns_bucket",
        "dca_lab_workers",
    ] {
        if !prom.contains(needle) {
            return fail(&format!("{metrics_path} missing `{needle}`"));
        }
    }
    let samples = prom.lines().filter(|l| !l.starts_with('#') && !l.is_empty()).count();
    println!("obs_validate: {metrics_path}: {samples} samples");
    println!("obs_validate: OK");
    ExitCode::SUCCESS
}
