//! Regenerates the paper artefact `ablate_threshold` (see dca-bench docs).
fn main() {
    dca_bench::run_cli(Some("ablate_threshold"));
}
