//! Regenerates the paper artefact `fig09` (see dca-bench docs).
fn main() {
    dca_bench::run_cli(Some("fig09"));
}
