//! Regenerates the paper artefact `fig07` (see dca-bench docs).
fn main() {
    dca_bench::run_cli(Some("fig07"));
}
