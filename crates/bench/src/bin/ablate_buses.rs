//! Regenerates the paper artefact `ablate_buses` (see dca-bench docs).
fn main() {
    dca_bench::run_cli(Some("ablate_buses"));
}
