//! Regenerates the paper artefact `ablate_window` (see dca-bench docs).
fn main() {
    dca_bench::run_cli(Some("ablate_window"));
}
