//! Regenerates the paper artefact `fig05` (see dca-bench docs).
fn main() {
    dca_bench::run_cli(Some("fig05"));
}
