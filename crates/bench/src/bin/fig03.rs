//! Regenerates the paper artefact `fig03` (see dca-bench docs).
fn main() {
    dca_bench::run_cli(Some("fig03"));
}
