//! One function per table/figure of the paper's evaluation section.
//!
//! Every function renders a [`Figure`]: a markdown document containing
//! the regenerated table/series plus an ASCII rendition of the plot.
//! The binaries print it and store it under `results/`.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use dca_sim::BalanceHistogram;
use dca_stats::{ascii_bars, ascii_series, geometric_mean, harmonic_mean, Table};
use dca_workloads::{Workload, FIGURE3_NAMES, NAMES};

use crate::{Lab, Machine, SchemeKind, Warming};

/// The full run-set of a figure over `series` × `benches` (plus the
/// base runs every speed-up needs), handed to [`Lab::ensure`] so the
/// whole figure simulates in parallel before any cell is rendered.
fn ensure_series(
    lab: &mut Lab,
    series: &[Series<'_>],
    benches: &[&str],
    with_base: bool,
) {
    let mut runs: Vec<(&str, Machine, SchemeKind)> = Vec::new();
    for &bench in benches {
        if with_base {
            runs.push((bench, Machine::Base, SchemeKind::Naive));
        }
        for &(_, machine, scheme) in series {
            runs.push((bench, machine, scheme));
        }
    }
    lab.ensure(&runs);
}

/// Runs `per_bench` for every suite benchmark on worker threads and
/// returns the results in suite order. Workloads come from the lab's
/// cache (built in parallel if missing), so ablations never rebuild
/// what an earlier figure already constructed. Used by the ablations
/// whose custom machine configurations fall outside the Lab's
/// (benchmark, machine, scheme) cache.
fn suite_parallel<R: Send>(
    lab: &mut Lab,
    per_bench: impl Fn(&'static str, &Workload) -> R + Sync,
) -> Vec<(&'static str, R)> {
    let workloads = lab.build_workloads(&NAMES);
    let results = Lab::fan_out(&NAMES, |&bench| {
        (bench, per_bench(bench, &workloads[bench]))
    });
    let mut by_name: HashMap<&'static str, R> = results.into_iter().collect();
    NAMES
        .iter()
        .map(|&n| (n, by_name.remove(n).expect("every benchmark ran")))
        .collect()
}

/// Speed-ups (%) over the base machine for a sweep of custom-registered
/// machines under one scheme, ensured as a single parallel batch and
/// returned in suite order. This is how the `ablate_*` configuration
/// sweeps route through the Lab's cache, sampling and persistent store:
/// each sweep point's results are keyed by its geometry
/// ([`dca_sim::SimConfig::config_hash`]), so ablated configs never
/// collide with each other or with the presets.
fn custom_speedups(
    lab: &mut Lab,
    machines: &[Machine],
    scheme: SchemeKind,
) -> Vec<(&'static str, Vec<f64>)> {
    let mut runs: Vec<(&str, Machine, SchemeKind)> = Vec::new();
    for &bench in &NAMES {
        runs.push((bench, Machine::Base, SchemeKind::Naive));
        for &m in machines {
            runs.push((bench, m, scheme));
        }
    }
    lab.ensure(&runs);
    NAMES
        .iter()
        .map(|&bench| {
            let sps = machines
                .iter()
                .map(|&m| lab.speedup(bench, m, scheme))
                .collect();
            (bench, sps)
        })
        .collect()
}

/// A regenerated artefact.
#[derive(Clone, Debug, Default)]
pub struct Figure {
    /// Stable identifier (`fig03`, `table1`, `ablate_buses`, …).
    pub id: &'static str,
    /// Title, matching the paper's caption.
    pub title: String,
    /// Markdown body. Byte-identical across invocations for the same
    /// inputs (asserted by `figures::tests`): anything wall-clock-
    /// dependent belongs in [`Figure::timing`].
    pub body: String,
    /// Optional wall-clock footer (simulation rates, end-to-end
    /// speed-ups). Saved separately as `<id>.timing` so the report
    /// itself stays reproducible byte for byte.
    pub timing: Option<String>,
}

impl Figure {
    /// The full report document — the exact bytes [`Figure::save`]
    /// writes to `<id>.md`. Serve fronts return this same rendering,
    /// so a report fetched over the wire is byte-identical to one
    /// generated offline by `dca figures`.
    pub fn document(&self) -> String {
        format!("# {}\n\n{}", self.title, self.body)
    }

    /// Writes the figure to `<dir>/<id>.md` (and any timing footer to
    /// `<dir>/<id>.timing`) and returns the report path.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating the directory or files.
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.md", self.id));
        std::fs::write(&path, self.document())?;
        let timing_path = dir.join(format!("{}.timing", self.id));
        match &self.timing {
            Some(timing) => std::fs::write(timing_path, timing)?,
            // A regeneration without a footer must not leave a stale
            // one beside the fresh report.
            None => match std::fs::remove_file(timing_path) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            },
        }
        Ok(path)
    }
}

/// Which suite mean a figure reports (the paper uses G-mean in
/// Figure 3 and H-mean elsewhere).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Mean {
    Geometric,
    Harmonic,
}

impl Mean {
    fn label(self) -> &'static str {
        match self {
            Mean::Geometric => "G-mean",
            Mean::Harmonic => "H-mean",
        }
    }

    /// Mean over speed-up percentages, computed on ratios as the paper
    /// does.
    fn of_percents(self, percents: &[f64]) -> f64 {
        let ratios: Vec<f64> = percents.iter().map(|p| 1.0 + p / 100.0).collect();
        let m = match self {
            Mean::Geometric => geometric_mean(&ratios),
            Mean::Harmonic => harmonic_mean(&ratios),
        };
        (m - 1.0) * 100.0
    }
}

/// A named series of a speed-up figure.
type Series<'a> = (&'a str, Machine, SchemeKind);

fn speedup_figure(
    lab: &mut Lab,
    id: &'static str,
    title: &str,
    series: &[Series<'_>],
    benches: &[&str],
    mean: Mean,
) -> Figure {
    ensure_series(lab, series, benches, true);
    let mut headers: Vec<&str> = vec!["benchmark"];
    headers.extend(series.iter().map(|(l, _, _)| *l));
    let mut table = Table::new(&headers);
    let mut per_series: Vec<Vec<f64>> = vec![Vec::new(); series.len()];
    for &bench in benches {
        let mut row = vec![bench.to_string()];
        for (k, &(_, machine, scheme)) in series.iter().enumerate() {
            let s = lab.speedup(bench, machine, scheme);
            per_series[k].push(s);
            row.push(format!("{s:.1}"));
        }
        table.row(&row);
    }
    let mut mean_row = vec![mean.label().to_string()];
    let mut bars = Vec::new();
    for (k, (label, _, _)) in series.iter().enumerate() {
        let m = mean.of_percents(&per_series[k]);
        mean_row.push(format!("{m:.1}"));
        bars.push((label.to_string(), m));
    }
    table.row(&mean_row);

    let mut body = String::new();
    let _ = writeln!(body, "Performance improvement (%) over the base machine.\n");
    let _ = writeln!(body, "{}", table.to_markdown());
    let _ = writeln!(body, "```\nsuite {}:\n{}```", mean.label(), ascii_bars(&bars, 40));
    Figure {
        id,
        title: title.to_string(),
        body,
        timing: None,
    }
}

fn comm_figure(
    lab: &mut Lab,
    id: &'static str,
    title: &str,
    series: &[Series<'_>],
    benches: &[&str],
    per_benchmark: bool,
) -> Figure {
    ensure_series(lab, series, benches, false);
    let mut body = String::new();
    let _ = writeln!(
        body,
        "Inter-cluster communications per dynamic instruction, split into\n\
         critical and non-critical (a communication is critical when it\n\
         delayed a consumer in the destination cluster).\n"
    );
    let mut table = Table::new(&["scheme", "benchmark", "comm/instr", "critical", "non-critical"]);
    let mut bars = Vec::new();
    for &(label, machine, scheme) in series {
        let mut totals = Vec::new();
        let mut crits = Vec::new();
        for &bench in benches {
            let s = lab.stats(bench, machine, scheme);
            let total = s.comms_per_inst();
            let crit = s.critical_comms_per_inst();
            totals.push(total);
            crits.push(crit);
            if per_benchmark {
                table.row(&[
                    label.to_string(),
                    bench.to_string(),
                    format!("{total:.3}"),
                    format!("{crit:.3}"),
                    format!("{:.3}", total - crit),
                ]);
            }
        }
        let avg: f64 = totals.iter().sum::<f64>() / totals.len() as f64;
        let avg_crit: f64 = crits.iter().sum::<f64>() / crits.len() as f64;
        table.row(&[
            label.to_string(),
            "average".to_string(),
            format!("{avg:.3}"),
            format!("{avg_crit:.3}"),
            format!("{:.3}", avg - avg_crit),
        ]);
        bars.push((format!("{label} (total)"), avg));
        bars.push((format!("{label} (critical)"), avg_crit));
    }
    let _ = writeln!(body, "{}", table.to_markdown());
    let _ = writeln!(body, "```\n{}```", ascii_bars(&bars, 40));
    Figure {
        id,
        title: title.to_string(),
        body,
        timing: None,
    }
}

fn balance_figure(
    lab: &mut Lab,
    id: &'static str,
    title: &str,
    series: &[Series<'_>],
    benches: &[&str],
) -> Figure {
    ensure_series(lab, series, benches, false);
    let xs: Vec<i64> = (-10..=10).collect();
    let mut rendered = Vec::new();
    let mut table = Table::new(
        &std::iter::once("#ready FP − #ready INT")
            .chain(series.iter().map(|(l, _, _)| *l))
            .collect::<Vec<_>>(),
    );
    let mut columns: Vec<[f64; 21]> = Vec::new();
    for &(label, machine, scheme) in series {
        let mut merged = BalanceHistogram::new();
        for &bench in benches {
            let s = lab.stats(bench, machine, scheme);
            merged.merge(&s.balance);
        }
        let pct = merged.percent_series();
        rendered.push((label.to_string(), pct.to_vec()));
        columns.push(pct);
    }
    for (row_idx, &x) in xs.iter().enumerate() {
        let mut row = vec![x.to_string()];
        for col in &columns {
            row.push(format!("{:.1}", col[row_idx]));
        }
        table.row(&row);
    }
    let mut body = String::new();
    let _ = writeln!(
        body,
        "Distribution of the difference in ready instructions between the\n\
         clusters, % of cycles (SpecInt-analogue suite average).\n"
    );
    let _ = writeln!(body, "{}", table.to_markdown());
    let _ = writeln!(body, "```\n{}```", ascii_series(&xs, &rendered));
    Figure {
        id,
        title: title.to_string(),
        body,
        timing: None,
    }
}

// ---------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------

/// Table 1: benchmarks and their inputs (plus the analogue's measured
/// functional character, which stands in for the original binaries).
pub fn table1(lab: &mut Lab) -> Figure {
    let mut t = Table::new(&[
        "benchmark",
        "paper input",
        "analogue behaviour",
        "dyn. insts",
        "loads",
        "stores",
        "branches",
    ]);
    for (name, (paper_input, description, s)) in suite_parallel(lab, |_, w| {
        (w.paper_input, w.description, w.execute_functional())
    }) {
        t.row(&[
            name.to_string(),
            paper_input.to_string(),
            description.to_string(),
            s.dyn_insts.to_string(),
            format!("{:.1}%", s.load_ratio() * 100.0),
            format!("{:.1}%", s.store_ratio() * 100.0),
            format!("{:.1}%", s.branch_ratio() * 100.0),
        ]);
    }
    Figure {
        id: "table1",
        title: "Table 1: Benchmarks and their inputs (SpecInt95 analogues)".into(),
        body: t.to_markdown(),
        timing: None,
    }
}

/// Table 2: machine parameters, read back from the configuration
/// structs so the document cannot drift from the code.
pub fn table2(_lab: &mut Lab) -> Figure {
    let c = Machine::Clustered.config();
    let h = c.hierarchy;
    let mut t = Table::new(&["parameter", "configuration"]);
    let mut row = |k: &str, v: String| {
        t.row(&[k.to_string(), v]);
    };
    row("Fetch width", format!("{} instructions", c.fetch_width));
    row(
        "I-cache",
        format!(
            "{}KB, {}-way, {}-byte lines, {}-cycle hit, {}-cycle miss penalty",
            h.l1i.size_bytes / 1024,
            h.l1i.ways,
            h.l1i.line_bytes,
            h.l1_hit,
            h.l1_miss_penalty
        ),
    );
    row(
        "Branch predictor",
        format!(
            "combined: {}-entry selector, gshare {}K 2-bit counters / {}-bit history, bimodal {}K",
            c.bpred.selector_entries,
            c.bpred.gshare_entries / 1024,
            c.bpred.history_bits,
            c.bpred.bimodal_entries / 1024
        ),
    );
    row("Decode/rename width", format!("{} instructions", c.decode_width));
    row(
        "Instruction queues",
        format!("{} + {}", c.iq_size[0], c.iq_size[1]),
    );
    row("Max in-flight", format!("{}", c.rob_size));
    row("Retire width", format!("{} instructions", c.retire_width));
    row(
        "Functional units (C1)",
        format!(
            "{} intALU + {} int mul/div",
            c.fus[0].int_alu, c.fus[0].int_muldiv
        ),
    );
    row(
        "Functional units (C2)",
        format!(
            "{} intALU + {} fpALU + {} fp mul/div",
            c.fus[1].int_alu, c.fus[1].fp_alu, c.fus[1].fp_muldiv
        ),
    );
    row(
        "Inter-cluster buses",
        format!(
            "{}/cycle each way, {} extra cycle(s); copies consume issue width",
            c.buses_per_dir, c.copy_latency
        ),
    );
    row(
        "Issue",
        format!(
            "{} + {} out-of-order; loads execute when prior store addresses known",
            c.issue_width[0], c.issue_width[1]
        ),
    );
    row(
        "Physical registers",
        format!("{} + {}", c.phys_regs[0], c.phys_regs[1]),
    );
    row(
        "D-cache L1",
        format!(
            "{}KB, {}-way, {}-byte lines, {}-cycle hit, {} R/W ports",
            h.l1d.size_bytes / 1024,
            h.l1d.ways,
            h.l1d.line_bytes,
            h.l1_hit,
            c.dcache_ports
        ),
    );
    row(
        "L2 (shared)",
        format!(
            "{}KB, {}-way, {}-byte lines, {}-cycle hit",
            h.l2.size_bytes / 1024,
            h.l2.ways,
            h.l2.line_bytes,
            h.l1_miss_penalty
        ),
    );
    row(
        "Main memory",
        format!(
            "{}-byte bus, {} cycles first chunk, {} inter-chunk",
            h.bus_bytes, h.mem_first_chunk, h.mem_inter_chunk
        ),
    );
    Figure {
        id: "table2",
        title: "Table 2: Machine parameters".into(),
        body: t.to_markdown(),
        timing: None,
    }
}

// ---------------------------------------------------------------------
// Figures 3–16
// ---------------------------------------------------------------------

/// Figure 3: static partitioning (Sastry et al.) versus the dynamic
/// LdSt slice steering; G-mean over seven benchmarks (no vortex).
pub fn fig03(lab: &mut Lab) -> Figure {
    speedup_figure(
        lab,
        "fig03",
        "Figure 3: Static versus dynamic partitioning",
        &[
            ("Static (Sastry et al.)", Machine::Clustered, SchemeKind::StaticLdSt),
            ("LdSt slice", Machine::Clustered, SchemeKind::LdStSlice),
        ],
        &FIGURE3_NAMES,
        Mean::Geometric,
    )
}

/// Figure 4: LdSt slice versus Br slice steering.
pub fn fig04(lab: &mut Lab) -> Figure {
    speedup_figure(
        lab,
        "fig04",
        "Figure 4: LdSt slice versus Br slice steering",
        &[
            ("LdSt slice", Machine::Clustered, SchemeKind::LdStSlice),
            ("Br slice", Machine::Clustered, SchemeKind::BrSlice),
        ],
        &NAMES,
        Mean::Harmonic,
    )
}

/// Figure 5: communications per dynamic instruction for the slice
/// steering schemes, split critical / non-critical, per benchmark.
pub fn fig05(lab: &mut Lab) -> Figure {
    comm_figure(
        lab,
        "fig05",
        "Figure 5: Communications per dynamic instruction (slice steering)",
        &[
            ("LdSt slice", Machine::Clustered, SchemeKind::LdStSlice),
            ("Br slice", Machine::Clustered, SchemeKind::BrSlice),
        ],
        &NAMES,
        true,
    )
}

/// Figure 6: workload-balance distribution for the slice steering
/// schemes.
pub fn fig06(lab: &mut Lab) -> Figure {
    balance_figure(
        lab,
        "fig06",
        "Figure 6: Distribution of ready-instruction imbalance (slice steering)",
        &[
            ("Ld/St slice", Machine::Clustered, SchemeKind::LdStSlice),
            ("Br slice", Machine::Clustered, SchemeKind::BrSlice),
        ],
        &NAMES,
    )
}

/// Figure 7: non-slice balance steering versus plain slice steering.
pub fn fig07(lab: &mut Lab) -> Figure {
    speedup_figure(
        lab,
        "fig07",
        "Figure 7: Non-slice balance steering versus slice steering",
        &[
            ("LdSt slice", Machine::Clustered, SchemeKind::LdStSlice),
            ("Br slice", Machine::Clustered, SchemeKind::BrSlice),
            ("LdSt non-slice", Machine::Clustered, SchemeKind::LdStNonSliceBalance),
            ("Br non-slice", Machine::Clustered, SchemeKind::BrNonSliceBalance),
        ],
        &NAMES,
        Mean::Harmonic,
    )
}

/// Figure 8: suite-average communications for the four schemes of
/// Figure 7.
pub fn fig08(lab: &mut Lab) -> Figure {
    comm_figure(
        lab,
        "fig08",
        "Figure 8: Communications per instruction (suite average)",
        &[
            ("LdSt slice", Machine::Clustered, SchemeKind::LdStSlice),
            ("Br slice", Machine::Clustered, SchemeKind::BrSlice),
            ("LdSt non-slice", Machine::Clustered, SchemeKind::LdStNonSliceBalance),
            ("Br non-slice", Machine::Clustered, SchemeKind::BrNonSliceBalance),
        ],
        &NAMES,
        false,
    )
}

/// Figure 9: workload-balance distribution for non-slice balance
/// steering.
pub fn fig09(lab: &mut Lab) -> Figure {
    balance_figure(
        lab,
        "fig09",
        "Figure 9: Ready-instruction imbalance (non-slice balance steering)",
        &[
            ("Ld/St non-slice", Machine::Clustered, SchemeKind::LdStNonSliceBalance),
            ("Br non-slice", Machine::Clustered, SchemeKind::BrNonSliceBalance),
        ],
        &NAMES,
    )
}

/// Figure 11: slice balance steering performance.
pub fn fig11(lab: &mut Lab) -> Figure {
    speedup_figure(
        lab,
        "fig11",
        "Figure 11: Slice balance steering performance",
        &[
            ("LdSt slice bal.", Machine::Clustered, SchemeKind::LdStSliceBalance),
            ("Br slice bal.", Machine::Clustered, SchemeKind::BrSliceBalance),
        ],
        &NAMES,
        Mean::Harmonic,
    )
}

/// Figure 12: balance distribution of modulo versus slice balance.
pub fn fig12(lab: &mut Lab) -> Figure {
    balance_figure(
        lab,
        "fig12",
        "Figure 12: Ready-instruction imbalance (modulo vs slice balance)",
        &[
            ("Modulo", Machine::Clustered, SchemeKind::Modulo),
            ("Ld/St slice bal.", Machine::Clustered, SchemeKind::LdStSliceBalance),
            ("Br slice bal.", Machine::Clustered, SchemeKind::BrSliceBalance),
        ],
        &NAMES,
    )
}

/// Figure 13: priority slice balance steering performance (plus the
/// critical-communication deltas the paper quotes in §3.7).
pub fn fig13(lab: &mut Lab) -> Figure {
    let mut fig = speedup_figure(
        lab,
        "fig13",
        "Figure 13: Priority slice balance steering performance",
        &[
            ("LdSt p. slice", Machine::Clustered, SchemeKind::LdStPriority),
            ("Br p. slice", Machine::Clustered, SchemeKind::BrPriority),
        ],
        &NAMES,
        Mean::Harmonic,
    );
    // §3.7 quotes the reduction in *critical* communications versus the
    // plain slice-balance schemes — append the measured values.
    ensure_series(
        lab,
        &[
            ("", Machine::Clustered, SchemeKind::LdStSliceBalance),
            ("", Machine::Clustered, SchemeKind::BrSliceBalance),
        ],
        &NAMES,
        false,
    );
    let mut extra = String::new();
    for (label, plain, prio) in [
        ("LdSt", SchemeKind::LdStSliceBalance, SchemeKind::LdStPriority),
        ("Br", SchemeKind::BrSliceBalance, SchemeKind::BrPriority),
    ] {
        let (mut c_plain, mut c_prio) = (0.0, 0.0);
        for &bench in &NAMES {
            c_plain += lab
                .stats(bench, Machine::Clustered, plain)
                .critical_comms_per_inst();
            c_prio += lab
                .stats(bench, Machine::Clustered, prio)
                .critical_comms_per_inst();
        }
        c_plain /= NAMES.len() as f64;
        c_prio /= NAMES.len() as f64;
        let _ = writeln!(
            extra,
            "- {label}: critical comms/instr {c_plain:.3} (slice bal.) → {c_prio:.3} (priority)",
        );
    }
    fig.body.push_str("\nCritical-communication change (§3.7):\n\n");
    fig.body.push_str(&extra);
    fig
}

/// Figure 14: modulo, general balance and the 16-way upper bound.
pub fn fig14(lab: &mut Lab) -> Figure {
    speedup_figure(
        lab,
        "fig14",
        "Figure 14: General balance steering",
        &[
            ("Modulo", Machine::Clustered, SchemeKind::Modulo),
            ("General bal.", Machine::Clustered, SchemeKind::GeneralBalance),
            ("UB arch.", Machine::UpperBound, SchemeKind::Naive),
        ],
        &NAMES,
        Mean::Harmonic,
    )
}

/// Figure 15: register replication under general balance steering.
pub fn fig15(lab: &mut Lab) -> Figure {
    ensure_series(
        lab,
        &[("", Machine::Clustered, SchemeKind::GeneralBalance)],
        &NAMES,
        false,
    );
    let mut t = Table::new(&["benchmark", "avg replicated regs/cycle"]);
    let mut bars = Vec::new();
    let mut vals = Vec::new();
    for &bench in &NAMES {
        let s = lab.stats(bench, Machine::Clustered, SchemeKind::GeneralBalance);
        let r = s.avg_replication();
        vals.push(r);
        t.row(&[bench.to_string(), format!("{r:.2}")]);
        bars.push((bench.to_string(), r));
    }
    let hmean = harmonic_mean(&vals.iter().map(|v| v.max(1e-9)).collect::<Vec<_>>());
    t.row(&["H-mean".into(), format!("{hmean:.2}")]);
    let mut body = String::new();
    let _ = writeln!(
        body,
        "Average number of integer logical registers with a physical\n\
         register allocated in both clusters, per cycle (the paper reports\n\
         3.1 on average versus full replication of the Alpha 21264).\n"
    );
    let _ = writeln!(body, "{}", t.to_markdown());
    let _ = writeln!(body, "```\n{}```", ascii_bars(&bars, 40));
    Figure {
        id: "fig15",
        title: "Figure 15: Register replication (general balance steering)".into(),
        body,
        timing: None,
    }
}

/// Figure 16: FIFO-based steering (Palacharla et al.) versus general
/// balance, including the communication comparison quoted in §3.9.
pub fn fig16(lab: &mut Lab) -> Figure {
    let mut fig = speedup_figure(
        lab,
        "fig16",
        "Figure 16: General balance versus FIFO-based steering",
        &[
            ("FIFO-based", Machine::Clustered, SchemeKind::Fifo),
            ("General bal.", Machine::Clustered, SchemeKind::GeneralBalance),
        ],
        &NAMES,
        Mean::Harmonic,
    );
    let mut comm = String::new();
    for (label, scheme) in [
        ("FIFO-based", SchemeKind::Fifo),
        ("General bal.", SchemeKind::GeneralBalance),
    ] {
        let avg: f64 = NAMES
            .iter()
            .map(|b| lab.stats(b, Machine::Clustered, scheme).comms_per_inst())
            .sum::<f64>()
            / NAMES.len() as f64;
        let _ = writeln!(comm, "- {label}: {avg:.3} communications/instruction");
    }
    fig.body
        .push_str("\nCommunication comparison (§3.9: 0.162 vs 0.042 in the paper):\n\n");
    fig.body.push_str(&comm);
    fig
}

// ---------------------------------------------------------------------
// Ablations (claims made in the text)
// ---------------------------------------------------------------------

/// §3.8 claim: general balance performs the same with one bus per
/// direction.
pub fn ablate_buses(lab: &mut Lab) -> Figure {
    speedup_figure(
        lab,
        "ablate_buses",
        "Ablation: general balance with 3 vs 1 buses per direction (§3.8)",
        &[
            ("3 buses", Machine::Clustered, SchemeKind::GeneralBalance),
            ("1 bus", Machine::OneBus, SchemeKind::GeneralBalance),
        ],
        &NAMES,
        Mean::Harmonic,
    )
}

/// §3.5 claim: metric I1 alone performs close to the I1+I2 combination.
/// This ablation runs outside the [`Lab`] cache because it needs
/// custom-configured schemes.
pub fn ablate_imbalance(lab: &mut Lab) -> Figure {
    use dca_sim::Simulator;
    use dca_steer::{ImbalanceConfig, ImbalanceMetric, NonSliceBalance, SliceKind};

    let mut t = Table::new(&["benchmark", "I1 only", "I2 only", "combined"]);
    let mut sums = [0.0f64; 3];
    let metrics = [
        ImbalanceMetric::I1Only,
        ImbalanceMetric::I2Only,
        ImbalanceMetric::Combined,
    ];
    let max = lab.opts().max_insts;
    ensure_series(lab, &[], &NAMES, true);
    let ipcs = suite_parallel(lab, |_, w| {
        metrics.map(|metric| {
            let mut scheme = NonSliceBalance::with_config(
                SliceKind::LdSt,
                ImbalanceConfig {
                    metric,
                    ..ImbalanceConfig::default()
                },
            );
            Simulator::new(&Machine::Clustered.config(), &w.program, w.memory.clone())
                .run(&mut scheme, max)
                .ipc()
        })
    });
    for (bench, by_metric) in ipcs {
        let base_ipc = lab.base(bench).ipc();
        let mut row = vec![bench.to_string()];
        for (k, ipc) in by_metric.into_iter().enumerate() {
            let sp = (ipc / base_ipc - 1.0) * 100.0;
            sums[k] += sp;
            row.push(format!("{sp:.1}"));
        }
        t.row(&row);
    }
    let mut mean_row = vec!["mean".to_string()];
    for s in sums {
        mean_row.push(format!("{:.1}", s / NAMES.len() as f64));
    }
    t.row(&mean_row);
    Figure {
        id: "ablate_imbalance",
        title: "Ablation: imbalance metrics I1 / I2 / combined (§3.5)".into(),
        body: format!(
            "Speed-up (%) of LdSt non-slice balance steering by imbalance metric.\n\n{}",
            t.to_markdown()
        ),
        timing: None,
    }
}

/// §3.7 design point: the criticality threshold adapts towards ~50% of
/// instructions in critical slices.
pub fn ablate_threshold(lab: &mut Lab) -> Figure {
    use dca_sim::Simulator;
    use dca_steer::{PriorityConfig, PrioritySliceBalance, SliceKind};

    let mut t = Table::new(&["benchmark", "final threshold", "critical fraction (window)"]);
    let max = lab.opts().max_insts;
    for (bench, (threshold, critical)) in suite_parallel(lab, |_, w| {
        let mut scheme =
            PrioritySliceBalance::with_config(SliceKind::LdSt, PriorityConfig::default());
        let _ = Simulator::new(&Machine::Clustered.config(), &w.program, w.memory.clone())
            .run(&mut scheme, max);
        (scheme.threshold(), scheme.critical_percent())
    }) {
        t.row(&[
            bench.to_string(),
            threshold.to_string(),
            format!("{critical:.0}%"),
        ]);
    }
    Figure {
        id: "ablate_threshold",
        title: "Ablation: adaptive criticality threshold (§3.7)".into(),
        body: t.to_markdown(),
        timing: None,
    }
}

/// Wire-delay sensitivity: the paper's whole premise is that
/// inter-cluster bypasses cost one extra cycle. This sweep shows how
/// the best scheme (general balance) degrades as that wire delay grows,
/// and that the naive partitioning is insensitive (it never
/// communicates).
pub fn ablate_copy_latency(lab: &mut Lab) -> Figure {
    let latencies = [1u32, 2, 4, 8];
    let machines: Vec<Machine> = latencies
        .iter()
        .map(|&lat| {
            let mut cfg = Machine::Clustered.config();
            cfg.copy_latency = lat;
            lab.register_machine(cfg)
        })
        .collect();
    let mut header = vec!["benchmark".to_string()];
    header.extend(latencies.iter().map(|l| format!("{l} cycle(s)")));
    let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    let mut sums = vec![0.0f64; latencies.len()];
    for (bench, sps) in custom_speedups(lab, &machines, SchemeKind::GeneralBalance) {
        let mut row = vec![bench.to_string()];
        for (k, sp) in sps.into_iter().enumerate() {
            sums[k] += sp;
            row.push(format!("{sp:.1}"));
        }
        t.row(&row);
    }
    let mut mean_row = vec!["mean".to_string()];
    for s in &sums {
        mean_row.push(format!("{:.1}", s / NAMES.len() as f64));
    }
    t.row(&mean_row);
    Figure {
        id: "ablate_copy_latency",
        title: "Ablation: inter-cluster bypass latency (wire-delay premise, §1/§2)".into(),
        body: format!(
            "Speed-up (%) of general balance steering over the base machine as \
             the inter-cluster bypass latency grows. The paper assumes 1 cycle; \
             steering quality matters *more* as wires get slower — the gap to \
             the naive partitioning shrinks but stays positive while \
             communications are rare enough.\n\n{}",
            t.to_markdown()
        ),
        timing: None,
    }
}

/// Per-cluster issue width sweep: how much of the upper bound's
/// advantage is raw width versus the absence of communication.
pub fn ablate_issue_width(lab: &mut Lab) -> Figure {
    let widths = [2u32, 4, 8];
    let machines: Vec<Machine> = widths
        .iter()
        .map(|&iw| {
            let mut cfg = Machine::Clustered.config();
            cfg.issue_width = dca_sim::per_cluster(&[iw, iw]);
            lab.register_machine(cfg)
        })
        .collect();
    let mut header = vec!["benchmark".to_string()];
    header.extend(widths.iter().map(|w| format!("{w}+{w} wide")));
    header.push("UB 8-wide".into());
    let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    let mut sums = vec![0.0f64; widths.len() + 1];
    ensure_series(
        lab,
        &[("", Machine::UpperBound, SchemeKind::Naive)],
        &NAMES,
        true,
    );
    for (bench, sps) in custom_speedups(lab, &machines, SchemeKind::GeneralBalance) {
        let mut row = vec![bench.to_string()];
        for (k, sp) in sps.into_iter().enumerate() {
            sums[k] += sp;
            row.push(format!("{sp:.1}"));
        }
        let ub = lab.speedup(bench, Machine::UpperBound, SchemeKind::Naive);
        sums[widths.len()] += ub;
        row.push(format!("{ub:.1}"));
        t.row(&row);
    }
    let mut mean_row = vec!["mean".to_string()];
    for s in &sums {
        mean_row.push(format!("{:.1}", s / NAMES.len() as f64));
    }
    t.row(&mean_row);
    Figure {
        id: "ablate_issue_width",
        title: "Ablation: per-cluster issue width under general balance".into(),
        body: format!(
            "Speed-up (%) over the base machine. 4+4 is the paper's clustered \
             machine; the unified 8-wide upper bound shows what removing the \
             communication penalty (not just adding width) buys.\n\n{}",
            t.to_markdown()
        ),
        timing: None,
    }
}

/// Instruction-window (ROB) sweep on the paper's clustered machine.
pub fn ablate_window(lab: &mut Lab) -> Figure {
    let sizes = [32u32, 64, 128];
    let machines: Vec<Machine> = sizes
        .iter()
        .map(|&rob| {
            let mut cfg = Machine::Clustered.config();
            cfg.rob_size = rob;
            lab.register_machine(cfg)
        })
        .collect();
    let mut header = vec!["benchmark".to_string()];
    header.extend(sizes.iter().map(|s| format!("ROB {s}")));
    let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    let mut sums = vec![0.0f64; sizes.len()];
    for (bench, sps) in custom_speedups(lab, &machines, SchemeKind::GeneralBalance) {
        let mut row = vec![bench.to_string()];
        for (k, sp) in sps.into_iter().enumerate() {
            sums[k] += sp;
            row.push(format!("{sp:.1}"));
        }
        t.row(&row);
    }
    let mut mean_row = vec!["mean".to_string()];
    for s in &sums {
        mean_row.push(format!("{:.1}", s / NAMES.len() as f64));
    }
    t.row(&mean_row);
    Figure {
        id: "ablate_window",
        title: "Ablation: instruction window size (Table 2's 64 in-flight)".into(),
        body: format!(
            "Speed-up (%) of general balance over the (ROB-64) base machine as \
             the window grows. Both clusters share the window; the paper fixes \
             it at 64 in-flight instructions.\n\n{}",
            t.to_markdown()
        ),
        timing: None,
    }
}

/// Register-file port sweep: §2 says copies compete for register-file
/// ports like any other instruction; Table 2 gives no port counts, so
/// the reproduction defaults to unconstrained ports. This sweep shows
/// what the claim costs if ports are scarce.
pub fn ablate_rf_ports(lab: &mut Lab) -> Figure {
    // (read, write) ports per cluster; 0 = unconstrained.
    let configs: [(u32, u32, &str); 4] =
        [(0, 0, "unconstrained"), (8, 4, "8r4w"), (6, 3, "6r3w"), (4, 2, "4r2w")];
    let machines: Vec<Machine> = configs
        .iter()
        .map(|&(r, wr, _)| {
            let mut cfg = Machine::Clustered.config();
            cfg.rf_read_ports = dca_sim::per_cluster(&[r, r]);
            cfg.rf_write_ports = dca_sim::per_cluster(&[wr, wr]);
            lab.register_machine(cfg)
        })
        .collect();
    let mut header = vec!["benchmark".to_string()];
    header.extend(configs.iter().map(|&(_, _, l)| l.to_string()));
    let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    let mut sums = vec![0.0f64; configs.len()];
    for (bench, sps) in custom_speedups(lab, &machines, SchemeKind::GeneralBalance) {
        let mut row = vec![bench.to_string()];
        for (k, sp) in sps.into_iter().enumerate() {
            sums[k] += sp;
            row.push(format!("{sp:.1}"));
        }
        t.row(&row);
    }
    let mut mean_row = vec!["mean".to_string()];
    for s in &sums {
        mean_row.push(format!("{:.1}", s / NAMES.len() as f64));
    }
    t.row(&mean_row);
    Figure {
        id: "ablate_rf_ports",
        title: "Ablation: register-file ports per cluster (§2's copy-competition claim)".into(),
        body: format!(
            "Speed-up (%) of general balance over the base machine as register-\n\
             file ports shrink (reads/writes per cluster per cycle, consumed at\n\
             issue; copies read in the source cluster and write in the\n\
             destination cluster). 8r4w matches the 4-wide issue demand;\n\
             tighter configurations throttle copies and computation alike.\n\n{}",
            t.to_markdown()
        ),
        timing: None,
    }
}

// ---------------------------------------------------------------------
// Sampled-simulation report (DESIGN.md §7)
// ---------------------------------------------------------------------

/// The run-set of the sampling report: one benchmark × {Base,
/// Clustered} × {Naive, GeneralBalance} — the acceptance quartet of the
/// paper-scale sampling work (ISSUE 2).
const SAMPLING_BENCH: &str = "compress";
const SAMPLING_SERIES: [(&str, Machine, SchemeKind); 4] = [
    ("Base / naive", Machine::Base, SchemeKind::Naive),
    ("Base / general bal.", Machine::Base, SchemeKind::GeneralBalance),
    ("Clustered / naive", Machine::Clustered, SchemeKind::Naive),
    ("Clustered / general bal.", Machine::Clustered, SchemeKind::GeneralBalance),
];

/// The stateful scheme whose steering-state warm-up delta the report
/// quantifies (slice-id tables rebuilt at decode time).
const WARM_STEERING_SCHEME: SchemeKind = SchemeKind::LdStSliceBalance;

/// Sampling methodology report: sampled IPC with interval count and
/// standard error for the acceptance quartet, the adaptive-budget
/// outcome per combination, and the steering-state warm-up delta for
/// one stateful scheme.
///
/// Everything in the report body is deterministic — byte-identical
/// across invocations, worker schedules and store temperature. The
/// wall-clock rate lines (fast-forward/detailed rates, store hits and
/// the end-to-end speed-up over an extrapolated straight pass) go into
/// the `results/sampling.timing` footer instead.
///
/// At `--scale paper` this is the paper's full 100M-instruction
/// operating point; at other scales (or without sampling) it reports
/// the straight runs and says so. When the `SAMPLING_JSON` environment
/// variable names a file, the machine-readable summary is also written
/// there (CI records it as `BENCH_sampling.json`).
pub fn sampling(lab: &mut Lab) -> Figure {
    ensure_series(lab, &SAMPLING_SERIES, &[SAMPLING_BENCH], true);
    let opts = lab.opts();
    let sampled = opts.sampling.is_some();

    let mut t = Table::new(&[
        "machine / scheme",
        "IPC",
        "intervals",
        "interval IPC (mean ± stderr)",
        "speed-up vs base (%)",
    ]);
    let base = lab.stats(SAMPLING_BENCH, Machine::Base, SchemeKind::Naive);
    for &(label, machine, scheme) in &SAMPLING_SERIES {
        let s = lab.stats(SAMPLING_BENCH, machine, scheme);
        let (intervals, interval_ipc) = match lab.sample_info(SAMPLING_BENCH, machine, scheme) {
            Some(info) => (
                format!(
                    "{}/{}{}",
                    info.intervals,
                    info.budget,
                    if info.early_stop { " (early stop)" } else { "" }
                ),
                info.ipc_text(),
            ),
            None => ("1 (unsampled)".into(), format!("{:.3}", s.ipc())),
        };
        t.row(&[
            label.to_string(),
            format!("{:.3}", s.ipc()),
            intervals,
            interval_ipc,
            format!("{:+.1}", s.speedup_over(&base)),
        ]);
    }

    let mut body = String::new();
    let _ = writeln!(
        body,
        "Checkpointed sampled simulation of `{SAMPLING_BENCH}` (DESIGN.md §7/§8):\n\
         the dynamic window is fast-forwarded functionally with a checkpoint\n\
         every `period` instructions; each checkpoint seeds one measured\n\
         interval (functional cache/predictor warming, then detailed\n\
         simulation), and intervals of all combinations fan across the\n\
         worker pool. Reported IPC is the ratio of summed committed\n\
         instructions to summed cycles over the merged intervals.\n"
    );
    if let Some(s) = opts.sampling {
        let stop = match s.target_stderr {
            Some(t) => format!(
                "adaptive early exit at 95% CI half-width ≤ {t} IPC (min 2 intervals)"
            ),
            None => "fixed full-budget intervals".to_string(),
        };
        let warmth = match s.warming {
            Warming::Continuous => "continuous warming (every interval starts from its \
                                    checkpoint's restored uarch snapshot; zero detached-warming \
                                    instructions)"
                .to_string(),
            Warming::Detached => format!("detached warming ({} insts per interval)", s.warmup),
        };
        let _ = writeln!(
            body,
            "Parameters: window {} insts, period {}, detailed interval {},\n{warmth},\n{stop}.\n",
            opts.max_insts, s.period, s.interval
        );
    } else {
        let _ = writeln!(
            body,
            "Sampling inactive at this scale — straight detailed runs of at\n\
             most {} instructions are reported.\n",
            opts.max_insts
        );
    }
    let _ = writeln!(body, "{}", t.to_markdown());

    // Warming-transient delta (the acceptance measurement of the
    // continuous-warming work, DESIGN.md §9): one combination measured
    // at both warming operating points, full fixed budget over the
    // parent's checkpoint stream. Two things differ between the sides:
    // the microarchitectural state intervals start from (the
    // transient proper — dominant; the window-matched control is the
    // bit-identical equivalence suite) and, inherently, the measured
    // windows themselves (detached measures [seq+warmup, …), having
    // consumed its warming replay; continuous measures [seq, …) —
    // a `warmup`-per-`period` shift). The delta is the end-to-end
    // movement of the reported number between the two modes.
    // Deterministic, so it lives in the report body.
    let mut warm_json = String::new();
    if sampled {
        let warming_side = |warming: Warming, parent: &Lab| {
            let mut o = opts.clone();
            o.warm_steering = false;
            if let Some(s) = o.sampling.as_mut() {
                s.target_stderr = None;
                s.warming = warming;
            }
            let mut l = Lab::new(o);
            l.adopt_from(parent);
            l.stats(SAMPLING_BENCH, Machine::Clustered, SchemeKind::GeneralBalance)
        };
        let (detached, continuous) = (
            warming_side(Warming::Detached, lab),
            warming_side(Warming::Continuous, lab),
        );
        let tdelta = (continuous.ipc() / detached.ipc() - 1.0) * 100.0;
        let _ = writeln!(
            body,
            "Warming transient (`--warming`): {} on the clustered machine measures\n\
             {:.3} IPC with detached warming and {:.3} IPC with continuous\n\
             (snapshot-restored) warming ({:+.2}%). Detached intervals replay a\n\
             bounded warming window into cold caches, so state older than the\n\
             window is lost; continuous warming carries the whole stream prefix\n\
             into every interval and removes that bias (DESIGN.md §9). The two\n\
             modes necessarily measure windows offset by the warmup replay\n\
             (detached starts at checkpoint+warmup), so this delta is the\n\
             end-to-end movement between the operating points; the\n\
             window-matched control is the bit-identical warming-equivalence\n\
             suite.\n",
            SchemeKind::GeneralBalance.label(),
            detached.ipc(),
            continuous.ipc(),
            tdelta,
        );
        let _ = write!(
            warm_json,
            ",\n  \"warming_transient\": {{\"scheme\": \"{}\", \"detached_ipc\": {:.4}, \
             \"continuous_ipc\": {:.4}, \"delta_pct\": {:.3}}}",
            SchemeKind::GeneralBalance.name(),
            detached.ipc(),
            continuous.ipc(),
            tdelta,
        );
    }

    // Steering-state warm-up delta (ROADMAP item): one stateful scheme
    // measured with cold versus functionally warmed slice tables. Both
    // sides run the full fixed interval budget — never the adaptive
    // early exit — so the delta compares identical measured windows
    // and is purely the table-warmth effect. The comparison is only
    // meaningful under *detached* warming (the tables ride on its
    // replay window), so both sides pin that mode. Deterministic, so
    // it lives in the report body.
    if sampled {
        let side = |warm_steering: bool, parent: &Lab| {
            let mut o = opts.clone();
            o.warm_steering = warm_steering;
            if let Some(s) = o.sampling.as_mut() {
                s.target_stderr = None;
                s.warming = Warming::Detached;
            }
            let mut l = Lab::new(o);
            // Reuse the parent's workloads and checkpoint stream: the
            // side measurement must never pay a second fast-forward,
            // store or no store.
            l.adopt_from(parent);
            l.stats(SAMPLING_BENCH, Machine::Clustered, WARM_STEERING_SCHEME)
        };
        let (cold, warm) = (side(false, lab), side(true, lab));
        let delta = (warm.ipc() / cold.ipc() - 1.0) * 100.0;
        let _ = writeln!(
            body,
            "Steering-state warm-up (`--warm-steering`): {} with cold slice\n\
             tables {:.3} IPC, with tables rebuilt during functional warming\n\
             {:.3} IPC ({:+.2}%). Slice tables relearn within an interval, so\n\
             the delta bounds the per-interval cold-table transient; FIFO\n\
             occupancy and imbalance windows are issue-/cycle-coupled timing\n\
             state and cannot be reconstructed from the functional stream\n\
             (DESIGN.md §8).\n",
            WARM_STEERING_SCHEME.label(),
            cold.ipc(),
            warm.ipc(),
            delta,
        );
        let _ = write!(
            warm_json,
            ",\n  \"warm_steering\": {{\"scheme\": \"{}\", \"cold_ipc\": {:.4}, \"warm_ipc\": {:.4}, \"delta_pct\": {:.3}}}",
            WARM_STEERING_SCHEME.name(),
            cold.ipc(),
            warm.ipc(),
            delta,
        );
    }

    // Wall-clock rates and end-to-end economics: nondeterministic by
    // nature, so they go to the `.timing` footer, never the report.
    let mut timing = None;
    let mut json_extra = String::new();
    if sampled {
        let ff = lab
            .fast_forward_info(SAMPLING_BENCH)
            .expect("sampled run fast-forwarded");
        let (mut det_insts, mut det_secs, mut warm_insts, mut warm_secs) =
            (0u64, 0.0f64, 0u64, 0.0f64);
        let mut stored_intervals = 0u64;
        let (mut restored, mut early_stops) = (0u64, 0u64);
        for &(_, machine, scheme) in &SAMPLING_SERIES {
            let info = lab
                .sample_info(SAMPLING_BENCH, machine, scheme)
                .expect("sampled run recorded");
            det_insts += info.detailed_insts;
            det_secs += info.detailed_secs;
            warm_insts += info.warmed_insts;
            warm_secs += info.warm_secs;
            stored_intervals += info.from_store;
            restored += info.restored_snapshots;
            early_stops += u64::from(info.early_stop);
        }
        let ff_rate = ff.insts as f64 / ff.secs.max(1e-9);
        let mut foot = String::new();
        let _ = writeln!(
            foot,
            "Wall-clock footer of results/sampling.md (regenerated every run;\n\
             deliberately outside the byte-identical report).\n"
        );
        let mut rates = Table::new(&["stage", "instructions", "seconds", "insts/sec"]);
        rates.row(&[
            format!(
                "functional fast-forward{}",
                if ff.from_store { " (store hit)" } else { "" }
            ),
            ff.executed_insts().to_string(),
            format!("{:.2}", ff.secs),
            if ff.from_store {
                "-".into()
            } else {
                format!("{ff_rate:.2e}")
            },
        ]);
        rates.row(&[
            "functional warming".into(),
            warm_insts.to_string(),
            format!("{warm_secs:.2}"),
            "-".into(),
        ]);
        let det_rate = det_insts as f64 / det_secs.max(1e-9);
        rates.row(&[
            "detailed (measured)".into(),
            det_insts.to_string(),
            format!("{det_secs:.2}"),
            if det_secs > 0.0 {
                format!("{det_rate:.2e}")
            } else {
                "-".into()
            },
        ]);
        let _ = writeln!(foot, "{}", rates.to_markdown());
        if stored_intervals > 0 {
            let _ = writeln!(
                foot,
                "{stored_intervals} merged intervals were served from the store \
                 ({}).",
                opts.store_dir
                    .as_deref()
                    .map_or("store dir unknown".into(), |p| p.display().to_string())
            );
        }
        // Session counters (PR 4/5 observables, now first-class in the
        // metrics registry): snapshot restores and adaptive early stops
        // come from the per-combination sample diagnostics; lock
        // elections from the process-wide registry (they are per
        // process, not per combination).
        let m = dca_obs::metrics();
        let _ = writeln!(
            foot,
            "Counters: {restored} restored snapshots, {early_stops}/{} combinations\n\
             early-stopped, {} lock elections won / {} lost this process.",
            SAMPLING_SERIES.len(),
            m.lock_elections_won_total.get(),
            m.lock_elections_lost_total.get(),
        );
        if det_secs > 0.0 {
            // A straight detailed pass would simulate the whole window
            // for every combination at the measured detailed rate;
            // compare against the recorded serial-equivalent cost of
            // the sampled runs (fast-forward + warming + detailed,
            // summed over workers) — not this invocation's wall clock,
            // which is ~0 whenever earlier figures already ensured
            // these combinations.
            let extrapolated = SAMPLING_SERIES.len() as f64 * ff.insts as f64 / det_rate;
            let sampled_secs = ff.secs + warm_secs + det_secs;
            let speedup = extrapolated / sampled_secs.max(1e-9);
            let _ = writeln!(
                foot,
                "Sampled cost (serial-equivalent): {sampled_secs:.1}s for {} combinations; a\n\
                 straight detailed pass over the same windows extrapolates to\n\
                 {extrapolated:.0}s (×{speedup:.0} speed-up).",
                SAMPLING_SERIES.len()
            );
            let _ = write!(
                json_extra,
                ",\n  \"detailed\": {{\"insts\": {det_insts}, \"secs\": {det_secs:.3}, \"per_sec\": {det_rate:.1}}},\n  \
                 \"warm_secs\": {warm_secs:.3},\n  \
                 \"sampled_serial_secs\": {sampled_secs:.3},\n  \
                 \"extrapolated_full_secs\": {extrapolated:.1},\n  \
                 \"speedup_vs_full\": {speedup:.1}",
            );
        } else {
            let _ = writeln!(
                foot,
                "No detailed simulation ran this invocation — every merged\n\
                 interval came from the warm store."
            );
        }
        let _ = write!(
            json_extra,
            ",\n  \"fast_forward\": {{\"insts\": {}, \"executed_insts\": {}, \"from_store\": {}, \"secs\": {:.3}}},\n  \
             \"store\": {{\"enabled\": {}, \"intervals_from_store\": {stored_intervals}}},\n  \
             \"counters\": {{\"restored_snapshots\": {restored}, \"early_stops\": {early_stops}, \
             \"lock_elections_won\": {}, \"lock_elections_lost\": {}}}",
            ff.insts,
            ff.executed_insts(),
            ff.from_store,
            ff.secs,
            opts.store_dir.is_some(),
            dca_obs::metrics().lock_elections_won_total.get(),
            dca_obs::metrics().lock_elections_lost_total.get(),
        );
        timing = Some(foot);
    }

    if let Ok(path) = std::env::var("SAMPLING_JSON") {
        if !path.is_empty() {
            let mut combos = String::new();
            for (k, &(label, machine, scheme)) in SAMPLING_SERIES.iter().enumerate() {
                let s = lab.stats(SAMPLING_BENCH, machine, scheme);
                let (n, budget, early, stderr) = lab
                    .sample_info(SAMPLING_BENCH, machine, scheme)
                    .map_or((1, 1, false, 0.0), |i| {
                        (i.intervals, i.budget, i.early_stop, i.ipc_stderr)
                    });
                let _ = write!(
                    combos,
                    "{}\n    {{\"label\": \"{label}\", \"ipc\": {:.4}, \"intervals\": {n}, \
                     \"budget\": {budget}, \"early_stop\": {early}, \"ipc_stderr\": {stderr:.4}}}",
                    if k == 0 { "" } else { "," },
                    s.ipc()
                );
            }
            let target = opts
                .sampling
                .and_then(|s| s.target_stderr)
                .map_or("null".to_string(), |t| format!("{t}"));
            let json = format!(
                "{{\n  \"benchmark\": \"{SAMPLING_BENCH}\",\n  \"sampled\": {sampled},\n  \
                 \"window_insts\": {},\n  \"target_stderr\": {target},\n  \
                 \"combos\": [{combos}\n  ]{json_extra}{warm_json}\n}}\n",
                opts.max_insts
            );
            match std::fs::write(&path, json) {
                Ok(()) => dca_obs::progress::info(format!("[lab] wrote {path}")),
                Err(e) => {
                    dca_obs::progress::warn(format!("[lab] could not write {path}: {e}"))
                }
            }
        }
    }

    Figure {
        id: "sampling",
        title: "Sampled simulation at the paper's operating point (DESIGN.md §7)".into(),
        body,
        timing,
    }
}

/// Scaling sweep beyond the paper's two-cluster machine: homogeneous
/// N ∈ {2, 4, 8} plus the `hetero4` preset (the paper pair flanked by
/// two narrow satellites on a line topology).
///
/// Deliberately *not* part of [`all`]: the default `figures` run
/// reproduces the paper's two-cluster evaluation, and this sweep
/// multiplies the run-set by 4 machines × 3 schemes. It is its own
/// artefact (`figures nclusters`), exercised by the CI `nclusters`
/// smoke job.
pub fn nclusters(lab: &mut Lab) -> Figure {
    let machines: [(&str, Machine); 4] = [
        ("homo2", Machine::NClusters(2)),
        ("homo4", Machine::NClusters(4)),
        ("homo8", Machine::NClusters(8)),
        ("hetero4", Machine::Hetero4),
    ];
    let schemes: [(&str, SchemeKind); 3] = [
        ("modulo", SchemeKind::Modulo),
        ("balance", SchemeKind::GeneralBalance),
        ("fifo", SchemeKind::Fifo),
    ];
    let mut runs: Vec<(&str, Machine, SchemeKind)> = Vec::new();
    for &bench in &NAMES {
        for &(_, m) in &machines {
            for &(_, s) in &schemes {
                runs.push((bench, m, s));
            }
        }
    }
    lab.ensure(&runs);

    let mut body = String::new();
    let _ = writeln!(
        body,
        "IPC scaling as clusters are added while the paper's Table 2 front\n\
         end is held fixed. `homoN` is N copies of the paper's cluster on a\n\
         line topology; `hetero4` flanks the paper pair with two narrow\n\
         satellites. Speed-ups are % over the two-cluster machine under the\n\
         *same* scheme, so each column isolates what the extra clusters buy\n\
         (or cost, once communication outweighs the added issue slots).\n"
    );

    // Per-benchmark detail under the balance scheme.
    let mut headers = vec!["benchmark".to_string(), "homo2 IPC".to_string()];
    headers.extend(machines.iter().skip(1).map(|&(l, _)| format!("{l} (%)")));
    let mut t = Table::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());
    for &bench in &NAMES {
        let base = lab.stats(bench, machines[0].1, SchemeKind::GeneralBalance);
        let mut row = vec![bench.to_string(), format!("{:.3}", base.ipc())];
        for &(_, m) in machines.iter().skip(1) {
            let s = lab.stats(bench, m, SchemeKind::GeneralBalance);
            row.push(format!("{:.1}", s.speedup_over(&base)));
        }
        t.row(&row);
    }
    let _ = writeln!(body, "Per benchmark, balance scheme:\n\n{}", t.to_markdown());

    // Scheme × machine summary: suite H-mean speed-up over homo2 under
    // the same scheme, plus communications per instruction.
    let mut headers = vec!["scheme".to_string()];
    headers.extend(machines.iter().skip(1).map(|&(l, _)| format!("{l} (%)")));
    headers.push("homo2 comm/i".into());
    headers.push("homo8 comm/i".into());
    let mut summary = Table::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());
    let mut bars = Vec::new();
    for &(label, scheme) in &schemes {
        let mut row = vec![label.to_string()];
        for &(mlabel, m) in machines.iter().skip(1) {
            let sps: Vec<f64> = NAMES
                .iter()
                .map(|&bench| {
                    let base = lab.stats(bench, machines[0].1, scheme);
                    lab.stats(bench, m, scheme).speedup_over(&base)
                })
                .collect();
            let mean = Mean::Harmonic.of_percents(&sps);
            row.push(format!("{mean:.1}"));
            if scheme == SchemeKind::GeneralBalance {
                bars.push((mlabel.to_string(), mean));
            }
        }
        for &m in &[machines[0].1, machines[2].1] {
            let mean: f64 = NAMES
                .iter()
                .map(|&bench| lab.stats(bench, m, scheme).comms_per_inst())
                .sum::<f64>()
                / NAMES.len() as f64;
            row.push(format!("{mean:.3}"));
        }
        summary.row(&row);
    }
    let _ = writeln!(
        body,
        "Suite H-mean speed-up over homo2, same scheme:\n\n{}",
        summary.to_markdown()
    );
    let _ = writeln!(
        body,
        "```\nbalance H-mean over homo2:\n{}```",
        ascii_bars(&bars, 40)
    );

    Figure {
        id: "nclusters",
        title: "Cluster-count scaling beyond the paper's two-cluster machine".into(),
        body,
        timing: None,
    }
}

/// Looks up a figure generator by its artefact id.
pub fn by_name(name: &str) -> Option<fn(&mut Lab) -> Figure> {
    Some(match name {
        "table1" => table1,
        "table2" => table2,
        "fig03" => fig03,
        "fig04" => fig04,
        "fig05" => fig05,
        "fig06" => fig06,
        "fig07" => fig07,
        "fig08" => fig08,
        "fig09" => fig09,
        "fig11" => fig11,
        "fig12" => fig12,
        "fig13" => fig13,
        "fig14" => fig14,
        "fig15" => fig15,
        "fig16" => fig16,
        "ablate_buses" => ablate_buses,
        "ablate_imbalance" => ablate_imbalance,
        "ablate_threshold" => ablate_threshold,
        "ablate_copy_latency" => ablate_copy_latency,
        "ablate_issue_width" => ablate_issue_width,
        "ablate_window" => ablate_window,
        "ablate_rf_ports" => ablate_rf_ports,
        "sampling" => sampling,
        "nclusters" => nclusters,
        _ => return None,
    })
}

/// Every artefact in paper order.
pub fn all(lab: &mut Lab) -> Vec<Figure> {
    vec![
        table1(lab),
        table2(lab),
        fig03(lab),
        fig04(lab),
        fig05(lab),
        fig06(lab),
        fig07(lab),
        fig08(lab),
        fig09(lab),
        fig11(lab),
        fig12(lab),
        fig13(lab),
        fig14(lab),
        fig15(lab),
        fig16(lab),
        ablate_buses(lab),
        ablate_imbalance(lab),
        ablate_threshold(lab),
        ablate_copy_latency(lab),
        ablate_issue_width(lab),
        ablate_window(lab),
        ablate_rf_ports(lab),
        sampling(lab),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunOpts;
    use dca_workloads::Scale;

    fn tiny_lab() -> Lab {
        Lab::new(RunOpts {
            scale: Scale::Smoke,
            max_insts: 25_000,
            sampling: None,
            ..RunOpts::default()
        })
    }

    #[test]
    fn table2_reflects_config() {
        let f = table2(&mut tiny_lab());
        assert!(f.body.contains("64KB"));
        assert!(f.body.contains("96 + 96"));
        assert!(f.body.contains("3 intALU"));
    }

    #[test]
    fn fig03_runs_on_two_benchmarks_worth_of_cache() {
        // Smoke-level integration: one speed-up figure end to end on a
        // reduced bench list via the internal helper.
        let mut lab = tiny_lab();
        let fig = speedup_figure(
            &mut lab,
            "fig03",
            "test",
            &[
                ("Static", Machine::Clustered, SchemeKind::StaticLdSt),
                ("LdSt slice", Machine::Clustered, SchemeKind::LdStSlice),
            ],
            &["compress", "li"],
            Mean::Geometric,
        );
        assert!(fig.body.contains("compress"));
        assert!(fig.body.contains("G-mean"));
        // 2 benchmarks x (2 schemes + base) = 6 runs
        assert_eq!(lab.runs(), 6);
    }

    #[test]
    fn balance_figure_percentages_are_finite() {
        let mut lab = tiny_lab();
        let fig = balance_figure(
            &mut lab,
            "fig06",
            "test",
            &[("Modulo", Machine::Clustered, SchemeKind::Modulo)],
            &["compress"],
        );
        assert!(fig.body.contains("Modulo"));
        assert!(!fig.body.contains("NaN"));
    }

    #[test]
    fn figure_saves_to_disk() {
        let dir = std::env::temp_dir().join("dca-bench-test");
        let f = Figure {
            id: "table2",
            title: "t".into(),
            body: "b".into(),
            timing: Some("wall clock".into()),
        };
        let p = f.save(&dir).unwrap();
        assert!(p.exists());
        let t = dir.join("table2.timing");
        assert_eq!(std::fs::read_to_string(&t).unwrap(), "wall clock");
        std::fs::remove_file(p).ok();
        std::fs::remove_file(t).ok();
    }

    /// ISSUE 2: `results/*.md` must not depend on map iteration order
    /// or thread scheduling — two invocations of the same figure (each
    /// with a fresh lab, exercising the parallel ensure + cache merge)
    /// must produce byte-identical artefacts.
    #[test]
    fn figures_are_byte_identical_across_invocations() {
        let render = || {
            let mut lab = tiny_lab();
            let f = comm_figure(
                &mut lab,
                "fig05",
                "test",
                &[
                    ("LdSt slice", Machine::Clustered, SchemeKind::LdStSlice),
                    ("Br slice", Machine::Clustered, SchemeKind::BrSlice),
                ],
                &["compress", "li"],
                true,
            );
            format!("# {}\n\n{}", f.title, f.body)
        };
        assert_eq!(render(), render(), "comm figure must render identically");

        // ISSUE 3: the whole sampling report body is byte-identical —
        // the wall-clock rate lines moved to the `.timing` footer, so
        // no filtering is needed any more.
        let render_sampled = || {
            let mut lab = Lab::new(RunOpts {
                scale: Scale::Smoke,
                max_insts: 40_000,
                sampling: Some(crate::SampleOpts {
                    period: 10_000,
                    warmup: 1_000,
                    interval: 2_000,
                    target_stderr: None,
                    warming: crate::Warming::Continuous,
                }),
                ..RunOpts::default()
            });
            let f = sampling(&mut lab);
            assert!(f.body.contains("Clustered / general bal."));
            assert!(
                f.timing.as_deref().is_some_and(|t| t.contains("insts/sec")),
                "wall-clock rates live in the timing footer"
            );
            assert!(
                !f.body.contains("insts/sec"),
                "no wall-clock rates in the report body"
            );
            format!("# {}\n\n{}", f.title, f.body)
        };
        assert_eq!(
            render_sampled(),
            render_sampled(),
            "sampling report must render identically, whole body"
        );
    }

    #[test]
    fn mean_of_percents_matches_paper_arithmetic() {
        // A 36% mean speed-up corresponds to ratios of 1.36.
        let m = Mean::Harmonic.of_percents(&[36.0, 36.0]);
        assert!((m - 36.0).abs() < 1e-9);
        let g = Mean::Geometric.of_percents(&[0.0, 0.0]);
        assert!(g.abs() < 1e-9);
    }
}
