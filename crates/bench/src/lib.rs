//! # dca-bench — the experiment harness
//!
//! Regenerates **every table and figure** of the paper's evaluation
//! (§3) as text artefacts. Each `figNN` binary reproduces one figure;
//! `figures` runs everything and writes `results/*.md`.
//!
//! The heart of the crate is [`Lab`], which memoises simulation runs:
//! several figures share the same (benchmark, machine, scheme) runs —
//! e.g. Figure 4 (speed-ups), Figure 5 (communications) and Figure 6
//! (workload balance) all come from the same LdSt/Br slice-steering
//! simulations — so each combination is simulated exactly once per
//! invocation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dca_obs::progress;
use dca_prog::{fast_forward_with, FastForward, Program};
use dca_sim::{ContinuousWarmer, MachineDesc, SimConfig, SimStats, Simulator, Steering};
use dca_uarch::UarchSnapshot;
use dca_store::{CheckpointKey, FileKind, IntervalRecord, LockAttempt, ResultKey, Store, StoreError};
use dca_steer::{
    FifoSteering, GeneralBalance, Modulo, Naive, NonSliceBalance, PrioritySliceBalance,
    SliceBalance, SliceKind, SliceSteering, StaticPartition,
};
use dca_workloads::{Scale, Workload};

/// Which machine configuration a run uses.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Machine {
    /// The conventional base machine (no int units in the FP cluster,
    /// no bypasses) — the denominator of every speed-up.
    Base,
    /// The paper's clustered machine.
    Clustered,
    /// Clustered with one bus per direction (§3.8 ablation).
    OneBus,
    /// The 16-way upper bound ("UB arch").
    UpperBound,
    /// Homogeneous N-cluster extension of the paper machine
    /// ([`SimConfig::n_clustered`]). `NClusters(2)` is the paper's
    /// clustered machine geometry, cached/stored under its own key.
    NClusters(u8),
    /// The heterogeneous 4-cluster preset
    /// ([`dca_sim::MachineDesc::hetero4`]): the two paper clusters
    /// plus two narrow satellites on a linear topology.
    Hetero4,
    /// A custom geometry registered with [`Lab::register_machine`].
    /// The payload is the config's [`SimConfig::config_hash`]; only
    /// the registering lab can resolve it.
    Custom(u64),
}

impl Machine {
    /// The corresponding configuration.
    ///
    /// # Panics
    ///
    /// Panics on [`Machine::Custom`] (resolved through the [`Lab`]
    /// that registered it) and on an out-of-range cluster count.
    pub fn config(self) -> SimConfig {
        match self {
            Machine::Base => SimConfig::paper_base(),
            Machine::Clustered => SimConfig::paper_clustered(),
            Machine::OneBus => SimConfig::one_bus(),
            Machine::UpperBound => SimConfig::paper_upper_bound(),
            Machine::NClusters(n) => {
                SimConfig::n_clustered(usize::from(n)).unwrap_or_else(|e| panic!("{e}"))
            }
            Machine::Hetero4 => MachineDesc::hetero4()
                .apply(&SimConfig::paper_clustered())
                .expect("hetero4 preset validates"),
            Machine::Custom(h) => panic!(
                "custom machine {h:#018x} has no preset config; use the Lab that registered it"
            ),
        }
    }

    /// Parses a machine name as used on the command line.
    ///
    /// # Errors
    ///
    /// Returns the list of valid names on an unknown input.
    pub fn from_name(name: &str) -> Result<Machine, String> {
        if let Some(n) = name.strip_prefix("homo") {
            let n: u8 = n
                .parse()
                .map_err(|_| format!("bad cluster count in `{name}`"))?;
            return Ok(Machine::NClusters(n));
        }
        Ok(match name {
            "base" => Machine::Base,
            "clustered" => Machine::Clustered,
            "one-bus" | "onebus" => Machine::OneBus,
            "ub" | "upper-bound" => Machine::UpperBound,
            "hetero4" => Machine::Hetero4,
            other => {
                return Err(format!(
                    "unknown machine `{other}` (base|clustered|one-bus|ub|homo<N>|hetero4)"
                ))
            }
        })
    }

    /// Stable key for memoisation and result-store file names.
    pub fn key(self) -> String {
        match self {
            Machine::Base => "base".into(),
            Machine::Clustered => "clustered".into(),
            Machine::OneBus => "onebus".into(),
            Machine::UpperBound => "ub".into(),
            Machine::NClusters(n) => format!("homo{n}"),
            Machine::Hetero4 => "hetero4".into(),
            Machine::Custom(h) => format!("custom{h:016x}"),
        }
    }
}

/// Every steering scheme the evaluation exercises.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names mirror the paper's scheme names
pub enum SchemeKind {
    Naive,
    Modulo,
    StaticLdSt,
    LdStSlice,
    BrSlice,
    LdStNonSliceBalance,
    BrNonSliceBalance,
    LdStSliceBalance,
    BrSliceBalance,
    LdStPriority,
    BrPriority,
    GeneralBalance,
    Fifo,
}

/// All scheme kinds, in presentation order.
pub const ALL_SCHEMES: [SchemeKind; 13] = [
    SchemeKind::Naive,
    SchemeKind::Modulo,
    SchemeKind::StaticLdSt,
    SchemeKind::LdStSlice,
    SchemeKind::BrSlice,
    SchemeKind::LdStNonSliceBalance,
    SchemeKind::BrNonSliceBalance,
    SchemeKind::LdStSliceBalance,
    SchemeKind::BrSliceBalance,
    SchemeKind::LdStPriority,
    SchemeKind::BrPriority,
    SchemeKind::GeneralBalance,
    SchemeKind::Fifo,
];

impl SchemeKind {
    /// Human label used in figure rows/legends (matches the paper's).
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::Naive => "naive",
            SchemeKind::Modulo => "Modulo",
            SchemeKind::StaticLdSt => "Static (Sastry et al.)",
            SchemeKind::LdStSlice => "LdSt slice",
            SchemeKind::BrSlice => "Br slice",
            SchemeKind::LdStNonSliceBalance => "LdSt non-slice",
            SchemeKind::BrNonSliceBalance => "Br non-slice",
            SchemeKind::LdStSliceBalance => "LdSt slice bal.",
            SchemeKind::BrSliceBalance => "Br slice bal.",
            SchemeKind::LdStPriority => "LdSt p. slice",
            SchemeKind::BrPriority => "Br p. slice",
            SchemeKind::GeneralBalance => "General bal.",
            SchemeKind::Fifo => "FIFO-based",
        }
    }

    /// Instantiates the scheme (some need the program for offline
    /// analysis).
    pub fn instantiate(self, prog: &Program) -> Box<dyn Steering> {
        match self {
            SchemeKind::Naive => Box::new(Naive::new()),
            SchemeKind::Modulo => Box::new(Modulo::new()),
            SchemeKind::StaticLdSt => Box::new(StaticPartition::analyze(prog)),
            SchemeKind::LdStSlice => Box::new(SliceSteering::new(SliceKind::LdSt)),
            SchemeKind::BrSlice => Box::new(SliceSteering::new(SliceKind::Br)),
            SchemeKind::LdStNonSliceBalance => {
                Box::new(NonSliceBalance::new(SliceKind::LdSt))
            }
            SchemeKind::BrNonSliceBalance => Box::new(NonSliceBalance::new(SliceKind::Br)),
            SchemeKind::LdStSliceBalance => Box::new(SliceBalance::new(SliceKind::LdSt)),
            SchemeKind::BrSliceBalance => Box::new(SliceBalance::new(SliceKind::Br)),
            SchemeKind::LdStPriority => Box::new(PrioritySliceBalance::new(SliceKind::LdSt)),
            SchemeKind::BrPriority => Box::new(PrioritySliceBalance::new(SliceKind::Br)),
            SchemeKind::GeneralBalance => Box::new(GeneralBalance::new()),
            SchemeKind::Fifo => Box::new(FifoSteering::paper()),
        }
    }

    /// Short machine-readable name accepted by [`SchemeKind::from_name`].
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Naive => "naive",
            SchemeKind::Modulo => "modulo",
            SchemeKind::StaticLdSt => "static",
            SchemeKind::LdStSlice => "ldst-slice",
            SchemeKind::BrSlice => "br-slice",
            SchemeKind::LdStNonSliceBalance => "ldst-nonslice",
            SchemeKind::BrNonSliceBalance => "br-nonslice",
            SchemeKind::LdStSliceBalance => "ldst-slicebal",
            SchemeKind::BrSliceBalance => "br-slicebal",
            SchemeKind::LdStPriority => "ldst-priority",
            SchemeKind::BrPriority => "br-priority",
            SchemeKind::GeneralBalance => "general",
            SchemeKind::Fifo => "fifo",
        }
    }

    /// Parses a scheme name as used on the command line (the inverse of
    /// [`SchemeKind::name`]).
    ///
    /// # Errors
    ///
    /// Returns the list of valid names on an unknown input.
    pub fn from_name(name: &str) -> Result<SchemeKind, String> {
        ALL_SCHEMES
            .into_iter()
            .find(|s| s.name() == name)
            .ok_or_else(|| {
                let valid: Vec<&str> = ALL_SCHEMES.iter().map(|s| s.name()).collect();
                format!("unknown scheme `{name}` (valid: {})", valid.join("|"))
            })
    }

    fn key(self) -> String {
        format!("{self:?}")
    }
}

/// How a sampled interval's caches and branch predictor get warm
/// before measurement starts (DESIGN.md §9).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Warming {
    /// Detached functional warming: each interval replays `warmup`
    /// instructions through cold cache/predictor models before
    /// measuring (the PR 2 behaviour). Bounded warmth — state older
    /// than the warmup window is lost.
    Detached,
    /// Continuous (SMARTS-style) warming: the fast-forward pass streams
    /// every retired instruction through live cache/predictor models
    /// and each checkpoint carries a [`UarchSnapshot`]; intervals
    /// restore it and execute **zero** detached-warming instructions.
    /// The paper-scale default.
    #[default]
    Continuous,
}

impl Warming {
    /// Stable machine-readable name (the `--warming` argument).
    pub fn name(self) -> &'static str {
        match self {
            Warming::Detached => "detached",
            Warming::Continuous => "continuous",
        }
    }

    /// Parses a warming-mode name (the inverse of [`Warming::name`]).
    ///
    /// # Errors
    ///
    /// Returns the list of valid names on an unknown input.
    pub fn from_name(name: &str) -> Result<Warming, String> {
        Ok(match name {
            "detached" => Warming::Detached,
            "continuous" => Warming::Continuous,
            other => return Err(format!("unknown warming mode `{other}` (detached|continuous)")),
        })
    }
}

/// Sampled-simulation parameters (DESIGN.md §7): the run's dynamic
/// window is fast-forwarded functionally, checkpointed every `period`
/// instructions, and each checkpoint seeds one measured interval —
/// warmed per [`Warming`], then `interval` instructions of detailed
/// simulation.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SampleOpts {
    /// Distance between interval starts, in dynamic instructions.
    pub period: u64,
    /// Functional-warming instructions before each measured interval.
    /// Warming may overlap the next period — it updates only caches
    /// and the predictor, never the merged statistics.
    pub warmup: u64,
    /// Detailed (measured) instructions per interval. Must not exceed
    /// `period`, or successive measured windows would overlap and the
    /// merged counters would multiply-count instructions.
    pub interval: u64,
    /// Confidence-driven early exit (DESIGN.md §8): a combination
    /// stops drawing intervals once the 95% confidence half-width
    /// (Student-t quantile × standard error) of its per-interval IPC
    /// mean falls to or below this value (in IPC). The decision is
    /// evaluated deterministically on checkpoint-ordered prefixes with
    /// at least 2 measured intervals; the t factor keeps a lucky
    /// 2-sample variance estimate from stopping a run prematurely.
    /// `None` runs the full checkpoint budget.
    pub target_stderr: Option<f64>,
    /// Interval warming scheme. With [`Warming::Continuous`] the
    /// `warmup` budget is irrelevant — intervals start from restored
    /// snapshots and execute zero detached-warming instructions.
    pub warming: Warming,
}

impl Default for SampleOpts {
    /// 100M instructions → up to 50 intervals of 100K detailed
    /// instructions each, continuous warming (each interval starts
    /// from the restored steady-state snapshot of its checkpoint;
    /// `warmup` applies only under `--warming detached`), adaptive
    /// early exit at 0.01 IPC standard error.
    fn default() -> SampleOpts {
        SampleOpts {
            period: 2_000_000,
            warmup: 100_000,
            interval: 100_000,
            target_stderr: Some(0.01),
            warming: Warming::Continuous,
        }
    }
}

/// Harness options (scale, instruction budget, sampling, store).
#[derive(Clone, Debug)]
pub struct RunOpts {
    /// Workload scale.
    pub scale: Scale,
    /// Instruction budget per run (the paper's "100M after skipping
    /// 100M" becomes "everything the workload executes, capped here").
    pub max_insts: u64,
    /// Print progress lines to stderr.
    pub verbose: bool,
    /// When set, every [`Lab`] run is simulated by checkpointed
    /// sampling instead of one straight detailed pass.
    pub sampling: Option<SampleOpts>,
    /// Directory of the persistent checkpoint/result store
    /// (`dca-store`; DESIGN.md §8). `None` disables persistence.
    /// Sampled CLI invocations default to `.dca-store` unless
    /// `--no-store` is given; the library default is off.
    pub store_dir: Option<PathBuf>,
    /// Warm steering decode-time state (slice tables) during the
    /// functional warming of every sampled interval
    /// (`--warm-steering`; ROADMAP "steering-state warm-up").
    pub warm_steering: bool,
    /// How long the Lab waits for another process's shard lock before
    /// degrading to storeless computation (`--lock-wait-secs`; `None`
    /// keeps the store default of 120 s). CI and tests set this low so
    /// a wedged peer cannot stall a run for minutes.
    pub lock_wait_secs: Option<u64>,
    /// Staleness threshold for the store's lock-takeover and
    /// orphaned-temp sweeps (`--stale-secs`; `None` keeps the shared
    /// default of [`dca_store::lock::DEFAULT_STALE_AFTER`], 600 s).
    /// One knob for both, so the two ages cannot drift apart.
    pub stale_secs: Option<u64>,
    /// Suppress progress lines (`-q`/`--quiet`); warnings still print.
    pub quiet: bool,
    /// Write this invocation's spans as Chrome trace-event JSON here
    /// (`--trace-out`). Enables span recording.
    pub trace_out: Option<PathBuf>,
    /// Write a Prometheus text exposition of the metrics registry here
    /// (`--metrics-out`).
    pub metrics_out: Option<PathBuf>,
}

impl Default for RunOpts {
    fn default() -> RunOpts {
        RunOpts {
            scale: Scale::Default,
            max_insts: 5_000_000,
            verbose: false,
            sampling: None,
            store_dir: None,
            warm_steering: false,
            lock_wait_secs: None,
            stale_secs: None,
            quiet: false,
            trace_out: None,
            metrics_out: None,
        }
    }
}

/// Flags of the [`RunOpts::from_args`] grammar that configure the
/// *process* — persistence placement, lock patience, observability
/// sinks, verbosity — rather than the simulation. A serve daemon
/// refuses them on the wire (they belong to whoever started the
/// daemon), and both serve fronts share this one table so the
/// refusal list cannot drift from the parser. Each entry is
/// `(flag, takes_value)`.
pub const SERVER_SIDE_FLAGS: &[(&str, bool)] = &[
    ("--store-dir", true),
    ("--no-store", false),
    ("--lock-wait-secs", true),
    ("--stale-secs", true),
    ("--trace-out", true),
    ("--metrics-out", true),
    ("--verbose", false),
    ("--quiet", false),
    ("-q", false),
];

impl RunOpts {
    /// Parses harness options from command-line arguments
    /// (`--scale smoke|default|full|paper`, `--max-insts N`,
    /// `--sample-period N`, `--sample-warmup N`, `--sample-interval N`,
    /// `--target-stderr X`, `--warming detached|continuous`,
    /// `--store-dir DIR`, `--no-store`, `--lock-wait-secs N`,
    /// `--stale-secs N`,
    /// `--warm-steering`, `--verbose`, `-q`/`--quiet`,
    /// `--trace-out FILE`, `--metrics-out FILE`). Unrecognised
    /// arguments are returned for the caller.
    ///
    /// `--scale paper` selects [`Scale::Paper`], widens the default
    /// instruction budget to the paper's 100M window and turns on
    /// sampling with the [`SampleOpts`] defaults; the `--sample-*` and
    /// `--target-stderr` flags tune (or, at other scales, enable)
    /// sampling explicitly (`--target-stderr 0` disables the adaptive
    /// early exit). Sampled invocations use the persistent store at
    /// `.dca-store` unless `--store-dir` chooses another directory or
    /// `--no-store` disables it.
    ///
    /// # Panics
    ///
    /// Panics on a malformed value (unknown scale, non-numeric
    /// instruction budget).
    pub fn from_args(args: impl Iterator<Item = String>) -> (RunOpts, Vec<String>) {
        let mut opts = RunOpts::default();
        let mut rest = Vec::new();
        let mut args = args.peekable();
        let mut explicit_max = false;
        let mut no_store = false;
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => {
                    let v = args.next().unwrap_or_default();
                    opts.scale = Scale::from_name(&v).unwrap_or_else(|e| panic!("{e}"));
                }
                "--max-insts" => {
                    opts.max_insts = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--max-insts needs a number");
                    explicit_max = true;
                }
                "--sample-period" | "--sample-warmup" | "--sample-interval" => {
                    let v: u64 = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("{a} needs a number"));
                    let s = opts.sampling.get_or_insert_with(SampleOpts::default);
                    match a.as_str() {
                        "--sample-period" => {
                            assert!(v > 0, "--sample-period must be non-zero");
                            s.period = v;
                        }
                        "--sample-warmup" => s.warmup = v,
                        _ => {
                            assert!(v > 0, "--sample-interval must be non-zero");
                            s.interval = v;
                        }
                    }
                }
                "--target-stderr" => {
                    let v: f64 = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--target-stderr needs a number (IPC; 0 disables)");
                    assert!(v >= 0.0, "--target-stderr must be non-negative");
                    let s = opts.sampling.get_or_insert_with(SampleOpts::default);
                    s.target_stderr = (v > 0.0).then_some(v);
                }
                "--warming" => {
                    let v = args.next().unwrap_or_default();
                    let w = Warming::from_name(&v).unwrap_or_else(|e| panic!("{e}"));
                    opts.sampling.get_or_insert_with(SampleOpts::default).warming = w;
                }
                "--store-dir" => {
                    let v = args.next().expect("--store-dir needs a directory");
                    opts.store_dir = Some(PathBuf::from(v));
                }
                "--lock-wait-secs" => {
                    opts.lock_wait_secs = Some(
                        args.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--lock-wait-secs needs a number of seconds"),
                    );
                }
                "--stale-secs" => {
                    opts.stale_secs = Some(
                        args.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--stale-secs needs a number of seconds"),
                    );
                }
                "--no-store" => no_store = true,
                "--warm-steering" => opts.warm_steering = true,
                "--verbose" => opts.verbose = true,
                "--quiet" | "-q" => opts.quiet = true,
                "--trace-out" => {
                    let v = args.next().expect("--trace-out needs a file path");
                    opts.trace_out = Some(PathBuf::from(v));
                }
                "--metrics-out" => {
                    let v = args.next().expect("--metrics-out needs a file path");
                    opts.metrics_out = Some(PathBuf::from(v));
                }
                _ => rest.push(a),
            }
        }
        if opts.scale == Scale::Paper {
            if !explicit_max {
                opts.max_insts = Scale::PAPER_INSTS;
            }
            let _ = opts.sampling.get_or_insert_with(SampleOpts::default);
        }
        if no_store {
            opts.store_dir = None;
        } else if opts.store_dir.is_none() && opts.sampling.is_some() {
            opts.store_dir = Some(PathBuf::from(".dca-store"));
        }
        (opts, rest)
    }

    /// Applies the observability options process-wide: the progress
    /// sink's verbosity and span recording. CLI entry points call this
    /// once, before any work; library users who never call it keep the
    /// defaults (normal verbosity, tracing off).
    pub fn apply_observability(&self) {
        dca_obs::progress::set_verbosity(if self.quiet {
            dca_obs::Verbosity::Quiet
        } else if self.verbose {
            dca_obs::Verbosity::Verbose
        } else {
            dca_obs::Verbosity::Normal
        });
        if self.trace_out.is_some() {
            dca_obs::span::set_enabled(true);
        }
    }

    /// Writes the requested observability artefacts — the Chrome
    /// trace-event JSON (`--trace-out`) and the Prometheus metrics
    /// exposition (`--metrics-out`). Called once at the end of a CLI
    /// invocation; a no-op when neither flag was given. Strictly
    /// separate from `results/` report bytes.
    pub fn write_observability(&self) {
        fn write_artefact(path: &Path, what: &str, bytes: &str) {
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                let _ = std::fs::create_dir_all(parent);
            }
            match std::fs::write(path, bytes) {
                Ok(()) => dca_obs::progress::info(format!("[lab] wrote {}", path.display())),
                Err(e) => {
                    dca_obs::progress::warn(format!(
                        "[lab] could not write {what} {}: {e}",
                        path.display()
                    ));
                }
            }
        }
        if let Some(path) = &self.trace_out {
            let events = dca_obs::span::drain();
            write_artefact(path, "trace", &dca_obs::span::chrome_trace(&events));
        }
        if let Some(path) = &self.metrics_out {
            write_artefact(path, "metrics", &dca_obs::metrics().snapshot().prometheus());
        }
    }
}

/// One simulation request: `(benchmark, machine, scheme)` — the unit
/// of work [`Lab::ensure`] distributes across worker threads.
pub type Run = (&'static str, Machine, SchemeKind);

/// Diagnostics of one sampled run (per `(benchmark, machine, scheme)`
/// combination): interval count, measured volume and the dispersion of
/// the per-interval IPCs.
#[derive(Clone, Debug, Default)]
pub struct SampleInfo {
    /// Measured intervals merged into the reported statistics.
    pub intervals: u64,
    /// Checkpoints available to this combination (the full interval
    /// budget; `intervals < budget` when the adaptive early exit
    /// stopped first or trailing intervals were empty).
    pub budget: u64,
    /// `true` when the confidence-driven early exit stopped the
    /// combination before its checkpoint budget was exhausted.
    pub early_stop: bool,
    /// Intervals of the merged prefix that were served from the
    /// persistent store instead of being simulated in this process.
    pub from_store: u64,
    /// Outcomes of the merged prefix (measured or empty) that started
    /// from a restored continuously-warmed [`UarchSnapshot`] — covers
    /// every merged interval (and pairs with `warmed_insts == 0`)
    /// under [`Warming::Continuous`], 0 under [`Warming::Detached`].
    pub restored_snapshots: u64,
    /// Detailed (measured) dynamic instructions across all intervals.
    pub detailed_insts: u64,
    /// Detailed cycles across all intervals.
    pub detailed_cycles: u64,
    /// Mean of the per-interval IPCs.
    pub ipc_mean: f64,
    /// Standard error of that mean (0 with fewer than two intervals).
    pub ipc_stderr: f64,
    /// Functional-warming instructions actually executed (can be less
    /// than `intervals × warmup` where the stream ended mid-warming).
    pub warmed_insts: u64,
    /// Wall-clock seconds spent functionally warming, summed over the
    /// workers that ran this combination's intervals (0 for
    /// store-served intervals).
    pub warm_secs: f64,
    /// Wall-clock seconds spent in detailed simulation, summed over
    /// workers (≈ the serial cost of the measured intervals; 0 for
    /// store-served intervals).
    pub detailed_secs: f64,
}

impl SampleInfo {
    /// The sampled-IPC estimate as `mean ± stderr` text.
    pub fn ipc_text(&self) -> String {
        format!("{:.3} ± {:.3}", self.ipc_mean, self.ipc_stderr)
    }
}

/// Diagnostics of one benchmark's functional fast-forward pass.
#[derive(Clone, Debug)]
pub struct FastForwardInfo {
    /// Dynamic instructions the checkpoint stream covers (the whole
    /// sampled window).
    pub insts: u64,
    /// Checkpoints recorded.
    pub checkpoints: u64,
    /// Wall-clock seconds of the pass (load time when the stream came
    /// from the store).
    pub secs: f64,
    /// `true` when the stream was loaded from the persistent store
    /// instead of being recomputed.
    pub from_store: bool,
}

impl FastForwardInfo {
    /// Fast-forward instructions actually *executed* by this process —
    /// 0 on a store hit (the warm-store acceptance criterion of
    /// ISSUE 3).
    pub fn executed_insts(&self) -> u64 {
        if self.from_store {
            0
        } else {
            self.insts
        }
    }
}

/// Intervals requested per combination per adaptive scheduling round.
/// Small enough that an early-stopping combination wastes at most a
/// chunk of intervals, large enough that a 50-interval budget needs
/// only a handful of rounds.
const INTERVAL_CHUNK: usize = 8;

/// One interval of a sampled run: its detailed statistics plus
/// bookkeeping. Store-served intervals carry zero wall-clock.
#[derive(Clone, Debug)]
struct IntervalOutcome {
    stats: SimStats,
    /// Detached functional-warming instructions actually executed
    /// (always 0 under continuous warming).
    warmed: u64,
    /// Whether the interval started from a restored [`UarchSnapshot`].
    restored: bool,
    warm_secs: f64,
    detailed_secs: f64,
    from_store: bool,
}

/// Standard error of the mean of `xs` (0 with fewer than two samples).
fn stderr_of(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (var / n).sqrt()
}

/// Two-sided 95% Student-t quantiles by degrees of freedom (index =
/// df − 1); beyond the table the normal quantile is close enough.
const T95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// 95% confidence half-width of the mean of `xs`: Student-t quantile ×
/// standard error. The t factor is what keeps a lucky 2-sample
/// variance estimate from stopping a combination prematurely (t₁ ≈
/// 12.7); infinite below two samples.
fn confidence_half_width(xs: &[f64]) -> f64 {
    match xs.len() {
        0 | 1 => f64::INFINITY,
        n if n - 1 <= T95.len() => T95[n - 2] * stderr_of(xs),
        _ => 1.96 * stderr_of(xs),
    }
}

/// The deterministic early-exit rule of adaptive sampling (DESIGN.md
/// §8): the prefix used for a combination is the **shortest
/// checkpoint-ordered prefix** containing at least 2 measured
/// (non-empty) intervals whose 95% confidence half-width
/// ([`confidence_half_width`]) is ≤ `target`; without such a prefix,
/// the full budget.
///
/// Returns `Some(prefix_len)` once the decision is possible from the
/// available prefix — either the rule fired, or all `budget` intervals
/// are present — and `None` when more intervals are needed. Because
/// the rule scans prefixes from the front, its answer never changes
/// when *more* intervals become available beyond the stopping point:
/// the merged statistics are independent of worker completion order,
/// chunk sizes, and how many extra intervals a previous run left in
/// the store.
fn adaptive_prefix(
    outcomes: &[IntervalOutcome],
    budget: usize,
    target: Option<f64>,
) -> Option<usize> {
    if let Some(target) = target {
        let mut ipcs: Vec<f64> = Vec::new();
        for (i, o) in outcomes.iter().enumerate() {
            if o.stats.committed == 0 {
                continue;
            }
            ipcs.push(o.stats.ipc());
            if ipcs.len() >= 2 && confidence_half_width(&ipcs) <= target {
                return Some(i + 1);
            }
        }
    }
    (outcomes.len() >= budget).then_some(budget)
}

/// Merges the decided prefix `outcomes[..used]` into one `SimStats`
/// plus sampling diagnostics. Checkpoints whose stream ended before
/// the measured window opened contribute warming cost but no
/// statistics, exactly as in the non-adaptive harness.
fn merge_outcomes(outcomes: &[IntervalOutcome], used: usize, budget: u64) -> (SimStats, SampleInfo) {
    let mut merged = SimStats::default();
    let mut info = SampleInfo {
        budget,
        early_stop: (used as u64) < budget,
        ..SampleInfo::default()
    };
    let mut ipcs: Vec<f64> = Vec::new();
    for o in &outcomes[..used] {
        info.warmed_insts += o.warmed;
        info.warm_secs += o.warm_secs;
        if o.from_store {
            info.from_store += 1;
        }
        if o.restored {
            info.restored_snapshots += 1;
        }
        if o.stats.committed == 0 {
            continue;
        }
        ipcs.push(o.stats.ipc());
        merged.merge(&o.stats);
        info.intervals += 1;
        info.detailed_insts += o.stats.committed;
        info.detailed_cycles += o.stats.cycles;
        info.detailed_secs += o.detailed_secs;
    }
    let n = ipcs.len() as f64;
    if n > 0.0 {
        info.ipc_mean = ipcs.iter().sum::<f64>() / n;
    }
    info.ipc_stderr = stderr_of(&ipcs);
    (merged, info)
}

/// Memoising experiment driver: builds workloads once and simulates
/// each (benchmark, machine, scheme) combination at most once.
///
/// Batch interface: [`Lab::ensure`] takes a figure's whole run-set and
/// fans the missing combinations across `std::thread::scope` workers
/// (simulations are independent; the memoisation cache is merged after
/// the join), so `figures` saturates every core instead of simulating
/// one combination at a time.
///
/// With [`RunOpts::sampling`] set, a run is no longer the unit of
/// parallel work: each combination's dynamic window is fast-forwarded
/// once per benchmark (checkpointing every `period` instructions) and
/// the **sample intervals** of all requested combinations are fanned
/// across the same worker pool, then merged per combination in
/// checkpoint order (deterministic). This is what makes
/// `figures --scale paper` — 100M instructions per benchmark — run in
/// minutes instead of hours.
///
/// The memoisation cache is an ordered map, and everything rendered
/// from it iterates in key order, so repeated invocations produce
/// byte-identical artefacts (asserted by `figures::tests`; the
/// sampling report's wall-clock rate lines are the one deliberate
/// exception — its measurement rows are still byte-identical).
///
/// # Example
///
/// ```
/// use dca_bench::{Lab, Machine, RunOpts, SchemeKind};
/// use dca_workloads::Scale;
///
/// let mut lab = Lab::new(RunOpts {
///     scale: Scale::Smoke,
///     max_insts: 30_000,
///     ..RunOpts::default()
/// });
/// let s = lab.stats("li", Machine::Clustered, SchemeKind::GeneralBalance);
/// assert!(s.committed > 0);
/// ```
pub struct Lab {
    opts: RunOpts,
    workloads: HashMap<&'static str, Workload>,
    cache: BTreeMap<(String, String, String), SimStats>,
    /// Per-benchmark checkpoint streams (sampled mode only).
    ffs: HashMap<&'static str, FastForward>,
    ff_info: BTreeMap<&'static str, FastForwardInfo>,
    sample_info: BTreeMap<(String, String, String), SampleInfo>,
    /// Custom machine geometries ([`Lab::register_machine`]), keyed by
    /// [`SimConfig::config_hash`].
    custom: HashMap<u64, SimConfig>,
    /// Persistent checkpoint/result store ([`RunOpts::store_dir`]).
    store: Option<Store>,
    /// Cooperative cancellation token ([`Lab::set_cancel`]): checked
    /// between chunk-scheduling rounds, never mid-interval.
    cancel: Option<Arc<AtomicBool>>,
    /// Per-round progress callback ([`Lab::set_round_hook`]): invoked
    /// on the driving thread before each sampling round fans out.
    round_hook: Option<RoundHook>,
    /// Work attribution tally ([`Lab::work`]). Shared (same `Arc`)
    /// with labs that [`Lab::adopt_from`] this one, so side
    /// measurements a figure spawns internally are attributed to the
    /// same logical job.
    tally: Arc<WorkTally>,
}

/// Atomic work counters owned by one [`Lab`] (and the labs adopted
/// from it). Unlike the process-wide metrics registry, these
/// attribute work to *one lab*, which is what makes per-job deltas
/// exact when a serve dispatcher runs several jobs concurrently.
#[derive(Debug, Default)]
struct WorkTally {
    ff_insts: AtomicU64,
    intervals_computed: AtomicU64,
    intervals_from_store: AtomicU64,
    straight_runs: AtomicU64,
}

/// Snapshot of a lab's work counters ([`Lab::work`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkCounts {
    /// Fast-forward instructions executed (0 when every checkpoint
    /// stream came from the store).
    pub ff_insts: u64,
    /// Sample intervals simulated in detail.
    pub intervals_computed: u64,
    /// Sample intervals served from the store.
    pub intervals_from_store: u64,
    /// Straight (unsampled) detailed passes executed.
    pub straight_runs: u64,
}

impl WorkCounts {
    /// Component-wise delta against an earlier snapshot.
    pub fn since(&self, before: &WorkCounts) -> WorkCounts {
        WorkCounts {
            ff_insts: self.ff_insts - before.ff_insts,
            intervals_computed: self.intervals_computed - before.intervals_computed,
            intervals_from_store: self.intervals_from_store - before.intervals_from_store,
            straight_runs: self.straight_runs - before.straight_runs,
        }
    }

    /// Did this span of work touch a simulator at all? A warm span
    /// fast-forwarded nothing and simulated nothing — every result
    /// came from the store or a memo.
    pub fn is_warm(&self) -> bool {
        self.ff_insts == 0 && self.intervals_computed == 0 && self.straight_runs == 0
    }
}

/// A per-round progress callback (see [`Lab::set_round_hook`]).
pub type RoundHook = Box<dyn Fn(&RoundProgress) + Send>;

/// What [`Lab::ensure`] is about to do in one chunk-scheduling round,
/// handed to the hook installed with [`Lab::set_round_hook`] — the
/// attachment point for live progress streaming (`dca serve` forwards
/// these, plus the insts/sec gauges, to its subscribed clients).
#[derive(Clone, Copy, Debug)]
pub struct RoundProgress {
    /// Scheduling round number, starting at 1.
    pub round: u64,
    /// Intervals fanning out in this round.
    pub batch: u64,
    /// Worst-case intervals still to simulate after this round's batch
    /// was drawn (every undecided run exhausts its budget).
    pub remaining: u64,
    /// Live sampling throughput, milli-intervals per second (the
    /// `intervals_per_sec_milli` gauge; 0 until the first round lands).
    pub intervals_per_sec_milli: u64,
}

impl Lab {
    /// Creates a lab.
    pub fn new(opts: RunOpts) -> Lab {
        let store = opts.store_dir.as_ref().map(|dir| {
            let mut s = Store::open(dir);
            if let Some(secs) = opts.lock_wait_secs {
                s = s.with_lock_wait(Duration::from_secs(secs));
            }
            if let Some(secs) = opts.stale_secs {
                s = s.with_stale_after(Duration::from_secs(secs));
            }
            s
        });
        Lab {
            opts,
            workloads: HashMap::new(),
            cache: BTreeMap::new(),
            ffs: HashMap::new(),
            ff_info: BTreeMap::new(),
            sample_info: BTreeMap::new(),
            custom: HashMap::new(),
            store,
            cancel: None,
            round_hook: None,
            tally: Arc::new(WorkTally::default()),
        }
    }

    /// Snapshot of the work this lab (and every lab adopted from it)
    /// has performed: fast-forward instructions, intervals computed
    /// fresh vs served from the store, straight detailed passes.
    /// Deltas of two snapshots attribute work to a span exactly, even
    /// while other labs run concurrently in the same process — this
    /// is what the serve dispatcher reports per job.
    pub fn work(&self) -> WorkCounts {
        WorkCounts {
            ff_insts: self.tally.ff_insts.load(Ordering::Relaxed),
            intervals_computed: self.tally.intervals_computed.load(Ordering::Relaxed),
            intervals_from_store: self.tally.intervals_from_store.load(Ordering::Relaxed),
            straight_runs: self.tally.straight_runs.load(Ordering::Relaxed),
        }
    }

    /// Installs a cooperative cancellation token (`None` clears it).
    ///
    /// [`Lab::ensure`] checks the token between chunk-scheduling
    /// rounds — the natural preemption points of the sampled driver —
    /// and stops scheduling further work once it is set. Cancellation
    /// is *total*, like store degradation: every requested combination
    /// still receives an entry (merged from whatever contiguous prefix
    /// of intervals finished in time, possibly empty), so no caller
    /// panics; the caller that set the token is expected to check
    /// [`Lab::cancelled`] and discard this lab, whose caches now hold
    /// partial results. Intervals that did complete are still saved to
    /// the store — they form a valid checkpoint-order prefix a future
    /// run extends.
    pub fn set_cancel(&mut self, token: Option<Arc<AtomicBool>>) {
        self.cancel = token;
    }

    /// `true` once the installed cancellation token has been set.
    pub fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|t| t.load(std::sync::atomic::Ordering::Relaxed))
    }

    /// Installs a per-round progress hook (`None` clears it): called
    /// on the driving thread just before each sampling round fans out,
    /// with the round's [`RoundProgress`]. `dca serve` uses this to
    /// stream progress events to its clients.
    pub fn set_round_hook(&mut self, hook: Option<RoundHook>) {
        self.round_hook = hook;
    }

    /// Registers a custom machine geometry and returns the
    /// [`Machine::Custom`] selector to use with [`Lab::stats`] /
    /// [`Lab::ensure`]. Custom runs go through the same memoisation,
    /// sampling and persistent-store paths as the presets — results
    /// are keyed by the config's [`SimConfig::config_hash`], so two
    /// ablated configs can never collide in the store. Registering the
    /// same config twice is idempotent.
    ///
    /// # Panics
    ///
    /// Panics when the config fails [`SimConfig::validate`].
    pub fn register_machine(&mut self, cfg: SimConfig) -> Machine {
        cfg.validate().unwrap_or_else(|e| panic!("custom machine: {e}"));
        let h = cfg.config_hash();
        self.custom.insert(h, cfg);
        Machine::Custom(h)
    }

    /// Resolves a selector to its configuration (presets directly,
    /// custom machines through the registry).
    ///
    /// # Panics
    ///
    /// Panics on a [`Machine::Custom`] this lab never registered.
    fn config_of(&self, machine: Machine) -> SimConfig {
        match machine {
            Machine::Custom(h) => self
                .custom
                .get(&h)
                .unwrap_or_else(|| panic!("machine {h:#018x} was never registered"))
                .clone(),
            preset => preset.config(),
        }
    }

    /// Creates a lab over an explicitly constructed [`Store`] instead
    /// of opening one from [`RunOpts::store_dir`]. This is the
    /// injection point for fault-plan stores
    /// ([`dca_store::io::FaultIo`]) in robustness tests.
    pub fn with_store(opts: RunOpts, store: Store) -> Lab {
        let mut lab = Lab::new(opts);
        lab.store = Some(store);
        lab
    }

    /// The options in use.
    pub fn opts(&self) -> RunOpts {
        self.opts.clone()
    }

    /// Builds a run manifest stamping this Lab's configuration: engine
    /// versions, scale and instruction budget, sampling parameters,
    /// store directory, and the fingerprints of every workload
    /// materialised so far. Callers add per-invocation entries (phase
    /// timings, metrics snapshot) before saving.
    pub fn manifest(&self, command: &str) -> dca_obs::manifest::Manifest {
        use dca_obs::json::Json;
        let mut m = dca_obs::manifest::Manifest::new(command);
        m.set_u64("interp_version", u64::from(dca_prog::INTERP_VERSION))
            .set_u64("timing_version", u64::from(dca_sim::TIMING_VERSION))
            .set_u64(
                "format_version",
                u64::from(dca_store::file::FORMAT_VERSION),
            )
            .set_str("scale", self.opts.scale.name())
            .set_u64("max_insts", self.opts.max_insts);
        match &self.opts.sampling {
            Some(s) => {
                m.set(
                    "sampling",
                    Json::Obj(vec![
                        ("period".to_string(), Json::U64(s.period)),
                        ("warmup".to_string(), Json::U64(s.warmup)),
                        ("interval".to_string(), Json::U64(s.interval)),
                        (
                            "target_stderr".to_string(),
                            match s.target_stderr {
                                Some(v) => Json::F64(v),
                                None => Json::Null,
                            },
                        ),
                        (
                            "warming".to_string(),
                            Json::Str(s.warming.name().to_string()),
                        ),
                    ]),
                );
            }
            None => {
                m.set("sampling", Json::Null);
            }
        }
        m.set(
            "store_dir",
            match &self.opts.store_dir {
                Some(d) => Json::Str(d.display().to_string()),
                None => Json::Null,
            },
        );
        let mut fps: Vec<(String, Json)> = self
            .workloads
            .iter()
            .map(|(name, w)| {
                (
                    name.to_string(),
                    Json::Str(format!("{:#018x}", w.fingerprint())),
                )
            })
            .collect();
        fps.sort_by(|a, b| a.0.cmp(&b.0));
        m.set("workload_fingerprints", Json::Obj(fps));
        m
    }

    /// First-writer-wins shard acquisition against a shared store.
    ///
    /// Fast path: the shard is already published — return it. On a
    /// miss, race the other workers for the shard lock; the winner
    /// re-checks under the lock (a peer may have published while it
    /// waited), computes, saves and releases. Losers poll the shard
    /// with exponential backoff (10ms doubling, capped at 250ms) until
    /// the winner publishes or [`Store::lock_wait`] elapses.
    ///
    /// Degradation rule (ISSUE 6): a store that is unreadable, not
    /// lockable, or whose lock never frees must never fail the run —
    /// every such path computes in memory, skips the save, warns on
    /// stderr, and reports `from_store = false`.
    fn locked_fetch_or_compute<T>(
        store: &Store,
        name: &str,
        what: &str,
        load: impl Fn() -> Result<T, StoreError>,
        mut compute: impl FnMut() -> T,
        save: impl Fn(&T) -> Result<(), StoreError>,
    ) -> (T, bool) {
        // A stale or corrupt entry is *not* a reason to abandon the
        // store: fall through to the lock loop so the winner heals it
        // (recompute + save). Only an unusable store — lock directory
        // unreachable, or a lock that never frees — degrades.
        let m = dca_obs::metrics();
        match load() {
            Ok(v) => {
                m.store_hits_total.inc();
                return (v, true);
            }
            Err(e) if e.is_not_found() => m.store_misses_total.inc(),
            Err(e) => {
                m.store_misses_total.inc();
                progress::warn(format!("[lab] store: {what}: {e}; recomputing"));
            }
        }
        let wait_t0 = Instant::now();
        let deadline = wait_t0 + store.lock_wait();
        let mut backoff = Duration::from_millis(10);
        let waited_ns = || wait_t0.elapsed().as_nanos() as u64;
        loop {
            match store.try_lock(FileKind::Checkpoints, name) {
                LockAttempt::Acquired(_guard) => {
                    m.lock_elections_won_total.inc();
                    m.lock_wait_ns.record(waited_ns());
                    match load() {
                        Ok(v) => return (v, true),
                        Err(e) if e.is_not_found() => {}
                        Err(e) => {
                            progress::warn(format!("[lab] store: {what}: {e}; recomputing"));
                        }
                    }
                    let v = compute();
                    if let Err(e) = save(&v) {
                        progress::warn(format!("[lab] store: could not save {what}: {e}"));
                    }
                    return (v, false);
                }
                LockAttempt::Busy => {
                    // The holder is computing (or healing) this shard:
                    // poll for its publication, quietly treating
                    // not-yet-healed errors as misses.
                    if let Ok(v) = load() {
                        m.lock_elections_lost_total.inc();
                        m.lock_wait_ns.record(waited_ns());
                        return (v, true);
                    }
                    if Instant::now() >= deadline {
                        // The loser's degradation is part of the total-
                        // degradation invariant (a permanently held
                        // lock must never fail a run) — counted, so a
                        // fleet of serve workers wedging on one lock is
                        // visible in the metrics, not just in stderr.
                        m.lock_deadline_expired_total.inc();
                        m.lock_wait_ns.record(waited_ns());
                        progress::warn(format!(
                            "[lab] store: lock on {name} still held after {:?}; \
                             computing {what} without the store",
                            store.lock_wait()
                        ));
                        return (compute(), false);
                    }
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(250));
                }
                LockAttempt::Unavailable(e) => {
                    m.lock_wait_ns.record(waited_ns());
                    progress::warn(format!(
                        "[lab] store: lock unavailable ({e}); computing {what} without the store"
                    ));
                    return (compute(), false);
                }
            }
        }
    }

    /// Shares another lab's built workloads and checkpoint streams
    /// with this one (cheap: programs and copy-on-write memory pages
    /// clone by reference). Short-lived side measurements — the
    /// sampling report's warm-steering delta — use this to skip
    /// workload construction and the functional fast-forward even
    /// when no store is configured. Only valid between labs with the
    /// same scale, window and checkpoint period.
    pub(crate) fn adopt_from(&mut self, other: &Lab) {
        assert_eq!(self.opts.scale, other.opts.scale, "adopting across scales");
        assert_eq!(self.opts.max_insts, other.opts.max_insts, "adopting across windows");
        assert_eq!(
            self.opts.sampling.map(|s| s.period),
            other.opts.sampling.map(|s| s.period),
            "adopting across checkpoint grids"
        );
        for (&bench, w) in &other.workloads {
            self.workloads.entry(bench).or_insert_with(|| w.clone());
        }
        for (&bench, ff) in &other.ffs {
            self.ffs.entry(bench).or_insert_with(|| ff.clone());
        }
        for (&bench, info) in &other.ff_info {
            self.ff_info.entry(bench).or_insert_with(|| info.clone());
        }
        // A child with no store of its own shares the parent's handle
        // (`Store` clones share the instrumented I/O). Matters when
        // the parent was built via [`Lab::with_store`] — e.g. by the
        // serve dispatcher — where `opts.store_dir` is unset and a
        // side lab built from `parent.opts()` would otherwise lose
        // persistence and recompute warm intervals.
        if self.store.is_none() {
            self.store = other.store.clone();
        }
        // Work done by this side lab counts against the adopting
        // job's tally: "warm" must keep meaning "zero simulation
        // anywhere in the figure", side measurements included.
        self.tally = Arc::clone(&other.tally);
    }

    fn bench_name(bench: &str) -> &'static str {
        dca_workloads::NAMES
            .iter()
            .copied()
            .find(|n| *n == bench)
            .unwrap_or_else(|| panic!("unknown benchmark `{bench}`"))
    }

    fn workload(&mut self, bench: &str) -> &Workload {
        let scale = self.opts.scale;
        let name = Self::bench_name(bench);
        self.workloads
            .entry(name)
            .or_insert_with(|| dca_workloads::build(name, scale))
    }

    fn cache_key(bench: &str, machine: Machine, scheme: SchemeKind) -> (String, String, String) {
        (bench.to_owned(), machine.key(), scheme.key())
    }

    /// Runs one combination (no cache involved).
    fn simulate(w: &Workload, cfg: &SimConfig, scheme: SchemeKind, max_insts: u64) -> SimStats {
        let mut steering = scheme.instantiate(&w.program);
        Simulator::new(cfg, &w.program, w.memory.clone()).run(steering.as_mut(), max_insts)
    }

    /// Precomputes every not-yet-cached combination of `runs` in
    /// parallel, fanning the work across `std::thread::scope` workers
    /// (one per core, capped by the number of missing runs). Workload
    /// construction is parallelised the same way first. Results merge
    /// into the memoisation cache after the join, so subsequent
    /// [`Lab::stats`] calls are pure lookups.
    ///
    /// In sampled mode ([`RunOpts::sampling`]) the unit of parallel
    /// work is one *sample interval*, not one run; see
    /// [`Lab::ensure_sampled`].
    pub fn ensure(&mut self, runs: &[(&str, Machine, SchemeKind)]) {
        // Distinct missing combinations, first-seen order.
        let mut todo: Vec<Run> = Vec::new();
        for &(bench, machine, scheme) in runs {
            let run = (Self::bench_name(bench), machine, scheme);
            if !self.cache.contains_key(&Self::cache_key(run.0, machine, scheme))
                && !todo.contains(&run)
            {
                todo.push(run);
            }
        }
        if todo.is_empty() {
            return;
        }
        // Cancellation before any work: every requested combination
        // still gets a (empty) cache entry so downstream lookups stay
        // total; the cancelling caller discards this lab.
        if self.cancelled() {
            for &(bench, machine, scheme) in &todo {
                self.cache
                    .insert(Self::cache_key(bench, machine, scheme), SimStats::default());
            }
            return;
        }
        let _span = dca_obs::span("lab", "lab.ensure").arg("runs", todo.len());
        let benches: Vec<&'static str> = todo.iter().map(|&(b, _, _)| b).collect();
        self.build_workloads(&benches);

        if let Some(sampling) = self.opts.sampling {
            self.ensure_sampled(&todo, sampling);
            return;
        }
        progress::detail(format!(
            "[lab] running {} combinations in parallel",
            todo.len()
        ));
        let max_insts = self.opts.max_insts;
        let cfgs: Vec<SimConfig> = todo.iter().map(|&(_, m, _)| self.config_of(m)).collect();
        let workloads = &self.workloads;
        let tally = &self.tally;
        let jobs: Vec<usize> = (0..todo.len()).collect();
        let results = Self::fan_out(&jobs, |&i| {
            let (bench, machine, scheme) = todo[i];
            let w = &workloads[bench];
            let stats = Self::simulate(w, &cfgs[i], scheme, max_insts);
            tally.straight_runs.fetch_add(1, Ordering::Relaxed);
            (Self::cache_key(bench, machine, scheme), stats)
        });
        self.cache.extend(results);
    }

    /// Sampled-mode batch driver: obtains each distinct benchmark's
    /// checkpoint stream — from the persistent store when one is
    /// configured and holds a current entry, otherwise by
    /// fast-forwarding once (and saving) — then schedules the sample
    /// intervals of every missing combination across the worker pool.
    ///
    /// With [`SampleOpts::target_stderr`] set, intervals are drawn in
    /// checkpoint-order **chunks** per combination and a combination
    /// stops as soon as the deterministic prefix rule
    /// ([`adaptive_prefix`]) fires — so a low-variance combination
    /// costs a handful of intervals, not the full budget. The rule is
    /// evaluated on checkpoint-ordered prefixes only, which makes the
    /// merged statistics (and every artefact rendered from them)
    /// independent of worker completion order and of whether intervals
    /// came from the store or from fresh simulation.
    fn ensure_sampled(&mut self, todo: &[Run], sampling: SampleOpts) {
        assert!(
            sampling.interval <= sampling.period,
            "sample interval ({}) exceeds the checkpoint period ({}): successive \
             measured windows would overlap and multiply-count instructions",
            sampling.interval,
            sampling.period
        );
        let max_insts = self.opts.max_insts;
        let scale = self.opts.scale.name();
        let warming = sampling.warming;
        // Steering-table warm-up rides on the detached warming window;
        // under continuous warming there is no such window to replay,
        // so the flag is inert (and excluded from the result keys).
        let warm_steering = self.opts.warm_steering && warming == Warming::Detached;
        let continuous = warming == Warming::Continuous;
        // The warmup budget is equally inert under continuous warming
        // (zero detached-warming instructions run): normalise it out
        // of the result keys so a warm store survives `--sample-warmup`
        // changes that cannot affect the stored intervals.
        let key_warmup = if continuous { 0 } else { sampling.warmup };
        // Resolved machine configs, one per run: the store keys carry
        // their `config_hash` (results) so ablated/custom geometries
        // never collide, and the warming substrate's `uarch_hash`
        // (checkpoint streams) so snapshots only restore onto the
        // geometry that produced them.
        let cfgs: Vec<SimConfig> = todo.iter().map(|&(_, m, _)| self.config_of(m)).collect();
        let warm_uarch = SimConfig::default().uarch_hash();

        // Workload fingerprints for the store keys, once per benchmark.
        let mut fingerprints: HashMap<&'static str, u64> = HashMap::new();
        if self.store.is_some() {
            for &(bench, _, _) in todo {
                let w = &self.workloads[bench];
                fingerprints.entry(bench).or_insert_with(|| w.fingerprint());
            }
        }

        // Checkpoint streams for benchmarks not yet fast-forwarded:
        // consult the store first (a shorter window may be served from
        // the prefix of a longer stored stream — cross-scale reuse,
        // DESIGN.md §9), recompute (and save) on a miss. The pass
        // always streams through a [`ContinuousWarmer`], so every
        // stream carries per-checkpoint `UarchSnapshot`s whichever
        // warming mode this invocation uses — both modes then share
        // one stream file per benchmark. All machine presets share the
        // Table 2 front end, so one warmed stream serves them all.
        let mut missing: Vec<&'static str> = Vec::new();
        for &(bench, _, _) in todo {
            if !self.ffs.contains_key(bench) && !missing.contains(&bench) {
                missing.push(bench);
            }
        }
        if !missing.is_empty() {
            let _ff_span = dca_obs::span("lab", "lab.fast_forward_phase")
                .arg("benchmarks", missing.len());
            progress::detail(format!(
                "[lab] fast-forwarding {} benchmark(s) ({} insts, checkpoint every {})",
                missing.len(),
                max_insts,
                sampling.period
            ));
            let workloads = &self.workloads;
            let store = self.store.as_ref();
            let fps = &fingerprints;
            let passes = Self::fan_out(&missing, |&bench| {
                let w = &workloads[bench];
                let key = store.map(|_| CheckpointKey {
                    workload: bench,
                    scale,
                    period: sampling.period,
                    max_insts,
                    fingerprint: fps[bench],
                    uarch: warm_uarch,
                });
                let t0 = Instant::now();
                let compute = || {
                    let mut hook = ContinuousWarmer::new(&SimConfig::default());
                    fast_forward_with(
                        &w.program,
                        w.memory.clone(),
                        sampling.period,
                        max_insts,
                        &mut hook,
                    )
                };
                let (ff, from_store) = match (store, key.as_ref()) {
                    // Shared store: elect one computer per stream shard
                    // (first-writer-wins) so N concurrent labs on one
                    // `--store-dir` fast-forward each benchmark once.
                    (Some(store), Some(key)) => Self::locked_fetch_or_compute(
                        store,
                        &key.file_name(),
                        &format!("checkpoints for {bench}"),
                        || store.load_checkpoints_covering(key),
                        compute,
                        |ff| store.save_checkpoints(key, ff).map(|_| ()),
                    ),
                    _ => (compute(), false), // no store configured
                };
                (bench, ff, t0.elapsed().as_secs_f64(), from_store)
            });
            let (mut ff_executed, mut ff_secs) = (0u64, 0.0f64);
            for (bench, ff, secs, from_store) in passes {
                let info = FastForwardInfo {
                    insts: ff.total_insts,
                    checkpoints: ff.checkpoints.len() as u64,
                    secs,
                    from_store,
                };
                ff_executed += info.executed_insts();
                ff_secs += secs;
                self.ff_info.insert(bench, info);
                self.ffs.insert(bench, ff);
            }
            self.tally.ff_insts.fetch_add(ff_executed, Ordering::Relaxed);
            if ff_executed > 0 && ff_secs > 0.0 {
                dca_obs::metrics()
                    .ff_insts_per_sec
                    .set((ff_executed as f64 / ff_secs) as u64);
            }
        }

        // Per-run interval state, prefilled from the store. Outcomes
        // always form a contiguous checkpoint-order prefix.
        struct RunState {
            outcomes: Vec<IntervalOutcome>,
            /// Decided prefix length, once the rule fires.
            used: Option<usize>,
            /// Outcomes that came from the store (a prefix).
            prefilled: usize,
        }
        let budgets: Vec<usize> = todo
            .iter()
            .map(|&(bench, _, _)| self.ffs[bench].checkpoints.len())
            .collect();
        let mut states: Vec<RunState> = Vec::with_capacity(todo.len());
        for (i, &(bench, machine, scheme)) in todo.iter().enumerate() {
            let mut outcomes: Vec<IntervalOutcome> = Vec::new();
            if let Some(store) = &self.store {
                let scheme_key = scheme.key();
                let machine_key = machine.key();
                let key = ResultKey {
                    workload: bench,
                    scale,
                    machine: &machine_key,
                    geometry: cfgs[i].config_hash(),
                    scheme: &scheme_key,
                    period: sampling.period,
                    warmup: key_warmup,
                    interval: sampling.interval,
                    max_insts,
                    warm_steering,
                    continuous_warming: continuous,
                    fingerprint: fingerprints[bench],
                };
                match store.load_intervals(&key) {
                    Ok(records) => {
                        outcomes = records
                            .into_iter()
                            .take(budgets[i])
                            .map(|r| IntervalOutcome {
                                stats: r.stats,
                                warmed: r.warmed_insts,
                                restored: continuous,
                                warm_secs: 0.0,
                                detailed_secs: 0.0,
                                from_store: true,
                            })
                            .collect();
                        let m = dca_obs::metrics();
                        m.store_hits_total.inc();
                        m.intervals_from_store_total.add(outcomes.len() as u64);
                        self.tally
                            .intervals_from_store
                            .fetch_add(outcomes.len() as u64, Ordering::Relaxed);
                    }
                    Err(e) if e.is_not_found() => {
                        dca_obs::metrics().store_misses_total.inc();
                    }
                    Err(e) => {
                        dca_obs::metrics().store_misses_total.inc();
                        progress::warn(format!("[lab] store: {e}; recomputing"));
                    }
                }
            }
            let used = adaptive_prefix(&outcomes, budgets[i], sampling.target_stderr);
            states.push(RunState {
                prefilled: outcomes.len(),
                outcomes,
                used,
            });
        }

        // Chunked scheduling rounds: every undecided run contributes
        // its next chunk of checkpoint indices; all chunks of a round
        // fan out together. Without a stderr target a run's first
        // chunk is its whole budget (no adaptivity — one round).
        let mut round = 0u64;
        loop {
            // Round boundaries are the cancellation points: a set
            // token freezes every undecided run at its contiguous
            // prefix (possibly empty) so the merge below stays total.
            if self.cancelled() {
                for st in states.iter_mut() {
                    if st.used.is_none() {
                        st.used = Some(st.outcomes.len());
                    }
                }
                progress::warn("[lab] sampling cancelled; merging completed prefixes");
                break;
            }
            let mut batch: Vec<(usize, usize)> = Vec::new();
            for (i, st) in states.iter().enumerate() {
                if st.used.is_some() {
                    continue;
                }
                let have = st.outcomes.len();
                let until = if sampling.target_stderr.is_some() {
                    (have + INTERVAL_CHUNK).min(budgets[i])
                } else {
                    budgets[i]
                };
                batch.extend((have..until).map(|idx| (i, idx)));
            }
            if batch.is_empty() {
                break;
            }
            // Worst-case work remaining (every undecided run exhausts
            // its budget), for the ETA off the live intervals/sec rate.
            let remaining: u64 = states
                .iter()
                .zip(&budgets)
                .filter(|(st, _)| st.used.is_none())
                .map(|(st, &b)| (b - st.outcomes.len()) as u64)
                .sum();
            progress::detail(format!(
                "[lab] sampling round: {} intervals ({} worst-case, {})",
                batch.len(),
                remaining,
                progress::eta(
                    remaining,
                    dca_obs::metrics().intervals_per_sec_milli.get()
                )
            ));
            round += 1;
            if let Some(hook) = &self.round_hook {
                hook(&RoundProgress {
                    round,
                    batch: batch.len() as u64,
                    remaining,
                    intervals_per_sec_milli: dca_obs::metrics().intervals_per_sec_milli.get(),
                });
            }
            let round_t0 = Instant::now();
            let workloads = &self.workloads;
            let ffs = &self.ffs;
            let tally = &self.tally;
            let results = Self::fan_out(&batch, |&(i, idx)| {
                let (bench, machine, scheme) = todo[i];
                let _span = dca_obs::span("lab", "lab.interval")
                    .arg("bench", bench)
                    .arg("checkpoint", idx);
                let w = &workloads[bench];
                let ckpt = &ffs[bench].checkpoints[idx];
                let cfg = &cfgs[i];
                let mut steering = scheme.instantiate(&w.program);
                let mut sim = Simulator::resume_from(cfg, &w.program, ckpt);
                let t0 = Instant::now();
                // Continuous warming restores the checkpoint's carried
                // snapshot — zero detached-warming instructions (the
                // acceptance counter of the warming work); detached
                // warming replays `warmup` instructions as before.
                let warmed = match warming {
                    Warming::Continuous => {
                        let blob = ckpt.uarch().unwrap_or_else(|| {
                            panic!(
                                "continuous warming: checkpoint at {} of {bench} carries no \
                                 uarch snapshot (stream computed without a warm hook?)",
                                ckpt.seq()
                            )
                        });
                        let snap = UarchSnapshot::decode(blob).unwrap_or_else(|e| {
                            panic!("continuous warming: {bench} @ {}: {e}", ckpt.seq())
                        });
                        sim.restore_uarch(&snap).unwrap_or_else(|e| {
                            panic!(
                                "continuous warming: {bench} @ {} on {}: {e}",
                                ckpt.seq(),
                                machine.key()
                            )
                        });
                        0
                    }
                    Warming::Detached if warm_steering => {
                        sim.warm_functional_steered(sampling.warmup, steering.as_mut())
                    }
                    Warming::Detached => sim.warm_functional(sampling.warmup),
                };
                let warm_secs = t0.elapsed().as_secs_f64();
                let budget = (ckpt.seq() + warmed + sampling.interval).min(max_insts);
                let t1 = Instant::now();
                let stats = sim.run_mut(steering.as_mut(), budget);
                let detailed_secs = t1.elapsed().as_secs_f64();
                let m = dca_obs::metrics();
                m.intervals_computed_total.inc();
                tally.intervals_computed.fetch_add(1, Ordering::Relaxed);
                m.warm_insts_total.add(warmed);
                m.interval_ns.record((detailed_secs * 1e9) as u64);
                (
                    (i, idx),
                    IntervalOutcome {
                        stats,
                        warmed,
                        restored: warming == Warming::Continuous,
                        warm_secs,
                        detailed_secs,
                        from_store: false,
                    },
                )
            });
            // Live sampling throughput for the next round's ETA line.
            let round_secs = round_t0.elapsed().as_secs_f64();
            if round_secs > 0.0 {
                dca_obs::metrics()
                    .intervals_per_sec_milli
                    .set((batch.len() as f64 * 1000.0 / round_secs) as u64);
            }
            // Deterministic append: checkpoint order per run, whatever
            // order the workers finished in.
            let ordered: BTreeMap<(usize, usize), IntervalOutcome> =
                results.into_iter().collect();
            for ((i, idx), outcome) in ordered {
                debug_assert_eq!(states[i].outcomes.len(), idx, "contiguous prefix");
                states[i].outcomes.push(outcome);
            }
            for (i, st) in states.iter_mut().enumerate() {
                if st.used.is_none() {
                    st.used = adaptive_prefix(&st.outcomes, budgets[i], sampling.target_stderr);
                }
            }
        }

        // Merge each run's decided prefix, persist newly computed
        // intervals, and fill the caches.
        let (mut all_det_insts, mut all_det_secs) = (0u64, 0.0f64);
        for (i, &(bench, machine, scheme)) in todo.iter().enumerate() {
            let st = &states[i];
            let used = st.used.expect("scheduling loop decides every run");
            let (merged, info) = merge_outcomes(&st.outcomes, used, budgets[i] as u64);
            {
                let m = dca_obs::metrics();
                if info.early_stop {
                    m.early_stops_total.inc();
                }
                m.restored_snapshots_total.add(info.restored_snapshots);
                all_det_insts += info.detailed_insts;
                all_det_secs += info.detailed_secs;
            }
            if let Some(store) = &self.store {
                if st.outcomes.len() > st.prefilled {
                    let scheme_key = scheme.key();
                    let machine_key = machine.key();
                    let key = ResultKey {
                        workload: bench,
                        scale,
                        machine: &machine_key,
                        geometry: cfgs[i].config_hash(),
                        scheme: &scheme_key,
                        period: sampling.period,
                        warmup: key_warmup,
                        interval: sampling.interval,
                        max_insts,
                        warm_steering,
                        continuous_warming: continuous,
                        fingerprint: fingerprints[bench],
                    };
                    let records: Vec<IntervalRecord> = st
                        .outcomes
                        .iter()
                        .map(|o| IntervalRecord {
                            stats: o.stats.clone(),
                            warmed_insts: o.warmed,
                        })
                        .collect();
                    // One lock attempt, no retry: interval shards are an
                    // optimisation, and a peer holding the lock is
                    // writing its own (equal or longer) prefix anyway.
                    // Under the lock, never shrink a longer stored
                    // prefix — concurrent labs may decide different
                    // adaptive budgets for the same combination.
                    match store.try_lock(FileKind::Results, &key.file_name()) {
                        LockAttempt::Acquired(_guard) => {
                            let existing = match store.load_intervals(&key) {
                                Ok(stored) => stored.len(),
                                Err(_) => 0,
                            };
                            if existing < records.len() {
                                if let Err(e) = store.save_intervals(&key, &records) {
                                    progress::warn(format!(
                                        "[lab] store: could not save intervals: {e}"
                                    ));
                                }
                            }
                        }
                        LockAttempt::Busy => {} // a peer is writing this shard
                        LockAttempt::Unavailable(e) => {
                            progress::warn(format!(
                                "[lab] store: could not save intervals: {e}"
                            ));
                        }
                    }
                }
            }
            let key = Self::cache_key(bench, machine, scheme);
            self.sample_info.insert(key.clone(), info);
            self.cache.insert(key, merged);
        }
        if all_det_insts > 0 && all_det_secs > 0.0 {
            dca_obs::metrics()
                .detailed_insts_per_sec
                .set((all_det_insts as f64 / all_det_secs) as u64);
        }
    }

    /// Sampling diagnostics of a combination simulated in sampled mode
    /// (`None` for unsampled runs).
    pub fn sample_info(&self, bench: &str, machine: Machine, scheme: SchemeKind) -> Option<&SampleInfo> {
        self.sample_info.get(&Self::cache_key(bench, machine, scheme))
    }

    /// Fast-forward diagnostics of a benchmark's checkpoint pass
    /// (`None` before the benchmark was sampled).
    pub fn fast_forward_info(&self, bench: &str) -> Option<&FastForwardInfo> {
        self.ff_info.get(Self::bench_name(bench))
    }

    /// Builds (in parallel) every listed workload not yet cached and
    /// returns the cache, so callers can hand out `&Workload`
    /// references without rebuilding. Duplicates are fine.
    pub(crate) fn build_workloads(
        &mut self,
        benches: &[&'static str],
    ) -> &HashMap<&'static str, Workload> {
        let scale = self.opts.scale;
        let mut missing: Vec<&'static str> = Vec::new();
        for &bench in benches {
            if !self.workloads.contains_key(bench) && !missing.contains(&bench) {
                missing.push(bench);
            }
        }
        let built: Vec<(&'static str, Workload)> =
            Self::fan_out(&missing, |&name| (name, dca_workloads::build(name, scale)));
        self.workloads.extend(built);
        &self.workloads
    }

    /// Maps `f` over `items` on scoped worker threads (work-stealing
    /// via a shared atomic index) and returns the results; their order
    /// is unspecified. Runs inline when a single worker suffices.
    ///
    /// Worker threads are drawn from the process-wide budget
    /// ([`set_worker_budget`]): concurrent fan-outs — e.g. K serve
    /// jobs sampling at once — split the machine between them instead
    /// of each spawning a full complement. A fan-out always gets at
    /// least one worker (progress is never blocked on the budget), so
    /// momentary oversubscription is bounded by the number of
    /// concurrent fan-outs, never multiplicative.
    fn fan_out<T: Sync, R: Send>(
        items: &[T],
        f: impl Fn(&T) -> R + Sync,
    ) -> Vec<R> {
        use std::sync::atomic::AtomicUsize;
        let desired = default_parallelism().min(items.len());
        if desired <= 1 {
            dca_obs::metrics().lab_workers.set(1);
            let _span = dca_obs::span("lab", "lab.worker").arg("items", items.len());
            return items.iter().map(f).collect();
        }
        let workers = claim_workers(desired);
        dca_obs::metrics().lab_workers.set(workers as u64);
        if workers <= 1 {
            let _span = dca_obs::span("lab", "lab.worker").arg("items", items.len());
            let out = items.iter().map(f).collect();
            release_workers(workers);
            return out;
        }
        let next = AtomicUsize::new(0);
        let out = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut span = dca_obs::span("lab", "lab.worker");
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else { break };
                            out.push(f(item));
                        }
                        span.add_arg("items", out.len());
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("lab worker panicked"))
                .collect()
        });
        release_workers(workers);
        out
    }

    /// Simulates (or returns the memoised result of) one combination.
    pub fn stats(&mut self, bench: &str, machine: Machine, scheme: SchemeKind) -> SimStats {
        let key = Self::cache_key(bench, machine, scheme);
        if let Some(s) = self.cache.get(&key) {
            return s.clone();
        }
        progress::detail(format!(
            "[lab] {bench} / {} / {}",
            machine.key(),
            scheme.label()
        ));
        if self.opts.sampling.is_some() {
            // Sampled runs always go through the batch driver: even a
            // single combination fans its intervals across the pool.
            self.ensure(&[(bench, machine, scheme)]);
            return self.cache[&key].clone();
        }
        let max = self.opts.max_insts;
        let cfg = self.config_of(machine);
        let w = self.workload(bench);
        let stats = Self::simulate(w, &cfg, scheme, max);
        self.tally.straight_runs.fetch_add(1, Ordering::Relaxed);
        self.cache.insert(key, stats.clone());
        stats
    }

    /// Base-machine run for `bench` (the speed-up denominator).
    pub fn base(&mut self, bench: &str) -> SimStats {
        self.stats(bench, Machine::Base, SchemeKind::Naive)
    }

    /// Speed-up (percent) of a combination over the base machine.
    pub fn speedup(&mut self, bench: &str, machine: Machine, scheme: SchemeKind) -> f64 {
        let s = self.stats(bench, machine, scheme);
        let b = self.base(bench);
        s.speedup_over(&b)
    }

    /// Number of simulations performed so far (for tests).
    pub fn runs(&self) -> usize {
        self.cache.len()
    }
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The process-wide worker budget every [`Lab`] fan-out draws from.
/// Signed: a fan-out that finds the budget exhausted still takes one
/// worker (progress guarantee), briefly driving the balance negative.
fn worker_budget() -> &'static AtomicI64 {
    static BUDGET: std::sync::OnceLock<AtomicI64> = std::sync::OnceLock::new();
    BUDGET.get_or_init(|| AtomicI64::new(default_parallelism() as i64))
}

/// Sets the process-wide Lab worker budget (default: one per core).
/// Concurrent fan-outs — K serve jobs sampling at once — share this
/// pool instead of each assuming it owns the machine. Call while no
/// fan-out is in flight (at startup, or between jobs): the budget is
/// set absolutely, not adjusted relative to outstanding claims.
pub fn set_worker_budget(n: usize) {
    worker_budget().store(n.max(1) as i64, Ordering::SeqCst);
}

/// Claims between 1 and `desired` workers from the budget.
fn claim_workers(desired: usize) -> usize {
    let b = worker_budget();
    let mut avail = b.load(Ordering::Relaxed);
    loop {
        let take = avail.min(desired as i64).max(1);
        match b.compare_exchange_weak(avail, avail - take, Ordering::SeqCst, Ordering::Relaxed) {
            Ok(_) => return take as usize,
            Err(cur) => avail = cur,
        }
    }
}

fn release_workers(n: usize) {
    worker_budget().fetch_add(n as i64, Ordering::SeqCst);
}

/// Shared `main` for the figure binaries: parses common options,
/// regenerates the requested artefacts (or the one fixed by the thin
/// per-figure binaries), prints them and saves them under `results/`.
///
/// # Panics
///
/// Panics on unknown figure names or malformed options — these are
/// developer-facing binaries.
pub fn run_cli(fixed: Option<&'static str>) {
    run_cli_with(std::env::args().skip(1), fixed);
}

/// [`run_cli`] over an explicit argument list (callers that already
/// consumed part of the command line, e.g. the `dca figures`
/// subcommand, pass the remainder here).
///
/// # Panics
///
/// Panics on malformed options or an unknown figure id.
pub fn run_cli_with(args: impl Iterator<Item = String>, fixed: Option<&'static str>) {
    let (opts, rest) = RunOpts::from_args(args);
    opts.apply_observability();
    let mut lab = Lab::new(opts.clone());
    let out = std::path::PathBuf::from("results");
    let selected: Vec<String> = match fixed {
        Some(f) => vec![f.to_string()],
        None if rest.is_empty() => vec!["all".to_string()],
        None => rest,
    };
    let t0 = std::time::Instant::now();
    let mut generated = Vec::new();
    for sel in &selected {
        if sel == "all" {
            for fig in figures::all(&mut lab) {
                emit(&fig, &out);
                generated.push(fig.id.to_string());
            }
        } else {
            let f = figures::by_name(sel)
                .unwrap_or_else(|| panic!("unknown figure `{sel}`; try `all`"));
            let fig = f(&mut lab);
            emit(&fig, &out);
            generated.push(fig.id.to_string());
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    progress::info(format!(
        "[lab] {} simulation runs, {elapsed:.1}s",
        lab.runs()
    ));
    let mut manifest = lab.manifest("figures");
    manifest.set(
        "figures",
        dca_obs::json::Json::Arr(
            generated
                .iter()
                .map(|id| dca_obs::json::Json::Str(id.clone()))
                .collect(),
        ),
    );
    manifest.phase_secs("figures", elapsed);
    manifest.set_metrics(&dca_obs::metrics().snapshot());
    let manifest_path = out.join("run_manifest.json");
    if let Err(e) = manifest.save(&manifest_path) {
        progress::warn(format!(
            "[lab] could not write manifest {}: {e}",
            manifest_path.display()
        ));
    } else {
        progress::info(format!("[lab] wrote {}", manifest_path.display()));
    }
    opts.write_observability();
}

fn emit(fig: &figures::Figure, out: &std::path::Path) {
    println!("# {}\n\n{}", fig.title, fig.body);
    if let Some(timing) = &fig.timing {
        progress::info(timing.clone());
    }
    match fig.save(out) {
        Ok(p) => progress::info(format!("[lab] wrote {}", p.display())),
        Err(e) => progress::warn(format!("[lab] could not write {}: {e}", fig.id)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_opts() -> RunOpts {
        RunOpts {
            scale: Scale::Smoke,
            max_insts: 60_000,
            sampling: None,
            ..RunOpts::default()
        }
    }

    #[test]
    fn lab_memoises_runs() {
        let mut lab = Lab::new(smoke_opts());
        let a = lab.stats("compress", Machine::Clustered, SchemeKind::GeneralBalance);
        assert_eq!(lab.runs(), 1);
        let b = lab.stats("compress", Machine::Clustered, SchemeKind::GeneralBalance);
        assert_eq!(lab.runs(), 1, "second call must hit the cache");
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn speedup_is_relative_to_base() {
        let mut lab = Lab::new(smoke_opts());
        let s = lab.speedup("compress", Machine::Clustered, SchemeKind::GeneralBalance);
        // Any steering on the clustered machine should not be
        // dramatically slower than the base machine.
        assert!(s > -30.0, "speedup {s}");
        assert_eq!(lab.runs(), 2, "scheme + base");
    }

    #[test]
    fn opts_parse() {
        let (o, rest) = RunOpts::from_args(
            ["--scale", "smoke", "fig03", "--max-insts", "1234", "--verbose"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(o.scale, Scale::Smoke);
        assert_eq!(o.max_insts, 1234);
        assert!(o.verbose);
        assert!(o.sampling.is_none());
        assert_eq!(rest, vec!["fig03"]);
    }

    #[test]
    fn paper_scale_enables_sampling_with_the_paper_window() {
        let (o, rest) =
            RunOpts::from_args(["--scale", "paper"].iter().map(|s| s.to_string()));
        assert_eq!(o.scale, Scale::Paper);
        assert_eq!(o.max_insts, Scale::PAPER_INSTS);
        assert_eq!(o.sampling, Some(SampleOpts::default()));
        assert!(rest.is_empty());

        let (o, _) = RunOpts::from_args(
            ["--scale", "paper", "--max-insts", "500000", "--sample-period", "50000",
             "--sample-warmup", "0", "--sample-interval", "10000"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(o.max_insts, 500_000, "explicit budget wins");
        assert_eq!(
            o.sampling,
            Some(SampleOpts {
                period: 50_000,
                warmup: 0,
                interval: 10_000,
                target_stderr: Some(0.01),
                warming: Warming::Continuous,
            })
        );
    }

    #[test]
    fn sample_flags_enable_sampling_at_any_scale() {
        let (o, _) = RunOpts::from_args(
            ["--sample-period", "8000"].iter().map(|s| s.to_string()),
        );
        assert_eq!(o.scale, Scale::Default);
        assert_eq!(o.sampling.expect("enabled").period, 8_000);
    }

    /// Smoke-scale *detached* sampling: the window is tiny, so warming
    /// must cover the workload's cache footprint for the IPC estimate
    /// to converge (detached warming rebuilds cache/predictor state
    /// per interval — DESIGN.md §7 discusses the bias; §9 removes it).
    /// Tests that pin the PR 2/3 detached behaviour use these options;
    /// continuous-warming behaviour has its own tests below.
    fn sampled_opts() -> RunOpts {
        RunOpts {
            scale: Scale::Smoke,
            max_insts: 60_000,
            verbose: false,
            sampling: Some(SampleOpts {
                period: 10_000,
                warmup: 8_000,
                interval: 6_000,
                target_stderr: None,
                warming: Warming::Detached,
            }),
            ..RunOpts::default()
        }
    }

    /// The continuous-warming twin of [`sampled_opts`].
    fn continuous_opts() -> RunOpts {
        let mut opts = sampled_opts();
        opts.sampling.as_mut().expect("sampled").warming = Warming::Continuous;
        opts
    }

    /// The serve refusal table cannot drift from the parser: every
    /// flag listed as server-side is actually a flag `from_args`
    /// consumes (with a value exactly when the table says so).
    #[test]
    fn server_side_flags_match_the_parser() {
        for &(flag, takes_value) in SERVER_SIDE_FLAGS {
            let mut argv = vec![flag.to_string()];
            if takes_value {
                argv.push("1".to_string());
            }
            let (_, rest) = RunOpts::from_args(argv.into_iter());
            assert!(
                rest.is_empty(),
                "`{flag}` is listed in SERVER_SIDE_FLAGS but the parser left {rest:?}"
            );
        }
    }

    /// Per-lab work attribution: each lab tallies its own simulation
    /// work, labs are independent of one another, and memoised
    /// lookups add nothing — the invariant serve's per-job deltas
    /// are built on.
    #[test]
    fn work_tally_is_per_lab_and_exact() {
        let mut a = Lab::new(sampled_opts());
        let mut b = Lab::new(smoke_opts());
        assert_eq!(a.work(), WorkCounts::default());
        let _ = a.stats("compress", Machine::Clustered, SchemeKind::Modulo);
        let wa = a.work();
        assert!(wa.ff_insts > 0, "cold sampled run fast-forwards");
        assert!(wa.intervals_computed > 0, "cold sampled run simulates intervals");
        assert_eq!(wa.straight_runs, 0);
        assert!(!wa.is_warm());
        assert_eq!(b.work(), WorkCounts::default(), "other labs are untouched");
        // A straight (unsampled) pass counts as a run, so a fresh
        // non-sampled figure can never report itself warm.
        let _ = b.stats("compress", Machine::Base, SchemeKind::Naive);
        assert_eq!(b.work().straight_runs, 1);
        assert!(!b.work().is_warm());
        // Memoised lookups do no work.
        let before = a.work();
        let _ = a.stats("compress", Machine::Clustered, SchemeKind::Modulo);
        assert_eq!(a.work().since(&before), WorkCounts::default());
    }

    /// `adopt_from` shares the parent's tally: side labs a figure
    /// spawns internally attribute their work to the same job.
    #[test]
    fn adopted_labs_share_the_work_tally() {
        let mut parent = Lab::new(sampled_opts());
        let _ = parent.stats("compress", Machine::Clustered, SchemeKind::Modulo);
        let before = parent.work();
        let mut child = Lab::new(parent.opts());
        child.adopt_from(&parent);
        assert_eq!(child.work(), before, "shared tally, same snapshot");
        let _ = child.stats("compress", Machine::Clustered, SchemeKind::GeneralBalance);
        let delta = parent.work().since(&before);
        assert!(
            delta.intervals_computed > 0,
            "child work shows up on the parent's tally"
        );
        assert_eq!(delta.ff_insts, 0, "adopted checkpoint streams are reused");
    }

    /// The worker-budget primitives keep their progress guarantee: a
    /// claim always yields at least one worker and never more than
    /// asked for.
    #[test]
    fn worker_budget_claims_are_bounded() {
        let got = claim_workers(4);
        assert!((1..=4).contains(&got));
        release_workers(got);
        let one = claim_workers(1);
        assert_eq!(one, 1);
        release_workers(one);
    }

    #[test]
    #[should_panic(expected = "exceeds the checkpoint period")]
    fn overlapping_sample_intervals_are_rejected() {
        let mut lab = Lab::new(RunOpts {
            sampling: Some(SampleOpts {
                period: 1_000,
                warmup: 0,
                interval: 2_000,
                target_stderr: None,
                warming: Warming::Detached,
            }),
            ..smoke_opts()
        });
        let _ = lab.stats("compress", Machine::Clustered, SchemeKind::Modulo);
    }

    #[test]
    fn sampled_runs_record_interval_diagnostics() {
        let mut lab = Lab::new(sampled_opts());
        let s = lab.stats("compress", Machine::Clustered, SchemeKind::GeneralBalance);
        assert!(s.committed > 0);
        let info = lab
            .sample_info("compress", Machine::Clustered, SchemeKind::GeneralBalance)
            .expect("sampled run has diagnostics");
        assert!(info.intervals > 1, "smoke window yields several intervals");
        assert_eq!(info.detailed_insts, s.committed);
        assert_eq!(info.detailed_cycles, s.cycles);
        assert!(info.ipc_stderr >= 0.0);
        let ff = lab.fast_forward_info("compress").expect("fast-forwarded");
        // A trailing checkpoint whose warmup exhausts the stream
        // contributes no measured interval.
        assert!(ff.checkpoints >= info.intervals, "checkpoints cover the intervals");
        assert!(ff.insts <= 60_000);
    }

    #[test]
    fn sampled_runs_are_deterministic() {
        let run = ("compress", Machine::Clustered, SchemeKind::Modulo);
        let mut a = Lab::new(sampled_opts());
        let mut b = Lab::new(sampled_opts());
        let (sa, sb) = (a.stats(run.0, run.1, run.2), b.stats(run.0, run.1, run.2));
        assert_eq!(sa.cycles, sb.cycles);
        assert_eq!(sa.committed, sb.committed);
        assert_eq!(sa.copies, sb.copies);
        assert_eq!(sa.balance, sb.balance);
        let (ia, ib) = (
            a.sample_info(run.0, run.1, run.2).unwrap(),
            b.sample_info(run.0, run.1, run.2).unwrap(),
        );
        assert_eq!(ia.intervals, ib.intervals);
        assert!((ia.ipc_mean - ib.ipc_mean).abs() < 1e-15);
        assert!((ia.ipc_stderr - ib.ipc_stderr).abs() < 1e-15);
    }

    /// ISSUE 2 acceptance: the sampled IPC estimate must track the full
    /// detailed run. At smoke scale a full run is cheap, so the
    /// convergence is pinned here (the per-interval cold-backend
    /// ramp-up biases sampled IPC slightly low; 10% is comfortably
    /// above the observed error and far below scheme-ranking deltas).
    #[test]
    fn sampled_ipc_converges_to_the_full_run() {
        let full_opts = RunOpts {
            scale: Scale::Smoke,
            max_insts: 60_000,
            sampling: None,
            ..RunOpts::default()
        };
        for (machine, scheme) in [
            (Machine::Base, SchemeKind::Naive),
            (Machine::Clustered, SchemeKind::GeneralBalance),
        ] {
            let full = Lab::new(full_opts.clone()).stats("compress", machine, scheme);
            let sampled = Lab::new(sampled_opts()).stats("compress", machine, scheme);
            let rel = (sampled.ipc() - full.ipc()).abs() / full.ipc();
            assert!(
                rel < 0.10,
                "{machine:?}/{scheme:?}: sampled {} vs full {} ({}% off)",
                sampled.ipc(),
                full.ipc(),
                (rel * 100.0).round()
            );
        }
    }

    #[test]
    fn opts_parse_store_and_adaptive_flags() {
        // --target-stderr enables sampling, and a sampled CLI run gets
        // the default store directory.
        let (o, _) = RunOpts::from_args(
            ["--target-stderr", "0.05"].iter().map(|s| s.to_string()),
        );
        assert_eq!(o.sampling.expect("enabled").target_stderr, Some(0.05));
        assert_eq!(o.store_dir.as_deref(), Some(std::path::Path::new(".dca-store")));

        // 0 disables the early exit; explicit dir and warm-steering.
        let (o, _) = RunOpts::from_args(
            ["--scale", "paper", "--target-stderr", "0", "--store-dir", "/tmp/s", "--warm-steering"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(o.sampling.expect("enabled").target_stderr, None);
        assert_eq!(o.store_dir.as_deref(), Some(std::path::Path::new("/tmp/s")));
        assert!(o.warm_steering);

        // --no-store wins over the sampled default.
        let (o, _) = RunOpts::from_args(
            ["--scale", "paper", "--no-store"].iter().map(|s| s.to_string()),
        );
        assert!(o.store_dir.is_none());

        // Unsampled runs never get a store by default.
        let (o, _) = RunOpts::from_args(std::iter::empty());
        assert!(o.store_dir.is_none());
    }

    /// ISSUE 3: the early exit stops at the 2-interval floor with a
    /// loose target — and never below it.
    #[test]
    fn adaptive_early_exit_stops_at_the_two_interval_floor() {
        let mut opts = sampled_opts();
        opts.sampling.as_mut().expect("sampled").target_stderr = Some(1000.0);
        let mut lab = Lab::new(opts);
        let s = lab.stats("compress", Machine::Clustered, SchemeKind::Modulo);
        let info = lab
            .sample_info("compress", Machine::Clustered, SchemeKind::Modulo)
            .expect("sampled");
        assert_eq!(info.intervals, 2, "loose target stops at the floor");
        assert!(info.early_stop);
        assert!(info.intervals < info.budget, "budget {} left unused", info.budget);
        assert_eq!(info.detailed_insts, s.committed, "stats cover exactly the prefix");

        // The full-budget run of the same combination merges more.
        let full = Lab::new(sampled_opts()).stats("compress", Machine::Clustered, SchemeKind::Modulo);
        assert!(full.committed > s.committed);
    }

    fn synthetic_outcome(committed: u64, cycles: u64) -> IntervalOutcome {
        IntervalOutcome {
            stats: SimStats {
                committed,
                cycles,
                ..SimStats::default()
            },
            warmed: 0,
            restored: false,
            warm_secs: 0.0,
            detailed_secs: 0.0,
            from_store: false,
        }
    }

    /// ISSUE 3 determinism: once the prefix rule can decide, its answer
    /// never changes when more intervals become available — which is
    /// exactly why figures are identical whether workers finish in
    /// forward, reverse or shuffled order, and whatever overshoot a
    /// previous run left in the store.
    #[test]
    fn adaptive_prefix_decision_is_stable_under_longer_prefixes() {
        // IPCs: 1.0, 1.0, then noise — the rule fires at n = 2.
        let outcomes: Vec<IntervalOutcome> = [1.0f64, 1.0, 1.4, 0.6, 1.2, 0.8, 1.1, 0.9]
            .iter()
            .map(|ipc| synthetic_outcome((ipc * 1000.0) as u64, 1000))
            .collect();
        let budget = outcomes.len();
        let target = Some(0.01);
        assert_eq!(adaptive_prefix(&outcomes[..0], budget, target), None);
        assert_eq!(adaptive_prefix(&outcomes[..1], budget, target), None);
        for have in 2..=budget {
            assert_eq!(
                adaptive_prefix(&outcomes[..have], budget, target),
                Some(2),
                "decision must not drift with {have} intervals available"
            );
        }
        // Merges over any availability ≥ the decision are identical.
        let (m2, i2) = merge_outcomes(&outcomes[..2], 2, budget as u64);
        let (m8, i8) = merge_outcomes(&outcomes, 2, budget as u64);
        assert_eq!(m2.committed, m8.committed);
        assert_eq!(m2.cycles, m8.cycles);
        assert_eq!(i2.intervals, i8.intervals);
        assert!(i2.early_stop);

        // High variance: no early stop, full budget once available.
        let noisy: Vec<IntervalOutcome> = [2.0f64, 0.5, 3.0, 0.2, 2.5, 0.4]
            .iter()
            .map(|ipc| synthetic_outcome((ipc * 1000.0) as u64, 1000))
            .collect();
        assert_eq!(adaptive_prefix(&noisy[..4], noisy.len(), target), None);
        assert_eq!(adaptive_prefix(&noisy, noisy.len(), target), Some(noisy.len()));
        // Without a target the rule always wants the full budget.
        assert_eq!(adaptive_prefix(&noisy[..4], noisy.len(), None), None);
        assert_eq!(adaptive_prefix(&noisy, noisy.len(), None), Some(noisy.len()));
    }

    fn store_opts(tag: &str) -> (RunOpts, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("dca-bench-store-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        let mut opts = sampled_opts();
        opts.store_dir = Some(dir.clone());
        (opts, dir)
    }

    /// Every shard in a store directory (the v3 layout keeps
    /// checkpoint shards under `ck/` and result shards under `rs/`).
    fn shard_files(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
        let mut out = Vec::new();
        for sub in ["ck", "rs"] {
            if let Ok(rd) = std::fs::read_dir(dir.join(sub)) {
                out.extend(rd.flatten().map(|e| e.path()));
            }
        }
        out
    }

    /// ISSUE 6 tentpole acceptance: ≥4 concurrent labs sharing one
    /// store directory produce statistics identical to a storeless
    /// run, and the shard-lock election lets exactly one of them
    /// fast-forward (first-writer-wins); the rest are served from the
    /// store. All locks are released afterwards.
    #[test]
    fn concurrent_labs_share_one_store_first_writer_wins() {
        let (opts, dir) = store_opts("concurrent-labs");
        let run = ("compress", Machine::Clustered, SchemeKind::GeneralBalance);
        let mut cold_opts = opts.clone();
        cold_opts.store_dir = None;
        let reference = Lab::new(cold_opts).stats(run.0, run.1, run.2);

        let results: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let opts = opts.clone();
                    s.spawn(move || {
                        let mut lab = Lab::new(opts);
                        let stats = lab.stats(run.0, run.1, run.2);
                        let from_store = lab.fast_forward_info(run.0).unwrap().from_store;
                        (stats, from_store)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let fresh = results.iter().filter(|(_, from_store)| !from_store).count();
        assert_eq!(fresh, 1, "exactly one lab fast-forwards; peers hit the store");
        for (stats, _) in &results {
            assert_eq!(stats.cycles, reference.cycles, "identical across workers");
            assert_eq!(stats.committed, reference.committed);
            assert_eq!(stats.balance, reference.balance);
            assert_eq!(stats.l1d.hits, reference.l1d.hits);
        }
        let store = Store::open(&dir);
        assert_eq!(store.stat().live_locks, 0, "all shard locks released");
        for r in store.verify() {
            assert!(
                matches!(r.status, dca_store::FileStatus::Ok { .. }),
                "{}: {:?}",
                r.path.display(),
                r.status
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// ISSUE 6 degradation: a `--store-dir` that turns out to be a
    /// regular file (so every store I/O fails) must never fail the
    /// run — the lab warns, computes in memory, reports
    /// `from_store = false`, and leaves the file untouched.
    #[test]
    fn unusable_store_dir_degrades_to_in_memory_compute() {
        let file = std::env::temp_dir().join("dca-bench-store-not-a-dir");
        std::fs::write(&file, b"not a directory").unwrap();
        let mut opts = sampled_opts();
        opts.store_dir = Some(file.clone());
        let run = ("compress", Machine::Clustered, SchemeKind::Modulo);
        let mut lab = Lab::new(opts);
        let s = lab.stats(run.0, run.1, run.2);
        assert!(!lab.fast_forward_info(run.0).expect("ran").from_store);
        let reference = Lab::new(sampled_opts()).stats(run.0, run.1, run.2);
        assert_eq!(s.cycles, reference.cycles, "degraded run is still correct");
        assert_eq!(s.committed, reference.committed);
        assert_eq!(
            std::fs::read(&file).unwrap(),
            b"not a directory",
            "the file standing where the store should be is untouched"
        );
        std::fs::remove_file(&file).ok();
    }

    /// ISSUE 6 degradation, injected flavour: a store whose device
    /// dies on the very first operation (fault plan kills every op,
    /// including lock acquisition) still yields correct statistics.
    #[test]
    fn dead_store_io_never_fails_a_run() {
        use dca_store::io::{FaultIo, FaultPlan};
        let dir = std::env::temp_dir().join("dca-bench-store-dead-io");
        std::fs::remove_dir_all(&dir).ok();
        let mut opts = sampled_opts();
        opts.store_dir = Some(dir.clone());
        let io = std::sync::Arc::new(FaultIo::new(FaultPlan::kill_at(0)));
        let store = Store::open_with_io(&dir, io);
        let run = ("compress", Machine::Clustered, SchemeKind::Modulo);
        let mut lab = Lab::with_store(opts, store);
        let s = lab.stats(run.0, run.1, run.2);
        assert!(!lab.fast_forward_info(run.0).expect("ran").from_store);
        let reference = Lab::new(sampled_opts()).stats(run.0, run.1, run.2);
        assert_eq!(s.cycles, reference.cycles, "dead store never fails a run");
        assert_eq!(s.balance, reference.balance);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// ISSUE 3 acceptance (smoke-scale twin of the CI benchmark): a
    /// second lab over a warm store executes zero fast-forward
    /// instructions and zero detailed simulation, yet reproduces the
    /// cold run's statistics exactly.
    #[test]
    fn warm_store_reproduces_cold_results_with_zero_fast_forward() {
        let (opts, dir) = store_opts("warm");
        let run = ("compress", Machine::Clustered, SchemeKind::GeneralBalance);

        let mut cold = Lab::new(opts.clone());
        let sc = cold.stats(run.0, run.1, run.2);
        let ffc = cold.fast_forward_info(run.0).expect("fast-forwarded");
        assert!(!ffc.from_store);
        assert!(ffc.executed_insts() > 0);

        let mut warm = Lab::new(opts.clone());
        let sw = warm.stats(run.0, run.1, run.2);
        let ffw = warm.fast_forward_info(run.0).expect("loaded");
        assert!(ffw.from_store, "second lab must hit the store");
        assert_eq!(ffw.executed_insts(), 0, "zero fast-forward instructions");
        assert_eq!(ffw.insts, ffc.insts, "stream covers the same window");

        assert_eq!(sc.cycles, sw.cycles);
        assert_eq!(sc.committed, sw.committed);
        assert_eq!(sc.copies, sw.copies);
        assert_eq!(sc.balance, sw.balance);
        assert_eq!(sc.l1d.hits, sw.l1d.hits);
        let iw = warm.sample_info(run.0, run.1, run.2).expect("sampled");
        let ic = cold.sample_info(run.0, run.1, run.2).expect("sampled");
        assert!(iw.from_store > 0, "intervals served from the store");
        assert_eq!(ic.from_store, 0);
        assert_eq!(iw.intervals, ic.intervals);
        assert_eq!(iw.detailed_secs, 0.0, "no detailed simulation on the warm path");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// ISSUE 3: a corrupt store entry produces a warning and a clean
    /// fall back to recomputation — and the recomputed entry heals the
    /// store.
    #[test]
    fn corrupt_store_falls_back_to_recomputation() {
        let (opts, dir) = store_opts("corrupt");
        let run = ("compress", Machine::Clustered, SchemeKind::Modulo);
        let baseline = Lab::new(opts.clone()).stats(run.0, run.1, run.2);

        // Flip a byte in the middle of every shard (shards live in the
        // ck/ and rs/ subdirectories since the v3 sharded layout).
        let mut flipped = 0;
        for path in shard_files(&dir) {
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xff;
            std::fs::write(&path, bytes).unwrap();
            flipped += 1;
        }
        assert!(flipped >= 2, "checkpoints + results were persisted");

        let mut healed = Lab::new(opts.clone());
        let s = healed.stats(run.0, run.1, run.2);
        assert_eq!(s.cycles, baseline.cycles, "recomputation matches");
        assert!(!healed.fast_forward_info(run.0).unwrap().from_store);

        // The store was rewritten: a third lab hits it again.
        let mut third = Lab::new(opts.clone());
        let s3 = third.stats(run.0, run.1, run.2);
        assert_eq!(s3.cycles, baseline.cycles);
        assert!(third.fast_forward_info(run.0).unwrap().from_store);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// ISSUE 3: a warm store whose result prefix is shorter than the
    /// current request (tighter target ⇒ more intervals) is *extended*,
    /// and the merge over mixed store/fresh intervals is identical to
    /// an all-cold run.
    #[test]
    fn adaptive_results_extend_a_stored_prefix() {
        let (mut opts, dir) = store_opts("extend");
        // Many checkpoints, so the first adaptive chunk does not cover
        // the whole budget.
        opts.sampling = Some(SampleOpts {
            period: 2_000,
            warmup: 1_500,
            interval: 1_000,
            target_stderr: Some(1000.0), // stops at 2, stores one chunk
            warming: Warming::Detached,
        });
        let run = ("compress", Machine::Clustered, SchemeKind::Modulo);
        let _ = Lab::new(opts.clone()).stats(run.0, run.1, run.2);

        // Same key, but now the full budget is required.
        let mut full_opts = opts.clone();
        full_opts.sampling.as_mut().unwrap().target_stderr = None;
        let mut warm = Lab::new(full_opts.clone());
        let sw = warm.stats(run.0, run.1, run.2);
        let iw = warm.sample_info(run.0, run.1, run.2).expect("sampled");
        assert!(iw.budget > INTERVAL_CHUNK as u64, "scenario exercises extension");
        assert!(iw.from_store > 0, "stored prefix reused");
        assert!(
            iw.from_store < iw.budget,
            "extension actually simulated new intervals"
        );

        // All-cold reference with the same (full-budget) parameters.
        let mut cold_opts = full_opts.clone();
        cold_opts.store_dir = None;
        let sc = Lab::new(cold_opts).stats(run.0, run.1, run.2);
        assert_eq!(sw.cycles, sc.cycles, "mixed store/fresh merge is exact");
        assert_eq!(sw.committed, sc.committed);
        assert_eq!(sw.balance, sc.balance);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Steering-state warm-up (`--warm-steering`) changes only
    /// decode-time tables: the measured windows are identical, so
    /// committed counts match; results are keyed separately in the
    /// store and deterministic per flag value.
    #[test]
    fn warm_steering_is_deterministic_and_preserves_windows() {
        let run = ("compress", Machine::Clustered, SchemeKind::LdStSliceBalance);
        let mut warm_opts = sampled_opts();
        warm_opts.warm_steering = true;
        let a = Lab::new(warm_opts.clone()).stats(run.0, run.1, run.2);
        let b = Lab::new(warm_opts).stats(run.0, run.1, run.2);
        assert_eq!(a.cycles, b.cycles, "warm-steering runs are deterministic");
        let cold = Lab::new(sampled_opts()).stats(run.0, run.1, run.2);
        assert_eq!(a.committed, cold.committed, "same measured windows");
    }

    /// Continuous-warming acceptance (the counter test of the ISSUE 4
    /// criterion): every interval of a `--warming continuous` run
    /// starts from a restored `UarchSnapshot` and executes **zero**
    /// detached-warming instructions.
    #[test]
    fn continuous_warming_restores_snapshots_and_runs_zero_detached_warming() {
        let run = ("compress", Machine::Clustered, SchemeKind::GeneralBalance);
        let mut lab = Lab::new(continuous_opts());
        let s = lab.stats(run.0, run.1, run.2);
        assert!(s.committed > 0);
        let info = lab.sample_info(run.0, run.1, run.2).expect("sampled");
        assert_eq!(info.warmed_insts, 0, "zero detached-warming instructions");
        assert!(info.intervals > 1, "smoke window yields several intervals");
        assert!(
            info.restored_snapshots >= info.intervals,
            "every merged interval started from a restored snapshot \
             ({} restored, {} intervals)",
            info.restored_snapshots,
            info.intervals
        );

        // Deterministic, like every other sampled mode.
        let s2 = Lab::new(continuous_opts()).stats(run.0, run.1, run.2);
        assert_eq!(s.cycles, s2.cycles);
        assert_eq!(s.committed, s2.committed);
        assert_eq!(s.balance, s2.balance);

        // And genuinely warmer than detached warming: the detached run
        // pays a cold-start transient that continuous warming removes,
        // so the two modes must not be accidentally wired to the same
        // path (their stats differ).
        let mut det = Lab::new(sampled_opts());
        let sd = det.stats(run.0, run.1, run.2);
        let id = det.sample_info(run.0, run.1, run.2).expect("sampled");
        assert!(id.warmed_insts > 0, "detached mode still warms functionally");
        assert_eq!(id.restored_snapshots, 0);
        assert_ne!(
            (s.cycles, s.l1d.hits),
            (sd.cycles, sd.l1d.hits),
            "continuous and detached warming measure different microarchitectural state"
        );
    }

    /// Continuous sampled IPC tracks the full detailed run at least as
    /// well as the detached harness does (same bound as
    /// `sampled_ipc_converges_to_the_full_run`).
    #[test]
    fn continuous_sampling_converges_to_the_full_run() {
        let full_opts = RunOpts {
            scale: Scale::Smoke,
            max_insts: 60_000,
            sampling: None,
            ..RunOpts::default()
        };
        for (machine, scheme) in [
            (Machine::Base, SchemeKind::Naive),
            (Machine::Clustered, SchemeKind::GeneralBalance),
        ] {
            let full = Lab::new(full_opts.clone()).stats("compress", machine, scheme);
            let sampled = Lab::new(continuous_opts()).stats("compress", machine, scheme);
            let rel = (sampled.ipc() - full.ipc()).abs() / full.ipc();
            assert!(
                rel < 0.10,
                "{machine:?}/{scheme:?}: sampled {} vs full {} ({}% off)",
                sampled.ipc(),
                full.ipc(),
                (rel * 100.0).round()
            );
        }
    }

    /// The continuous-warming twin of
    /// `warm_store_reproduces_cold_results_with_zero_fast_forward`:
    /// snapshots survive the store and the warm run still executes
    /// zero fast-forward and zero detached-warming instructions.
    #[test]
    fn continuous_warm_store_reproduces_cold_results() {
        let (mut opts, dir) = store_opts("warm-continuous");
        opts.sampling.as_mut().expect("sampled").warming = Warming::Continuous;
        let run = ("compress", Machine::Clustered, SchemeKind::GeneralBalance);

        let mut cold = Lab::new(opts.clone());
        let sc = cold.stats(run.0, run.1, run.2);
        assert!(!cold.fast_forward_info(run.0).expect("ran").from_store);

        let mut warm = Lab::new(opts.clone());
        let sw = warm.stats(run.0, run.1, run.2);
        let ffw = warm.fast_forward_info(run.0).expect("loaded");
        assert!(ffw.from_store, "second lab must hit the store");
        assert_eq!(ffw.executed_insts(), 0, "zero fast-forward instructions");

        assert_eq!(sc.cycles, sw.cycles);
        assert_eq!(sc.committed, sw.committed);
        assert_eq!(sc.balance, sw.balance);
        assert_eq!(sc.l1d.hits, sw.l1d.hits);
        let iw = warm.sample_info(run.0, run.1, run.2).expect("sampled");
        assert!(iw.from_store > 0, "intervals served from the store");
        assert_eq!(iw.warmed_insts, 0, "still zero detached warming");
        assert!(iw.restored_snapshots >= iw.intervals);

        // The warmup budget is inert under continuous warming, so a
        // different `--sample-warmup` must still hit the same result
        // entries (warmup is normalised out of the key).
        let mut rewarm_opts = opts.clone();
        rewarm_opts.sampling.as_mut().expect("sampled").warmup = 123;
        let mut rewarm = Lab::new(rewarm_opts);
        let sr = rewarm.stats(run.0, run.1, run.2);
        assert_eq!(sr.cycles, sc.cycles);
        let ir = rewarm.sample_info(run.0, run.1, run.2).expect("sampled");
        assert!(
            ir.from_store > 0,
            "changed warmup must not invalidate continuous-warming results"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Cross-scale checkpoint reuse at the Lab level (ROADMAP item): a
    /// request for a shorter window is served from the prefix of the
    /// longer stored stream — zero fast-forward instructions executed —
    /// and reproduces a cold shorter run exactly.
    #[test]
    fn shorter_window_request_reuses_the_longer_stored_stream() {
        let (mut opts, dir) = store_opts("window-prefix");
        opts.sampling.as_mut().expect("sampled").warming = Warming::Continuous;
        let run = ("compress", Machine::Clustered, SchemeKind::Modulo);

        // Long window populates the store.
        let _ = Lab::new(opts.clone()).stats(run.0, run.1, run.2);

        // Shorter window over the same stream: served from the prefix.
        let mut short_opts = opts.clone();
        short_opts.max_insts = 30_000;
        let mut short = Lab::new(short_opts.clone());
        let s = short.stats(run.0, run.1, run.2);
        let ff = short.fast_forward_info(run.0).expect("served");
        assert!(ff.from_store, "prefix of the longer stream serves the request");
        assert_eq!(ff.executed_insts(), 0, "zero fast-forward instructions");
        assert_eq!(ff.insts, 30_000, "stream truncated to the requested window");

        // Identical to a cold run of the short window without a store.
        let mut cold_opts = short_opts;
        cold_opts.store_dir = None;
        let sc = Lab::new(cold_opts).stats(run.0, run.1, run.2);
        assert_eq!(s.cycles, sc.cycles, "prefix-served run is exact");
        assert_eq!(s.committed, sc.committed);
        assert_eq!(s.balance, sc.balance);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Version-invalidation satellite, Lab side: store files whose
    /// headers carry older interpreter/timing versions are rejected as
    /// a unit and transparently recomputed (the store-level error
    /// classes are pinned in `dca-store`'s tests).
    #[test]
    fn stale_version_store_entries_are_recomputed() {
        use dca_store::file::{fnv64, TRAILER_BYTES};
        use dca_store::shard::{HEADER_BYTES, HEADER_SUM_OFFSET};
        let (opts, dir) = store_opts("stale-version");
        let run = ("compress", Machine::Clustered, SchemeKind::Modulo);
        let baseline = Lab::new(opts.clone()).stats(run.0, run.1, run.2);

        // Age every shard: checkpoint streams get an older interpreter
        // version, result shards an older timing version; the header
        // and file checksums are fixed up so *only* the version field
        // is stale.
        let mut aged = 0;
        for path in shard_files(&dir) {
            let mut bytes = std::fs::read(&path).unwrap();
            match path.extension().and_then(|e| e.to_str()) {
                Some("dcc") => bytes[16..20]
                    .copy_from_slice(&(dca_prog::INTERP_VERSION - 1).to_le_bytes()),
                Some("dcr") => bytes[20..24]
                    .copy_from_slice(&(dca_sim::TIMING_VERSION - 1).to_le_bytes()),
                _ => continue,
            }
            let hsum = fnv64(&bytes[..HEADER_SUM_OFFSET]);
            bytes[HEADER_SUM_OFFSET..HEADER_BYTES].copy_from_slice(&hsum.to_le_bytes());
            let body = bytes.len() - TRAILER_BYTES;
            let sum = fnv64(&bytes[..body]);
            let len = bytes.len();
            bytes[body..len].copy_from_slice(&sum.to_le_bytes());
            std::fs::write(&path, &bytes).unwrap();
            aged += 1;
        }
        assert!(aged >= 2, "checkpoints + results were persisted");

        let mut healed = Lab::new(opts.clone());
        let s = healed.stats(run.0, run.1, run.2);
        assert_eq!(s.cycles, baseline.cycles, "recomputation matches");
        assert!(
            !healed.fast_forward_info(run.0).expect("ran").from_store,
            "stale stream was rejected, not half-read"
        );

        // The rewritten entries serve the next lab again.
        let mut third = Lab::new(opts.clone());
        assert_eq!(third.stats(run.0, run.1, run.2).cycles, baseline.cycles);
        assert!(third.fast_forward_info(run.0).expect("hit").from_store);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ensure_prefills_cache_and_matches_serial() {
        let mut lab = Lab::new(smoke_opts());
        lab.ensure(&[
            ("compress", Machine::Clustered, SchemeKind::Modulo),
            ("compress", Machine::Clustered, SchemeKind::Modulo), // duplicates collapse
            ("li", Machine::Clustered, SchemeKind::Modulo),
        ]);
        assert_eq!(lab.runs(), 2, "two distinct combinations");
        let a = lab.stats("compress", Machine::Clustered, SchemeKind::Modulo);
        assert_eq!(lab.runs(), 2, "ensure pre-filled the cache");
        let mut serial = Lab::new(smoke_opts());
        let b = serial.stats("compress", Machine::Clustered, SchemeKind::Modulo);
        assert_eq!(a.cycles, b.cycles, "parallel and serial runs are identical");
        assert_eq!(a.copies, b.copies);
        assert_eq!(a.balance, b.balance);
    }

    #[test]
    fn every_scheme_instantiates() {
        let w = dca_workloads::build("compress", Scale::Smoke);
        for k in ALL_SCHEMES {
            let s = k.instantiate(&w.program);
            assert!(!s.name().is_empty());
            assert!(!k.label().is_empty());
        }
    }

    #[test]
    fn lock_wait_secs_flag_reaches_the_store() {
        let dir = std::env::temp_dir().join("dca-bench-lockwait");
        let argv = ["--lock-wait-secs", "3", "--store-dir"]
            .iter()
            .map(ToString::to_string)
            .chain(std::iter::once(dir.display().to_string()));
        let (opts, rest) = RunOpts::from_args(argv);
        assert!(rest.is_empty());
        assert_eq!(opts.lock_wait_secs, Some(3));
        let lab = Lab::new(opts);
        assert_eq!(
            lab.store.as_ref().expect("store configured").lock_wait(),
            Duration::from_secs(3),
            "--lock-wait-secs overrides the store's lock patience"
        );
        // Without the flag the store keeps its default.
        let lab = Lab::new(RunOpts {
            store_dir: Some(dir.clone()),
            ..RunOpts::default()
        });
        assert_eq!(
            lab.store.as_ref().expect("store configured").lock_wait(),
            Duration::from_secs(120)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_secs_flag_reaches_the_store() {
        let dir = std::env::temp_dir().join("dca-bench-stalesecs");
        let argv = ["--stale-secs", "7", "--store-dir"]
            .iter()
            .map(ToString::to_string)
            .chain(std::iter::once(dir.display().to_string()));
        let (opts, rest) = RunOpts::from_args(argv);
        assert!(rest.is_empty());
        assert_eq!(opts.stale_secs, Some(7));
        let lab = Lab::new(opts);
        assert_eq!(
            lab.store.as_ref().expect("store configured").stale_after(),
            Duration::from_secs(7),
            "--stale-secs overrides the shared lock/temp staleness threshold"
        );
        // Without the flag both thresholds keep the one shared default.
        let lab = Lab::new(RunOpts {
            store_dir: Some(dir.clone()),
            ..RunOpts::default()
        });
        assert_eq!(
            lab.store.as_ref().expect("store configured").stale_after(),
            dca_store::lock::DEFAULT_STALE_AFTER
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// ISSUE 9 regression: a permanently held shard lock (live owner
    /// that never publishes) must expire the lock-wait deadline into
    /// in-memory compute with `from_store = false` and a counted
    /// metric — never an error, never a hung run. The contending lab
    /// runs through a `FaultIo` store (armed, non-firing plan) so the
    /// degradation path is exercised under the injection layer used by
    /// the crash sweeps.
    #[test]
    fn permanently_held_lock_degrades_with_a_counted_metric() {
        use dca_store::io::{FaultIo, FaultKind, FaultPlan};
        let (opts, dir) = store_opts("held-lock");
        let run = ("compress", Machine::Clustered, SchemeKind::Modulo);

        // The wedged peer: holds the checkpoint-shard lock this lab
        // will want, from a live pid (ours), and never releases it.
        let key = CheckpointKey {
            workload: run.0,
            scale: opts.scale.name(),
            period: opts.sampling.unwrap().period,
            max_insts: opts.max_insts,
            fingerprint: dca_workloads::build(run.0, opts.scale).fingerprint(),
            uarch: SimConfig::default().uarch_hash(),
        };
        let holder = Store::open(&dir);
        let _guard = match holder.try_lock(FileKind::Checkpoints, &key.file_name()) {
            LockAttempt::Acquired(g) => g,
            other => panic!("could not stage the held lock: {other:?}"),
        };

        let m = dca_obs::metrics();
        let expired_before = m.lock_deadline_expired_total.get();
        let io = std::sync::Arc::new(FaultIo::new(FaultPlan::fail_at(u64::MAX, FaultKind::Fail)));
        let store = Store::open_with_io(&dir, io).with_lock_wait(Duration::from_millis(300));
        let mut lab = Lab::with_store(opts, store);
        let s = lab.stats(run.0, run.1, run.2);
        assert!(
            !lab.fast_forward_info(run.0).expect("ran").from_store,
            "deadline loser reports from_store = false"
        );
        assert!(
            m.lock_deadline_expired_total.get() > expired_before,
            "the expiry is counted, not just logged"
        );
        let reference = Lab::new(sampled_opts()).stats(run.0, run.1, run.2);
        assert_eq!(s.cycles, reference.cycles, "degraded run is still correct");
        assert_eq!(s.committed, reference.committed);
        // The loser computed without the lock, so it must not have
        // published the checkpoint shard behind the holder's back.
        assert!(
            !dir.join("ck").join(key.file_name()).exists(),
            "no shard written without holding its lock"
        );
        drop(_guard);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Chunk-round cancellation (the `dca serve` disconnect path):
    /// setting the token between rounds freezes every run at its
    /// completed prefix — total (no panic, every combination gets an
    /// entry), partial (fewer intervals than the budget), and flagged
    /// (`Lab::cancelled`). The round hook observes the rounds.
    #[test]
    fn cancellation_between_rounds_is_total_and_flagged() {
        use std::sync::atomic::Ordering;
        use std::sync::Mutex;
        let opts = RunOpts {
            scale: Scale::Smoke,
            max_insts: 60_000,
            sampling: Some(SampleOpts {
                // Many checkpoints, so the budget spans several chunk
                // rounds and a cancellation lands between two of them.
                period: 2_000,
                warmup: 1_500,
                interval: 1_000,
                // A target no run can reach keeps the driver in
                // chunked rounds for the whole budget.
                target_stderr: Some(1e-12),
                warming: Warming::Detached,
            }),
            ..RunOpts::default()
        };
        let run = ("compress", Machine::Clustered, SchemeKind::GeneralBalance);
        let reference = Lab::new(opts.clone()).stats(run.0, run.1, run.2);

        let token = Arc::new(AtomicBool::new(false));
        let seen: Arc<Mutex<Vec<RoundProgress>>> = Arc::new(Mutex::new(Vec::new()));
        let mut lab = Lab::new(opts.clone());
        lab.set_cancel(Some(token.clone()));
        let (t, s) = (token.clone(), seen.clone());
        lab.set_round_hook(Some(Box::new(move |p| {
            s.lock().unwrap().push(*p);
            // Cancel after the first round fans out: the check at the
            // next round boundary freezes the prefix.
            t.store(true, Ordering::Relaxed);
        })));
        let stats = lab.stats(run.0, run.1, run.2);
        assert!(lab.cancelled(), "token observed");
        let rounds = seen.lock().unwrap();
        assert_eq!(rounds.len(), 1, "cancelled before round 2");
        assert_eq!(rounds[0].round, 1);
        assert!(rounds[0].batch > 0 && rounds[0].batch <= INTERVAL_CHUNK as u64);
        let info = lab.sample_info(run.0, run.1, run.2).expect("total: info exists");
        assert!(
            info.intervals < info.budget,
            "frozen at a partial prefix ({} of {})",
            info.intervals,
            info.budget
        );
        assert!(stats.committed > 0, "completed prefix merged");
        assert!(
            stats.committed < reference.committed,
            "partial ({} insts) vs complete ({})",
            stats.committed,
            reference.committed
        );

        // A token set before any work: still total, empty entries.
        let mut lab = Lab::new(opts);
        lab.set_cancel(Some(Arc::new(AtomicBool::new(true))));
        let stats = lab.stats(run.0, run.1, run.2);
        assert!(lab.cancelled());
        assert_eq!(stats.committed, 0, "no work scheduled after cancellation");
    }

    #[test]
    fn custom_machines_register_idempotently() {
        let mut lab = Lab::new(smoke_opts());
        let mut cfg = Machine::Clustered.config();
        cfg.copy_latency = 4;
        let a = lab.register_machine(cfg.clone());
        let b = lab.register_machine(cfg.clone());
        assert_eq!(a, b, "same config registers to the same machine");
        assert_eq!(a.key(), format!("custom{:016x}", cfg.config_hash()));
        // The registered machine simulates under its own key and its
        // stats differ from the preset it was derived from.
        let s = lab.stats("compress", a, SchemeKind::GeneralBalance);
        let preset = lab.stats("compress", Machine::Clustered, SchemeKind::GeneralBalance);
        assert!(s.committed > 0);
        assert_ne!(s.cycles, preset.cycles, "copy latency 4 changes timing");
    }
}
