//! # dca-bench — the experiment harness
//!
//! Regenerates **every table and figure** of the paper's evaluation
//! (§3) as text artefacts. Each `figNN` binary reproduces one figure;
//! `figures` runs everything and writes `results/*.md`.
//!
//! The heart of the crate is [`Lab`], which memoises simulation runs:
//! several figures share the same (benchmark, machine, scheme) runs —
//! e.g. Figure 4 (speed-ups), Figure 5 (communications) and Figure 6
//! (workload balance) all come from the same LdSt/Br slice-steering
//! simulations — so each combination is simulated exactly once per
//! invocation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;

use std::collections::HashMap;

use dca_prog::Program;
use dca_sim::{SimConfig, SimStats, Simulator, Steering};
use dca_steer::{
    FifoSteering, GeneralBalance, Modulo, Naive, NonSliceBalance, PrioritySliceBalance,
    SliceBalance, SliceKind, SliceSteering, StaticPartition,
};
use dca_workloads::{Scale, Workload};

/// Which machine configuration a run uses.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Machine {
    /// The conventional base machine (no int units in the FP cluster,
    /// no bypasses) — the denominator of every speed-up.
    Base,
    /// The paper's clustered machine.
    Clustered,
    /// Clustered with one bus per direction (§3.8 ablation).
    OneBus,
    /// The 16-way upper bound ("UB arch").
    UpperBound,
}

impl Machine {
    /// The corresponding configuration.
    pub fn config(self) -> SimConfig {
        match self {
            Machine::Base => SimConfig::paper_base(),
            Machine::Clustered => SimConfig::paper_clustered(),
            Machine::OneBus => SimConfig::one_bus(),
            Machine::UpperBound => SimConfig::paper_upper_bound(),
        }
    }

    /// Parses a machine name as used on the command line.
    ///
    /// # Errors
    ///
    /// Returns the list of valid names on an unknown input.
    pub fn from_name(name: &str) -> Result<Machine, String> {
        Ok(match name {
            "base" => Machine::Base,
            "clustered" => Machine::Clustered,
            "one-bus" | "onebus" => Machine::OneBus,
            "ub" | "upper-bound" => Machine::UpperBound,
            other => {
                return Err(format!(
                    "unknown machine `{other}` (base|clustered|one-bus|ub)"
                ))
            }
        })
    }

    /// Stable key for memoisation.
    fn key(self) -> &'static str {
        match self {
            Machine::Base => "base",
            Machine::Clustered => "clustered",
            Machine::OneBus => "onebus",
            Machine::UpperBound => "ub",
        }
    }
}

/// Every steering scheme the evaluation exercises.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names mirror the paper's scheme names
pub enum SchemeKind {
    Naive,
    Modulo,
    StaticLdSt,
    LdStSlice,
    BrSlice,
    LdStNonSliceBalance,
    BrNonSliceBalance,
    LdStSliceBalance,
    BrSliceBalance,
    LdStPriority,
    BrPriority,
    GeneralBalance,
    Fifo,
}

/// All scheme kinds, in presentation order.
pub const ALL_SCHEMES: [SchemeKind; 13] = [
    SchemeKind::Naive,
    SchemeKind::Modulo,
    SchemeKind::StaticLdSt,
    SchemeKind::LdStSlice,
    SchemeKind::BrSlice,
    SchemeKind::LdStNonSliceBalance,
    SchemeKind::BrNonSliceBalance,
    SchemeKind::LdStSliceBalance,
    SchemeKind::BrSliceBalance,
    SchemeKind::LdStPriority,
    SchemeKind::BrPriority,
    SchemeKind::GeneralBalance,
    SchemeKind::Fifo,
];

impl SchemeKind {
    /// Human label used in figure rows/legends (matches the paper's).
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::Naive => "naive",
            SchemeKind::Modulo => "Modulo",
            SchemeKind::StaticLdSt => "Static (Sastry et al.)",
            SchemeKind::LdStSlice => "LdSt slice",
            SchemeKind::BrSlice => "Br slice",
            SchemeKind::LdStNonSliceBalance => "LdSt non-slice",
            SchemeKind::BrNonSliceBalance => "Br non-slice",
            SchemeKind::LdStSliceBalance => "LdSt slice bal.",
            SchemeKind::BrSliceBalance => "Br slice bal.",
            SchemeKind::LdStPriority => "LdSt p. slice",
            SchemeKind::BrPriority => "Br p. slice",
            SchemeKind::GeneralBalance => "General bal.",
            SchemeKind::Fifo => "FIFO-based",
        }
    }

    /// Instantiates the scheme (some need the program for offline
    /// analysis).
    pub fn instantiate(self, prog: &Program) -> Box<dyn Steering> {
        match self {
            SchemeKind::Naive => Box::new(Naive::new()),
            SchemeKind::Modulo => Box::new(Modulo::new()),
            SchemeKind::StaticLdSt => Box::new(StaticPartition::analyze(prog)),
            SchemeKind::LdStSlice => Box::new(SliceSteering::new(SliceKind::LdSt)),
            SchemeKind::BrSlice => Box::new(SliceSteering::new(SliceKind::Br)),
            SchemeKind::LdStNonSliceBalance => {
                Box::new(NonSliceBalance::new(SliceKind::LdSt))
            }
            SchemeKind::BrNonSliceBalance => Box::new(NonSliceBalance::new(SliceKind::Br)),
            SchemeKind::LdStSliceBalance => Box::new(SliceBalance::new(SliceKind::LdSt)),
            SchemeKind::BrSliceBalance => Box::new(SliceBalance::new(SliceKind::Br)),
            SchemeKind::LdStPriority => Box::new(PrioritySliceBalance::new(SliceKind::LdSt)),
            SchemeKind::BrPriority => Box::new(PrioritySliceBalance::new(SliceKind::Br)),
            SchemeKind::GeneralBalance => Box::new(GeneralBalance::new()),
            SchemeKind::Fifo => Box::new(FifoSteering::paper()),
        }
    }

    /// Short machine-readable name accepted by [`SchemeKind::from_name`].
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Naive => "naive",
            SchemeKind::Modulo => "modulo",
            SchemeKind::StaticLdSt => "static",
            SchemeKind::LdStSlice => "ldst-slice",
            SchemeKind::BrSlice => "br-slice",
            SchemeKind::LdStNonSliceBalance => "ldst-nonslice",
            SchemeKind::BrNonSliceBalance => "br-nonslice",
            SchemeKind::LdStSliceBalance => "ldst-slicebal",
            SchemeKind::BrSliceBalance => "br-slicebal",
            SchemeKind::LdStPriority => "ldst-priority",
            SchemeKind::BrPriority => "br-priority",
            SchemeKind::GeneralBalance => "general",
            SchemeKind::Fifo => "fifo",
        }
    }

    /// Parses a scheme name as used on the command line (the inverse of
    /// [`SchemeKind::name`]).
    ///
    /// # Errors
    ///
    /// Returns the list of valid names on an unknown input.
    pub fn from_name(name: &str) -> Result<SchemeKind, String> {
        ALL_SCHEMES
            .into_iter()
            .find(|s| s.name() == name)
            .ok_or_else(|| {
                let valid: Vec<&str> = ALL_SCHEMES.iter().map(|s| s.name()).collect();
                format!("unknown scheme `{name}` (valid: {})", valid.join("|"))
            })
    }

    fn key(self) -> String {
        format!("{self:?}")
    }
}

/// Harness options (scale and instruction budget).
#[derive(Copy, Clone, Debug)]
pub struct RunOpts {
    /// Workload scale.
    pub scale: Scale,
    /// Instruction budget per run (the paper's "100M after skipping
    /// 100M" becomes "everything the workload executes, capped here").
    pub max_insts: u64,
    /// Print progress lines to stderr.
    pub verbose: bool,
}

impl Default for RunOpts {
    fn default() -> RunOpts {
        RunOpts {
            scale: Scale::Default,
            max_insts: 5_000_000,
            verbose: false,
        }
    }
}

impl RunOpts {
    /// Parses harness options from command-line arguments
    /// (`--scale smoke|default|full`, `--max-insts N`, `--verbose`).
    /// Unrecognised arguments are returned for the caller.
    ///
    /// # Panics
    ///
    /// Panics on a malformed value (unknown scale, non-numeric
    /// instruction budget).
    pub fn from_args(args: impl Iterator<Item = String>) -> (RunOpts, Vec<String>) {
        let mut opts = RunOpts::default();
        let mut rest = Vec::new();
        let mut args = args.peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => {
                    let v = args.next().unwrap_or_default();
                    opts.scale = match v.as_str() {
                        "smoke" => Scale::Smoke,
                        "default" => Scale::Default,
                        "full" => Scale::Full,
                        other => panic!("unknown scale `{other}` (smoke|default|full)"),
                    };
                }
                "--max-insts" => {
                    opts.max_insts = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--max-insts needs a number");
                }
                "--verbose" => opts.verbose = true,
                _ => rest.push(a),
            }
        }
        (opts, rest)
    }
}

/// One simulation request: `(benchmark, machine, scheme)` — the unit
/// of work [`Lab::ensure`] distributes across worker threads.
pub type Run = (&'static str, Machine, SchemeKind);

/// Memoising experiment driver: builds workloads once and simulates
/// each (benchmark, machine, scheme) combination at most once.
///
/// Batch interface: [`Lab::ensure`] takes a figure's whole run-set and
/// fans the missing combinations across `std::thread::scope` workers
/// (simulations are independent; the memoisation cache is merged after
/// the join), so `figures` saturates every core instead of simulating
/// one combination at a time.
///
/// # Example
///
/// ```
/// use dca_bench::{Lab, Machine, RunOpts, SchemeKind};
/// use dca_workloads::Scale;
///
/// let mut lab = Lab::new(RunOpts {
///     scale: Scale::Smoke,
///     max_insts: 30_000,
///     verbose: false,
/// });
/// let s = lab.stats("li", Machine::Clustered, SchemeKind::GeneralBalance);
/// assert!(s.committed > 0);
/// ```
pub struct Lab {
    opts: RunOpts,
    workloads: HashMap<&'static str, Workload>,
    cache: HashMap<(String, &'static str, String), SimStats>,
}

impl Lab {
    /// Creates a lab.
    pub fn new(opts: RunOpts) -> Lab {
        Lab {
            opts,
            workloads: HashMap::new(),
            cache: HashMap::new(),
        }
    }

    /// The options in use.
    pub fn opts(&self) -> RunOpts {
        self.opts
    }

    fn bench_name(bench: &str) -> &'static str {
        dca_workloads::NAMES
            .iter()
            .copied()
            .find(|n| *n == bench)
            .unwrap_or_else(|| panic!("unknown benchmark `{bench}`"))
    }

    fn workload(&mut self, bench: &str) -> &Workload {
        let scale = self.opts.scale;
        let name = Self::bench_name(bench);
        self.workloads
            .entry(name)
            .or_insert_with(|| dca_workloads::build(name, scale))
    }

    fn cache_key(bench: &str, machine: Machine, scheme: SchemeKind) -> (String, &'static str, String) {
        (bench.to_owned(), machine.key(), scheme.key())
    }

    /// Runs one combination (no cache involved).
    fn simulate(w: &Workload, machine: Machine, scheme: SchemeKind, max_insts: u64) -> SimStats {
        let cfg = machine.config();
        let mut steering = scheme.instantiate(&w.program);
        Simulator::new(&cfg, &w.program, w.memory.clone()).run(steering.as_mut(), max_insts)
    }

    /// Precomputes every not-yet-cached combination of `runs` in
    /// parallel, fanning the work across `std::thread::scope` workers
    /// (one per core, capped by the number of missing runs). Workload
    /// construction is parallelised the same way first. Results merge
    /// into the memoisation cache after the join, so subsequent
    /// [`Lab::stats`] calls are pure lookups.
    pub fn ensure(&mut self, runs: &[(&str, Machine, SchemeKind)]) {
        // Distinct missing combinations, first-seen order.
        let mut todo: Vec<Run> = Vec::new();
        for &(bench, machine, scheme) in runs {
            let run = (Self::bench_name(bench), machine, scheme);
            if !self.cache.contains_key(&Self::cache_key(run.0, machine, scheme))
                && !todo.contains(&run)
            {
                todo.push(run);
            }
        }
        if todo.is_empty() {
            return;
        }
        let benches: Vec<&'static str> = todo.iter().map(|&(b, _, _)| b).collect();
        self.build_workloads(&benches);

        if self.opts.verbose {
            eprintln!("[lab] running {} combinations in parallel", todo.len());
        }
        let max_insts = self.opts.max_insts;
        let workloads = &self.workloads;
        let results = Self::fan_out(&todo, |&(bench, machine, scheme)| {
            let w = &workloads[bench];
            let stats = Self::simulate(w, machine, scheme, max_insts);
            (Self::cache_key(bench, machine, scheme), stats)
        });
        self.cache.extend(results);
    }

    /// Builds (in parallel) every listed workload not yet cached and
    /// returns the cache, so callers can hand out `&Workload`
    /// references without rebuilding. Duplicates are fine.
    pub(crate) fn build_workloads(
        &mut self,
        benches: &[&'static str],
    ) -> &HashMap<&'static str, Workload> {
        let scale = self.opts.scale;
        let mut missing: Vec<&'static str> = Vec::new();
        for &bench in benches {
            if !self.workloads.contains_key(bench) && !missing.contains(&bench) {
                missing.push(bench);
            }
        }
        let built: Vec<(&'static str, Workload)> =
            Self::fan_out(&missing, |&name| (name, dca_workloads::build(name, scale)));
        self.workloads.extend(built);
        &self.workloads
    }

    /// Maps `f` over `items` on scoped worker threads (work-stealing
    /// via a shared atomic index) and returns the results; their order
    /// is unspecified. Runs inline when a single worker suffices.
    fn fan_out<T: Sync, R: Send>(
        items: &[T],
        f: impl Fn(&T) -> R + Sync,
    ) -> Vec<R> {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(items.len());
        if workers <= 1 {
            return items.iter().map(f).collect();
        }
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else { break };
                            out.push(f(item));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("lab worker panicked"))
                .collect()
        })
    }

    /// Simulates (or returns the memoised result of) one combination.
    pub fn stats(&mut self, bench: &str, machine: Machine, scheme: SchemeKind) -> SimStats {
        let key = Self::cache_key(bench, machine, scheme);
        if let Some(s) = self.cache.get(&key) {
            return s.clone();
        }
        if self.opts.verbose {
            eprintln!("[lab] {bench} / {} / {}", machine.key(), scheme.label());
        }
        let max = self.opts.max_insts;
        let w = self.workload(bench);
        let stats = Self::simulate(w, machine, scheme, max);
        self.cache.insert(key, stats.clone());
        stats
    }

    /// Base-machine run for `bench` (the speed-up denominator).
    pub fn base(&mut self, bench: &str) -> SimStats {
        self.stats(bench, Machine::Base, SchemeKind::Naive)
    }

    /// Speed-up (percent) of a combination over the base machine.
    pub fn speedup(&mut self, bench: &str, machine: Machine, scheme: SchemeKind) -> f64 {
        let s = self.stats(bench, machine, scheme);
        let b = self.base(bench);
        s.speedup_over(&b)
    }

    /// Number of simulations performed so far (for tests).
    pub fn runs(&self) -> usize {
        self.cache.len()
    }
}

/// Shared `main` for the figure binaries: parses common options,
/// regenerates the requested artefacts (or the one fixed by the thin
/// per-figure binaries), prints them and saves them under `results/`.
///
/// # Panics
///
/// Panics on unknown figure names or malformed options — these are
/// developer-facing binaries.
pub fn run_cli(fixed: Option<&'static str>) {
    run_cli_with(std::env::args().skip(1), fixed);
}

/// [`run_cli`] over an explicit argument list (callers that already
/// consumed part of the command line, e.g. the `dca figures`
/// subcommand, pass the remainder here).
///
/// # Panics
///
/// Panics on malformed options or an unknown figure id.
pub fn run_cli_with(args: impl Iterator<Item = String>, fixed: Option<&'static str>) {
    let (opts, rest) = RunOpts::from_args(args);
    let mut lab = Lab::new(opts);
    let out = std::path::PathBuf::from("results");
    let selected: Vec<String> = match fixed {
        Some(f) => vec![f.to_string()],
        None if rest.is_empty() => vec!["all".to_string()],
        None => rest,
    };
    let t0 = std::time::Instant::now();
    for sel in selected {
        if sel == "all" {
            for fig in figures::all(&mut lab) {
                emit(&fig, &out);
            }
        } else {
            let f = figures::by_name(&sel)
                .unwrap_or_else(|| panic!("unknown figure `{sel}`; try `all`"));
            let fig = f(&mut lab);
            emit(&fig, &out);
        }
    }
    eprintln!(
        "[lab] {} simulation runs, {:.1}s",
        lab.runs(),
        t0.elapsed().as_secs_f64()
    );
}

fn emit(fig: &figures::Figure, out: &std::path::Path) {
    println!("# {}\n\n{}", fig.title, fig.body);
    match fig.save(out) {
        Ok(p) => eprintln!("[lab] wrote {}", p.display()),
        Err(e) => eprintln!("[lab] could not write {}: {e}", fig.id),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_opts() -> RunOpts {
        RunOpts {
            scale: Scale::Smoke,
            max_insts: 60_000,
            verbose: false,
        }
    }

    #[test]
    fn lab_memoises_runs() {
        let mut lab = Lab::new(smoke_opts());
        let a = lab.stats("compress", Machine::Clustered, SchemeKind::GeneralBalance);
        assert_eq!(lab.runs(), 1);
        let b = lab.stats("compress", Machine::Clustered, SchemeKind::GeneralBalance);
        assert_eq!(lab.runs(), 1, "second call must hit the cache");
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn speedup_is_relative_to_base() {
        let mut lab = Lab::new(smoke_opts());
        let s = lab.speedup("compress", Machine::Clustered, SchemeKind::GeneralBalance);
        // Any steering on the clustered machine should not be
        // dramatically slower than the base machine.
        assert!(s > -30.0, "speedup {s}");
        assert_eq!(lab.runs(), 2, "scheme + base");
    }

    #[test]
    fn opts_parse() {
        let (o, rest) = RunOpts::from_args(
            ["--scale", "smoke", "fig03", "--max-insts", "1234", "--verbose"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(o.scale, Scale::Smoke);
        assert_eq!(o.max_insts, 1234);
        assert!(o.verbose);
        assert_eq!(rest, vec!["fig03"]);
    }

    #[test]
    fn ensure_prefills_cache_and_matches_serial() {
        let mut lab = Lab::new(smoke_opts());
        lab.ensure(&[
            ("compress", Machine::Clustered, SchemeKind::Modulo),
            ("compress", Machine::Clustered, SchemeKind::Modulo), // duplicates collapse
            ("li", Machine::Clustered, SchemeKind::Modulo),
        ]);
        assert_eq!(lab.runs(), 2, "two distinct combinations");
        let a = lab.stats("compress", Machine::Clustered, SchemeKind::Modulo);
        assert_eq!(lab.runs(), 2, "ensure pre-filled the cache");
        let mut serial = Lab::new(smoke_opts());
        let b = serial.stats("compress", Machine::Clustered, SchemeKind::Modulo);
        assert_eq!(a.cycles, b.cycles, "parallel and serial runs are identical");
        assert_eq!(a.copies, b.copies);
        assert_eq!(a.balance, b.balance);
    }

    #[test]
    fn every_scheme_instantiates() {
        let w = dca_workloads::build("compress", Scale::Smoke);
        for k in ALL_SCHEMES {
            let s = k.instantiate(&w.program);
            assert!(!s.name().is_empty());
            assert!(!k.label().is_empty());
        }
    }
}
