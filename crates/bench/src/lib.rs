//! # dca-bench — the experiment harness
//!
//! Regenerates **every table and figure** of the paper's evaluation
//! (§3) as text artefacts. Each `figNN` binary reproduces one figure;
//! `figures` runs everything and writes `results/*.md`.
//!
//! The heart of the crate is [`Lab`], which memoises simulation runs:
//! several figures share the same (benchmark, machine, scheme) runs —
//! e.g. Figure 4 (speed-ups), Figure 5 (communications) and Figure 6
//! (workload balance) all come from the same LdSt/Br slice-steering
//! simulations — so each combination is simulated exactly once per
//! invocation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;

use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

use dca_prog::{fast_forward, FastForward, Program};
use dca_sim::{SimConfig, SimStats, Simulator, Steering};
use dca_steer::{
    FifoSteering, GeneralBalance, Modulo, Naive, NonSliceBalance, PrioritySliceBalance,
    SliceBalance, SliceKind, SliceSteering, StaticPartition,
};
use dca_workloads::{Scale, Workload};

/// Which machine configuration a run uses.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Machine {
    /// The conventional base machine (no int units in the FP cluster,
    /// no bypasses) — the denominator of every speed-up.
    Base,
    /// The paper's clustered machine.
    Clustered,
    /// Clustered with one bus per direction (§3.8 ablation).
    OneBus,
    /// The 16-way upper bound ("UB arch").
    UpperBound,
}

impl Machine {
    /// The corresponding configuration.
    pub fn config(self) -> SimConfig {
        match self {
            Machine::Base => SimConfig::paper_base(),
            Machine::Clustered => SimConfig::paper_clustered(),
            Machine::OneBus => SimConfig::one_bus(),
            Machine::UpperBound => SimConfig::paper_upper_bound(),
        }
    }

    /// Parses a machine name as used on the command line.
    ///
    /// # Errors
    ///
    /// Returns the list of valid names on an unknown input.
    pub fn from_name(name: &str) -> Result<Machine, String> {
        Ok(match name {
            "base" => Machine::Base,
            "clustered" => Machine::Clustered,
            "one-bus" | "onebus" => Machine::OneBus,
            "ub" | "upper-bound" => Machine::UpperBound,
            other => {
                return Err(format!(
                    "unknown machine `{other}` (base|clustered|one-bus|ub)"
                ))
            }
        })
    }

    /// Stable key for memoisation.
    fn key(self) -> &'static str {
        match self {
            Machine::Base => "base",
            Machine::Clustered => "clustered",
            Machine::OneBus => "onebus",
            Machine::UpperBound => "ub",
        }
    }
}

/// Every steering scheme the evaluation exercises.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names mirror the paper's scheme names
pub enum SchemeKind {
    Naive,
    Modulo,
    StaticLdSt,
    LdStSlice,
    BrSlice,
    LdStNonSliceBalance,
    BrNonSliceBalance,
    LdStSliceBalance,
    BrSliceBalance,
    LdStPriority,
    BrPriority,
    GeneralBalance,
    Fifo,
}

/// All scheme kinds, in presentation order.
pub const ALL_SCHEMES: [SchemeKind; 13] = [
    SchemeKind::Naive,
    SchemeKind::Modulo,
    SchemeKind::StaticLdSt,
    SchemeKind::LdStSlice,
    SchemeKind::BrSlice,
    SchemeKind::LdStNonSliceBalance,
    SchemeKind::BrNonSliceBalance,
    SchemeKind::LdStSliceBalance,
    SchemeKind::BrSliceBalance,
    SchemeKind::LdStPriority,
    SchemeKind::BrPriority,
    SchemeKind::GeneralBalance,
    SchemeKind::Fifo,
];

impl SchemeKind {
    /// Human label used in figure rows/legends (matches the paper's).
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::Naive => "naive",
            SchemeKind::Modulo => "Modulo",
            SchemeKind::StaticLdSt => "Static (Sastry et al.)",
            SchemeKind::LdStSlice => "LdSt slice",
            SchemeKind::BrSlice => "Br slice",
            SchemeKind::LdStNonSliceBalance => "LdSt non-slice",
            SchemeKind::BrNonSliceBalance => "Br non-slice",
            SchemeKind::LdStSliceBalance => "LdSt slice bal.",
            SchemeKind::BrSliceBalance => "Br slice bal.",
            SchemeKind::LdStPriority => "LdSt p. slice",
            SchemeKind::BrPriority => "Br p. slice",
            SchemeKind::GeneralBalance => "General bal.",
            SchemeKind::Fifo => "FIFO-based",
        }
    }

    /// Instantiates the scheme (some need the program for offline
    /// analysis).
    pub fn instantiate(self, prog: &Program) -> Box<dyn Steering> {
        match self {
            SchemeKind::Naive => Box::new(Naive::new()),
            SchemeKind::Modulo => Box::new(Modulo::new()),
            SchemeKind::StaticLdSt => Box::new(StaticPartition::analyze(prog)),
            SchemeKind::LdStSlice => Box::new(SliceSteering::new(SliceKind::LdSt)),
            SchemeKind::BrSlice => Box::new(SliceSteering::new(SliceKind::Br)),
            SchemeKind::LdStNonSliceBalance => {
                Box::new(NonSliceBalance::new(SliceKind::LdSt))
            }
            SchemeKind::BrNonSliceBalance => Box::new(NonSliceBalance::new(SliceKind::Br)),
            SchemeKind::LdStSliceBalance => Box::new(SliceBalance::new(SliceKind::LdSt)),
            SchemeKind::BrSliceBalance => Box::new(SliceBalance::new(SliceKind::Br)),
            SchemeKind::LdStPriority => Box::new(PrioritySliceBalance::new(SliceKind::LdSt)),
            SchemeKind::BrPriority => Box::new(PrioritySliceBalance::new(SliceKind::Br)),
            SchemeKind::GeneralBalance => Box::new(GeneralBalance::new()),
            SchemeKind::Fifo => Box::new(FifoSteering::paper()),
        }
    }

    /// Short machine-readable name accepted by [`SchemeKind::from_name`].
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Naive => "naive",
            SchemeKind::Modulo => "modulo",
            SchemeKind::StaticLdSt => "static",
            SchemeKind::LdStSlice => "ldst-slice",
            SchemeKind::BrSlice => "br-slice",
            SchemeKind::LdStNonSliceBalance => "ldst-nonslice",
            SchemeKind::BrNonSliceBalance => "br-nonslice",
            SchemeKind::LdStSliceBalance => "ldst-slicebal",
            SchemeKind::BrSliceBalance => "br-slicebal",
            SchemeKind::LdStPriority => "ldst-priority",
            SchemeKind::BrPriority => "br-priority",
            SchemeKind::GeneralBalance => "general",
            SchemeKind::Fifo => "fifo",
        }
    }

    /// Parses a scheme name as used on the command line (the inverse of
    /// [`SchemeKind::name`]).
    ///
    /// # Errors
    ///
    /// Returns the list of valid names on an unknown input.
    pub fn from_name(name: &str) -> Result<SchemeKind, String> {
        ALL_SCHEMES
            .into_iter()
            .find(|s| s.name() == name)
            .ok_or_else(|| {
                let valid: Vec<&str> = ALL_SCHEMES.iter().map(|s| s.name()).collect();
                format!("unknown scheme `{name}` (valid: {})", valid.join("|"))
            })
    }

    fn key(self) -> String {
        format!("{self:?}")
    }
}

/// Sampled-simulation parameters (DESIGN.md §7): the run's dynamic
/// window is fast-forwarded functionally, checkpointed every `period`
/// instructions, and each checkpoint seeds one measured interval —
/// `warmup` instructions of functional cache/predictor warming followed
/// by `interval` instructions of detailed simulation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SampleOpts {
    /// Distance between interval starts, in dynamic instructions.
    pub period: u64,
    /// Functional-warming instructions before each measured interval.
    /// Warming may overlap the next period — it updates only caches
    /// and the predictor, never the merged statistics.
    pub warmup: u64,
    /// Detailed (measured) instructions per interval. Must not exceed
    /// `period`, or successive measured windows would overlap and the
    /// merged counters would multiply-count instructions.
    pub interval: u64,
}

impl Default for SampleOpts {
    /// 100M instructions → 50 intervals of 100K detailed instructions
    /// each, 100K warming ahead of every interval (5% detailed
    /// coverage).
    fn default() -> SampleOpts {
        SampleOpts {
            period: 2_000_000,
            warmup: 100_000,
            interval: 100_000,
        }
    }
}

/// Harness options (scale, instruction budget, sampling).
#[derive(Copy, Clone, Debug)]
pub struct RunOpts {
    /// Workload scale.
    pub scale: Scale,
    /// Instruction budget per run (the paper's "100M after skipping
    /// 100M" becomes "everything the workload executes, capped here").
    pub max_insts: u64,
    /// Print progress lines to stderr.
    pub verbose: bool,
    /// When set, every [`Lab`] run is simulated by checkpointed
    /// sampling instead of one straight detailed pass.
    pub sampling: Option<SampleOpts>,
}

impl Default for RunOpts {
    fn default() -> RunOpts {
        RunOpts {
            scale: Scale::Default,
            max_insts: 5_000_000,
            verbose: false,
            sampling: None,
        }
    }
}

impl RunOpts {
    /// Parses harness options from command-line arguments
    /// (`--scale smoke|default|full|paper`, `--max-insts N`,
    /// `--sample-period N`, `--sample-warmup N`, `--sample-interval N`,
    /// `--verbose`). Unrecognised arguments are returned for the
    /// caller.
    ///
    /// `--scale paper` selects [`Scale::Paper`], widens the default
    /// instruction budget to the paper's 100M window and turns on
    /// sampling with the [`SampleOpts`] defaults; the `--sample-*`
    /// flags tune (or, at other scales, enable) sampling explicitly.
    ///
    /// # Panics
    ///
    /// Panics on a malformed value (unknown scale, non-numeric
    /// instruction budget).
    pub fn from_args(args: impl Iterator<Item = String>) -> (RunOpts, Vec<String>) {
        let mut opts = RunOpts::default();
        let mut rest = Vec::new();
        let mut args = args.peekable();
        let mut explicit_max = false;
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => {
                    let v = args.next().unwrap_or_default();
                    opts.scale = match v.as_str() {
                        "smoke" => Scale::Smoke,
                        "default" => Scale::Default,
                        "full" => Scale::Full,
                        "paper" => Scale::Paper,
                        other => panic!("unknown scale `{other}` (smoke|default|full|paper)"),
                    };
                }
                "--max-insts" => {
                    opts.max_insts = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--max-insts needs a number");
                    explicit_max = true;
                }
                "--sample-period" | "--sample-warmup" | "--sample-interval" => {
                    let v: u64 = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("{a} needs a number"));
                    let s = opts.sampling.get_or_insert_with(SampleOpts::default);
                    match a.as_str() {
                        "--sample-period" => {
                            assert!(v > 0, "--sample-period must be non-zero");
                            s.period = v;
                        }
                        "--sample-warmup" => s.warmup = v,
                        _ => {
                            assert!(v > 0, "--sample-interval must be non-zero");
                            s.interval = v;
                        }
                    }
                }
                "--verbose" => opts.verbose = true,
                _ => rest.push(a),
            }
        }
        if opts.scale == Scale::Paper {
            if !explicit_max {
                opts.max_insts = Scale::PAPER_INSTS;
            }
            let _ = opts.sampling.get_or_insert_with(SampleOpts::default);
        }
        (opts, rest)
    }
}

/// One simulation request: `(benchmark, machine, scheme)` — the unit
/// of work [`Lab::ensure`] distributes across worker threads.
pub type Run = (&'static str, Machine, SchemeKind);

/// Diagnostics of one sampled run (per `(benchmark, machine, scheme)`
/// combination): interval count, measured volume and the dispersion of
/// the per-interval IPCs.
#[derive(Clone, Debug, Default)]
pub struct SampleInfo {
    /// Measured intervals merged into the reported statistics.
    pub intervals: u64,
    /// Detailed (measured) dynamic instructions across all intervals.
    pub detailed_insts: u64,
    /// Detailed cycles across all intervals.
    pub detailed_cycles: u64,
    /// Mean of the per-interval IPCs.
    pub ipc_mean: f64,
    /// Standard error of that mean (0 with fewer than two intervals).
    pub ipc_stderr: f64,
    /// Functional-warming instructions actually executed (can be less
    /// than `intervals × warmup` where the stream ended mid-warming).
    pub warmed_insts: u64,
    /// Wall-clock seconds spent functionally warming, summed over the
    /// workers that ran this combination's intervals.
    pub warm_secs: f64,
    /// Wall-clock seconds spent in detailed simulation, summed over
    /// workers (≈ the serial cost of the measured intervals).
    pub detailed_secs: f64,
}

impl SampleInfo {
    /// The sampled-IPC estimate as `mean ± stderr` text.
    pub fn ipc_text(&self) -> String {
        format!("{:.3} ± {:.3}", self.ipc_mean, self.ipc_stderr)
    }
}

/// Diagnostics of one benchmark's functional fast-forward pass.
#[derive(Clone, Debug)]
pub struct FastForwardInfo {
    /// Dynamic instructions fast-forwarded (the whole sampled window).
    pub insts: u64,
    /// Checkpoints recorded.
    pub checkpoints: u64,
    /// Wall-clock seconds of the pass.
    pub secs: f64,
}

/// Memoising experiment driver: builds workloads once and simulates
/// each (benchmark, machine, scheme) combination at most once.
///
/// Batch interface: [`Lab::ensure`] takes a figure's whole run-set and
/// fans the missing combinations across `std::thread::scope` workers
/// (simulations are independent; the memoisation cache is merged after
/// the join), so `figures` saturates every core instead of simulating
/// one combination at a time.
///
/// With [`RunOpts::sampling`] set, a run is no longer the unit of
/// parallel work: each combination's dynamic window is fast-forwarded
/// once per benchmark (checkpointing every `period` instructions) and
/// the **sample intervals** of all requested combinations are fanned
/// across the same worker pool, then merged per combination in
/// checkpoint order (deterministic). This is what makes
/// `figures --scale paper` — 100M instructions per benchmark — run in
/// minutes instead of hours.
///
/// The memoisation cache is an ordered map, and everything rendered
/// from it iterates in key order, so repeated invocations produce
/// byte-identical artefacts (asserted by `figures::tests`; the
/// sampling report's wall-clock rate lines are the one deliberate
/// exception — its measurement rows are still byte-identical).
///
/// # Example
///
/// ```
/// use dca_bench::{Lab, Machine, RunOpts, SchemeKind};
/// use dca_workloads::Scale;
///
/// let mut lab = Lab::new(RunOpts {
///     scale: Scale::Smoke,
///     max_insts: 30_000,
///     ..RunOpts::default()
/// });
/// let s = lab.stats("li", Machine::Clustered, SchemeKind::GeneralBalance);
/// assert!(s.committed > 0);
/// ```
pub struct Lab {
    opts: RunOpts,
    workloads: HashMap<&'static str, Workload>,
    cache: BTreeMap<(String, &'static str, String), SimStats>,
    /// Per-benchmark checkpoint streams (sampled mode only).
    ffs: HashMap<&'static str, FastForward>,
    ff_info: BTreeMap<&'static str, FastForwardInfo>,
    sample_info: BTreeMap<(String, &'static str, String), SampleInfo>,
}

impl Lab {
    /// Creates a lab.
    pub fn new(opts: RunOpts) -> Lab {
        Lab {
            opts,
            workloads: HashMap::new(),
            cache: BTreeMap::new(),
            ffs: HashMap::new(),
            ff_info: BTreeMap::new(),
            sample_info: BTreeMap::new(),
        }
    }

    /// The options in use.
    pub fn opts(&self) -> RunOpts {
        self.opts
    }

    fn bench_name(bench: &str) -> &'static str {
        dca_workloads::NAMES
            .iter()
            .copied()
            .find(|n| *n == bench)
            .unwrap_or_else(|| panic!("unknown benchmark `{bench}`"))
    }

    fn workload(&mut self, bench: &str) -> &Workload {
        let scale = self.opts.scale;
        let name = Self::bench_name(bench);
        self.workloads
            .entry(name)
            .or_insert_with(|| dca_workloads::build(name, scale))
    }

    fn cache_key(bench: &str, machine: Machine, scheme: SchemeKind) -> (String, &'static str, String) {
        (bench.to_owned(), machine.key(), scheme.key())
    }

    /// Runs one combination (no cache involved).
    fn simulate(w: &Workload, machine: Machine, scheme: SchemeKind, max_insts: u64) -> SimStats {
        let cfg = machine.config();
        let mut steering = scheme.instantiate(&w.program);
        Simulator::new(&cfg, &w.program, w.memory.clone()).run(steering.as_mut(), max_insts)
    }

    /// Precomputes every not-yet-cached combination of `runs` in
    /// parallel, fanning the work across `std::thread::scope` workers
    /// (one per core, capped by the number of missing runs). Workload
    /// construction is parallelised the same way first. Results merge
    /// into the memoisation cache after the join, so subsequent
    /// [`Lab::stats`] calls are pure lookups.
    ///
    /// In sampled mode ([`RunOpts::sampling`]) the unit of parallel
    /// work is one *sample interval*, not one run; see
    /// [`Lab::ensure_sampled`].
    pub fn ensure(&mut self, runs: &[(&str, Machine, SchemeKind)]) {
        // Distinct missing combinations, first-seen order.
        let mut todo: Vec<Run> = Vec::new();
        for &(bench, machine, scheme) in runs {
            let run = (Self::bench_name(bench), machine, scheme);
            if !self.cache.contains_key(&Self::cache_key(run.0, machine, scheme))
                && !todo.contains(&run)
            {
                todo.push(run);
            }
        }
        if todo.is_empty() {
            return;
        }
        let benches: Vec<&'static str> = todo.iter().map(|&(b, _, _)| b).collect();
        self.build_workloads(&benches);

        if let Some(sampling) = self.opts.sampling {
            self.ensure_sampled(&todo, sampling);
            return;
        }
        if self.opts.verbose {
            eprintln!("[lab] running {} combinations in parallel", todo.len());
        }
        let max_insts = self.opts.max_insts;
        let workloads = &self.workloads;
        let results = Self::fan_out(&todo, |&(bench, machine, scheme)| {
            let w = &workloads[bench];
            let stats = Self::simulate(w, machine, scheme, max_insts);
            (Self::cache_key(bench, machine, scheme), stats)
        });
        self.cache.extend(results);
    }

    /// Sampled-mode batch driver: fast-forwards each distinct benchmark
    /// once (recording a checkpoint every `sampling.period`
    /// instructions), then schedules **every sample interval of every
    /// missing combination** across the worker pool — the intervals of
    /// one run are independent once its checkpoints exist, so a single
    /// (benchmark, machine, scheme) run saturates all cores instead of
    /// occupying one. Interval results are merged per combination in
    /// checkpoint order, which keeps the cached statistics (and every
    /// artefact rendered from them) deterministic.
    fn ensure_sampled(&mut self, todo: &[Run], sampling: SampleOpts) {
        assert!(
            sampling.interval <= sampling.period,
            "sample interval ({}) exceeds the checkpoint period ({}): successive \
             measured windows would overlap and multiply-count instructions",
            sampling.interval,
            sampling.period
        );
        let max_insts = self.opts.max_insts;
        // Checkpoint passes for benchmarks not yet fast-forwarded.
        let mut missing: Vec<&'static str> = Vec::new();
        for &(bench, _, _) in todo {
            if !self.ffs.contains_key(bench) && !missing.contains(&bench) {
                missing.push(bench);
            }
        }
        if !missing.is_empty() {
            if self.opts.verbose {
                eprintln!(
                    "[lab] fast-forwarding {} benchmark(s) ({} insts, checkpoint every {})",
                    missing.len(),
                    max_insts,
                    sampling.period
                );
            }
            let workloads = &self.workloads;
            let passes = Self::fan_out(&missing, |&bench| {
                let w = &workloads[bench];
                let t0 = Instant::now();
                let ff = fast_forward(&w.program, w.memory.clone(), sampling.period, max_insts);
                (bench, ff, t0.elapsed().as_secs_f64())
            });
            for (bench, ff, secs) in passes {
                self.ff_info.insert(
                    bench,
                    FastForwardInfo {
                        insts: ff.total_insts,
                        checkpoints: ff.checkpoints.len() as u64,
                        secs,
                    },
                );
                self.ffs.insert(bench, ff);
            }
        }

        // One work item per (combination, checkpoint).
        let items: Vec<(Run, usize)> = todo
            .iter()
            .flat_map(|&run| {
                (0..self.ffs[run.0].checkpoints.len()).map(move |idx| (run, idx))
            })
            .collect();
        if self.opts.verbose {
            eprintln!(
                "[lab] sampling {} combinations × intervals = {} detailed runs",
                todo.len(),
                items.len()
            );
        }
        let workloads = &self.workloads;
        let ffs = &self.ffs;
        let results = Self::fan_out(&items, |&((bench, machine, scheme), idx)| {
            let w = &workloads[bench];
            let ckpt = &ffs[bench].checkpoints[idx];
            let cfg = machine.config();
            let mut steering = scheme.instantiate(&w.program);
            let mut sim = Simulator::resume_from(&cfg, &w.program, ckpt);
            let t0 = Instant::now();
            let warmed = sim.warm_functional(sampling.warmup);
            let warm_secs = t0.elapsed().as_secs_f64();
            let budget = (ckpt.seq() + warmed + sampling.interval).min(max_insts);
            let t1 = Instant::now();
            let stats = sim.run_mut(steering.as_mut(), budget);
            let detailed_secs = t1.elapsed().as_secs_f64();
            (
                Self::cache_key(bench, machine, scheme),
                idx,
                stats,
                warmed,
                warm_secs,
                detailed_secs,
            )
        });

        // Deterministic merge: per combination, in checkpoint order.
        let mut by_run: BTreeMap<_, Vec<_>> = BTreeMap::new();
        for (key, idx, stats, warmed, warm_secs, detailed_secs) in results {
            by_run
                .entry(key)
                .or_default()
                .push((idx, stats, warmed, warm_secs, detailed_secs));
        }
        for (key, mut intervals) in by_run {
            intervals.sort_by_key(|&(idx, ..)| idx);
            let mut merged = SimStats::default();
            let mut info = SampleInfo::default();
            let mut ipcs: Vec<f64> = Vec::new();
            for (_, stats, warmed, warm_secs, detailed_secs) in &intervals {
                // Warming cost is real even when the stream ends before
                // the measured window opens.
                info.warmed_insts += warmed;
                info.warm_secs += warm_secs;
                // A checkpoint taken right where the stream ended
                // contributes an empty interval; skip it.
                if stats.committed == 0 {
                    continue;
                }
                ipcs.push(stats.ipc());
                merged.merge(stats);
                info.intervals += 1;
                info.detailed_insts += stats.committed;
                info.detailed_cycles += stats.cycles;
                info.detailed_secs += detailed_secs;
            }
            let n = ipcs.len() as f64;
            if n > 0.0 {
                info.ipc_mean = ipcs.iter().sum::<f64>() / n;
            }
            if n > 1.0 {
                let var = ipcs
                    .iter()
                    .map(|x| (x - info.ipc_mean).powi(2))
                    .sum::<f64>()
                    / (n - 1.0);
                info.ipc_stderr = (var / n).sqrt();
            }
            self.sample_info.insert(key.clone(), info);
            self.cache.insert(key, merged);
        }
    }

    /// Sampling diagnostics of a combination simulated in sampled mode
    /// (`None` for unsampled runs).
    pub fn sample_info(&self, bench: &str, machine: Machine, scheme: SchemeKind) -> Option<&SampleInfo> {
        self.sample_info.get(&Self::cache_key(bench, machine, scheme))
    }

    /// Fast-forward diagnostics of a benchmark's checkpoint pass
    /// (`None` before the benchmark was sampled).
    pub fn fast_forward_info(&self, bench: &str) -> Option<&FastForwardInfo> {
        self.ff_info.get(Self::bench_name(bench))
    }

    /// Builds (in parallel) every listed workload not yet cached and
    /// returns the cache, so callers can hand out `&Workload`
    /// references without rebuilding. Duplicates are fine.
    pub(crate) fn build_workloads(
        &mut self,
        benches: &[&'static str],
    ) -> &HashMap<&'static str, Workload> {
        let scale = self.opts.scale;
        let mut missing: Vec<&'static str> = Vec::new();
        for &bench in benches {
            if !self.workloads.contains_key(bench) && !missing.contains(&bench) {
                missing.push(bench);
            }
        }
        let built: Vec<(&'static str, Workload)> =
            Self::fan_out(&missing, |&name| (name, dca_workloads::build(name, scale)));
        self.workloads.extend(built);
        &self.workloads
    }

    /// Maps `f` over `items` on scoped worker threads (work-stealing
    /// via a shared atomic index) and returns the results; their order
    /// is unspecified. Runs inline when a single worker suffices.
    fn fan_out<T: Sync, R: Send>(
        items: &[T],
        f: impl Fn(&T) -> R + Sync,
    ) -> Vec<R> {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(items.len());
        if workers <= 1 {
            return items.iter().map(f).collect();
        }
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else { break };
                            out.push(f(item));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("lab worker panicked"))
                .collect()
        })
    }

    /// Simulates (or returns the memoised result of) one combination.
    pub fn stats(&mut self, bench: &str, machine: Machine, scheme: SchemeKind) -> SimStats {
        let key = Self::cache_key(bench, machine, scheme);
        if let Some(s) = self.cache.get(&key) {
            return s.clone();
        }
        if self.opts.verbose {
            eprintln!("[lab] {bench} / {} / {}", machine.key(), scheme.label());
        }
        if self.opts.sampling.is_some() {
            // Sampled runs always go through the batch driver: even a
            // single combination fans its intervals across the pool.
            self.ensure(&[(bench, machine, scheme)]);
            return self.cache[&key].clone();
        }
        let max = self.opts.max_insts;
        let w = self.workload(bench);
        let stats = Self::simulate(w, machine, scheme, max);
        self.cache.insert(key, stats.clone());
        stats
    }

    /// Base-machine run for `bench` (the speed-up denominator).
    pub fn base(&mut self, bench: &str) -> SimStats {
        self.stats(bench, Machine::Base, SchemeKind::Naive)
    }

    /// Speed-up (percent) of a combination over the base machine.
    pub fn speedup(&mut self, bench: &str, machine: Machine, scheme: SchemeKind) -> f64 {
        let s = self.stats(bench, machine, scheme);
        let b = self.base(bench);
        s.speedup_over(&b)
    }

    /// Number of simulations performed so far (for tests).
    pub fn runs(&self) -> usize {
        self.cache.len()
    }
}

/// Shared `main` for the figure binaries: parses common options,
/// regenerates the requested artefacts (or the one fixed by the thin
/// per-figure binaries), prints them and saves them under `results/`.
///
/// # Panics
///
/// Panics on unknown figure names or malformed options — these are
/// developer-facing binaries.
pub fn run_cli(fixed: Option<&'static str>) {
    run_cli_with(std::env::args().skip(1), fixed);
}

/// [`run_cli`] over an explicit argument list (callers that already
/// consumed part of the command line, e.g. the `dca figures`
/// subcommand, pass the remainder here).
///
/// # Panics
///
/// Panics on malformed options or an unknown figure id.
pub fn run_cli_with(args: impl Iterator<Item = String>, fixed: Option<&'static str>) {
    let (opts, rest) = RunOpts::from_args(args);
    let mut lab = Lab::new(opts);
    let out = std::path::PathBuf::from("results");
    let selected: Vec<String> = match fixed {
        Some(f) => vec![f.to_string()],
        None if rest.is_empty() => vec!["all".to_string()],
        None => rest,
    };
    let t0 = std::time::Instant::now();
    for sel in selected {
        if sel == "all" {
            for fig in figures::all(&mut lab) {
                emit(&fig, &out);
            }
        } else {
            let f = figures::by_name(&sel)
                .unwrap_or_else(|| panic!("unknown figure `{sel}`; try `all`"));
            let fig = f(&mut lab);
            emit(&fig, &out);
        }
    }
    eprintln!(
        "[lab] {} simulation runs, {:.1}s",
        lab.runs(),
        t0.elapsed().as_secs_f64()
    );
}

fn emit(fig: &figures::Figure, out: &std::path::Path) {
    println!("# {}\n\n{}", fig.title, fig.body);
    match fig.save(out) {
        Ok(p) => eprintln!("[lab] wrote {}", p.display()),
        Err(e) => eprintln!("[lab] could not write {}: {e}", fig.id),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_opts() -> RunOpts {
        RunOpts {
            scale: Scale::Smoke,
            max_insts: 60_000,
            verbose: false,
            sampling: None,
        }
    }

    #[test]
    fn lab_memoises_runs() {
        let mut lab = Lab::new(smoke_opts());
        let a = lab.stats("compress", Machine::Clustered, SchemeKind::GeneralBalance);
        assert_eq!(lab.runs(), 1);
        let b = lab.stats("compress", Machine::Clustered, SchemeKind::GeneralBalance);
        assert_eq!(lab.runs(), 1, "second call must hit the cache");
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn speedup_is_relative_to_base() {
        let mut lab = Lab::new(smoke_opts());
        let s = lab.speedup("compress", Machine::Clustered, SchemeKind::GeneralBalance);
        // Any steering on the clustered machine should not be
        // dramatically slower than the base machine.
        assert!(s > -30.0, "speedup {s}");
        assert_eq!(lab.runs(), 2, "scheme + base");
    }

    #[test]
    fn opts_parse() {
        let (o, rest) = RunOpts::from_args(
            ["--scale", "smoke", "fig03", "--max-insts", "1234", "--verbose"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(o.scale, Scale::Smoke);
        assert_eq!(o.max_insts, 1234);
        assert!(o.verbose);
        assert!(o.sampling.is_none());
        assert_eq!(rest, vec!["fig03"]);
    }

    #[test]
    fn paper_scale_enables_sampling_with_the_paper_window() {
        let (o, rest) =
            RunOpts::from_args(["--scale", "paper"].iter().map(|s| s.to_string()));
        assert_eq!(o.scale, Scale::Paper);
        assert_eq!(o.max_insts, Scale::PAPER_INSTS);
        assert_eq!(o.sampling, Some(SampleOpts::default()));
        assert!(rest.is_empty());

        let (o, _) = RunOpts::from_args(
            ["--scale", "paper", "--max-insts", "500000", "--sample-period", "50000",
             "--sample-warmup", "0", "--sample-interval", "10000"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(o.max_insts, 500_000, "explicit budget wins");
        assert_eq!(
            o.sampling,
            Some(SampleOpts { period: 50_000, warmup: 0, interval: 10_000 })
        );
    }

    #[test]
    fn sample_flags_enable_sampling_at_any_scale() {
        let (o, _) = RunOpts::from_args(
            ["--sample-period", "8000"].iter().map(|s| s.to_string()),
        );
        assert_eq!(o.scale, Scale::Default);
        assert_eq!(o.sampling.expect("enabled").period, 8_000);
    }

    /// Smoke-scale sampling: the window is tiny, so warming must cover
    /// the workload's cache footprint for the IPC estimate to converge
    /// (detached warming rebuilds cache/predictor state per interval —
    /// DESIGN.md §7 discusses the bias).
    fn sampled_opts() -> RunOpts {
        RunOpts {
            scale: Scale::Smoke,
            max_insts: 60_000,
            verbose: false,
            sampling: Some(SampleOpts {
                period: 10_000,
                warmup: 8_000,
                interval: 6_000,
            }),
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the checkpoint period")]
    fn overlapping_sample_intervals_are_rejected() {
        let mut lab = Lab::new(RunOpts {
            sampling: Some(SampleOpts {
                period: 1_000,
                warmup: 0,
                interval: 2_000,
            }),
            ..smoke_opts()
        });
        let _ = lab.stats("compress", Machine::Clustered, SchemeKind::Modulo);
    }

    #[test]
    fn sampled_runs_record_interval_diagnostics() {
        let mut lab = Lab::new(sampled_opts());
        let s = lab.stats("compress", Machine::Clustered, SchemeKind::GeneralBalance);
        assert!(s.committed > 0);
        let info = lab
            .sample_info("compress", Machine::Clustered, SchemeKind::GeneralBalance)
            .expect("sampled run has diagnostics");
        assert!(info.intervals > 1, "smoke window yields several intervals");
        assert_eq!(info.detailed_insts, s.committed);
        assert_eq!(info.detailed_cycles, s.cycles);
        assert!(info.ipc_stderr >= 0.0);
        let ff = lab.fast_forward_info("compress").expect("fast-forwarded");
        // A trailing checkpoint whose warmup exhausts the stream
        // contributes no measured interval.
        assert!(ff.checkpoints >= info.intervals, "checkpoints cover the intervals");
        assert!(ff.insts <= 60_000);
    }

    #[test]
    fn sampled_runs_are_deterministic() {
        let run = ("compress", Machine::Clustered, SchemeKind::Modulo);
        let mut a = Lab::new(sampled_opts());
        let mut b = Lab::new(sampled_opts());
        let (sa, sb) = (a.stats(run.0, run.1, run.2), b.stats(run.0, run.1, run.2));
        assert_eq!(sa.cycles, sb.cycles);
        assert_eq!(sa.committed, sb.committed);
        assert_eq!(sa.copies, sb.copies);
        assert_eq!(sa.balance, sb.balance);
        let (ia, ib) = (
            a.sample_info(run.0, run.1, run.2).unwrap(),
            b.sample_info(run.0, run.1, run.2).unwrap(),
        );
        assert_eq!(ia.intervals, ib.intervals);
        assert!((ia.ipc_mean - ib.ipc_mean).abs() < 1e-15);
        assert!((ia.ipc_stderr - ib.ipc_stderr).abs() < 1e-15);
    }

    /// ISSUE 2 acceptance: the sampled IPC estimate must track the full
    /// detailed run. At smoke scale a full run is cheap, so the
    /// convergence is pinned here (the per-interval cold-backend
    /// ramp-up biases sampled IPC slightly low; 10% is comfortably
    /// above the observed error and far below scheme-ranking deltas).
    #[test]
    fn sampled_ipc_converges_to_the_full_run() {
        let full_opts = RunOpts {
            scale: Scale::Smoke,
            max_insts: 60_000,
            verbose: false,
            sampling: None,
        };
        for (machine, scheme) in [
            (Machine::Base, SchemeKind::Naive),
            (Machine::Clustered, SchemeKind::GeneralBalance),
        ] {
            let full = Lab::new(full_opts).stats("compress", machine, scheme);
            let sampled = Lab::new(sampled_opts()).stats("compress", machine, scheme);
            let rel = (sampled.ipc() - full.ipc()).abs() / full.ipc();
            assert!(
                rel < 0.10,
                "{machine:?}/{scheme:?}: sampled {} vs full {} ({}% off)",
                sampled.ipc(),
                full.ipc(),
                (rel * 100.0).round()
            );
        }
    }

    #[test]
    fn ensure_prefills_cache_and_matches_serial() {
        let mut lab = Lab::new(smoke_opts());
        lab.ensure(&[
            ("compress", Machine::Clustered, SchemeKind::Modulo),
            ("compress", Machine::Clustered, SchemeKind::Modulo), // duplicates collapse
            ("li", Machine::Clustered, SchemeKind::Modulo),
        ]);
        assert_eq!(lab.runs(), 2, "two distinct combinations");
        let a = lab.stats("compress", Machine::Clustered, SchemeKind::Modulo);
        assert_eq!(lab.runs(), 2, "ensure pre-filled the cache");
        let mut serial = Lab::new(smoke_opts());
        let b = serial.stats("compress", Machine::Clustered, SchemeKind::Modulo);
        assert_eq!(a.cycles, b.cycles, "parallel and serial runs are identical");
        assert_eq!(a.copies, b.copies);
        assert_eq!(a.balance, b.balance);
    }

    #[test]
    fn every_scheme_instantiates() {
        let w = dca_workloads::build("compress", Scale::Smoke);
        for k in ALL_SCHEMES {
            let s = k.instantiate(&w.program);
            assert!(!s.name().is_empty());
            assert!(!k.label().is_empty());
        }
    }
}
