//! # dca-isa — the mini RISC instruction set of the DCA reproduction
//!
//! This crate defines the Alpha-flavoured load/store ISA executed by the
//! functional interpreter (`dca-prog`) and timed by the clustered
//! superscalar simulator (`dca-sim`). It deliberately stays tiny: the
//! paper ("Dynamic Cluster Assignment Mechanisms", HPCA 2000) only needs
//! integer ALU operations (simple and complex), floating-point
//! operations, loads/stores and conditional branches — enough to express
//! the SpecInt95-analogue workloads and to give the steering heuristics
//! the same decision surface they had on Alpha binaries:
//!
//! * **simple integer** instructions can execute in *either* cluster,
//! * **complex integer** (multiply/divide) only in the integer cluster,
//! * **floating point** only in the FP cluster,
//! * **memory** instructions split into a steerable effective-address
//!   micro-operation plus a memory access handled by the unified
//!   disambiguation logic,
//! * **branches** are simple integer operations and define the Br slice.
//!
//! # Example
//!
//! ```
//! use dca_isa::{Inst, Reg, Opcode, ClusterNeed};
//!
//! let add = Inst::add(Reg::int(1), Reg::int(2), Reg::int(3));
//! assert_eq!(add.op, Opcode::Add);
//! assert_eq!(add.op.cluster_need(), ClusterNeed::Either);
//! assert_eq!(add.to_string(), "add r1, r2, r3");
//!
//! let mul = Inst::mul(Reg::int(4), Reg::int(1), Reg::int(1));
//! assert_eq!(mul.op.cluster_need(), ClusterNeed::IntOnly);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod inst;
mod op;
mod reg;

pub use inst::{Inst, InstError, Label};
pub use op::{ClusterNeed, ExecClass, Opcode};
pub use reg::{Reg, RegParseError, NUM_FP_REGS, NUM_INT_REGS};
