//! Instruction encoding: opcode, operands, immediate and branch target.

use std::fmt;

use crate::{ExecClass, Opcode, Reg};

/// An opaque control-flow label, resolved to a basic-block index by
/// `dca-prog` during program layout.
///
/// Labels are plain `u32` indices so that `dca-isa` stays independent of
/// the program representation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(pub u32);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// One static machine instruction.
///
/// The operand layout is fixed per opcode family:
///
/// * ALU ops: `dst`, `src1`, and either `src2` or the immediate,
/// * loads: `dst = mem[src1 + imm]`,
/// * stores: `mem[src1 + imm] = src2`,
/// * branches: compare `src1` with `src2` (or the immediate), jump to
///   `target`,
/// * `li`: `dst = imm`.
///
/// Use the named constructors ([`Inst::add`], [`Inst::ld`], …) rather
/// than building the struct literally; they keep the layout invariants
/// and [`Inst::validate`] checks them.
///
/// # Example
///
/// ```
/// use dca_isa::{Inst, Label, Reg};
///
/// let ld = Inst::ld(Reg::int(1), Reg::int(2), 16);
/// assert_eq!(ld.to_string(), "ld r1, 16(r2)");
///
/// let b = Inst::beq(Reg::int(1), Reg::ZERO, Label(7));
/// assert_eq!(b.to_string(), "beq r1, r0, L7");
/// assert!(b.validate().is_ok());
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Inst {
    /// Operation.
    pub op: Opcode,
    /// Destination register, if the instruction writes one.
    pub dst: Option<Reg>,
    /// First source register (base register for memory ops).
    pub src1: Option<Reg>,
    /// Second source register (data register for stores).
    pub src2: Option<Reg>,
    /// Immediate operand: ALU immediate, memory displacement, or the
    /// comparison constant of an immediate-form branch.
    pub imm: i64,
    /// Control-transfer target, present on branches and jumps.
    pub target: Option<Label>,
}

/// Validation error produced by [`Inst::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstError {
    inst: Box<Inst>,
    reason: &'static str,
}

impl fmt::Display for InstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction `{:?}`: {}", self.inst, self.reason)
    }
}

impl std::error::Error for InstError {}

impl Inst {
    fn raw(op: Opcode) -> Inst {
        Inst {
            op,
            dst: None,
            src1: None,
            src2: None,
            imm: 0,
            target: None,
        }
    }

    // ----- constructors: simple integer ---------------------------------

    /// Three-register ALU operation `dst = src1 <op> src2`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not a register-register ALU opcode (see
    /// [`Inst::validate`]).
    pub fn alu(op: Opcode, dst: Reg, a: Reg, b: Reg) -> Inst {
        let i = Inst {
            dst: Some(dst),
            src1: Some(a),
            src2: Some(b),
            ..Inst::raw(op)
        };
        i.expect_valid()
    }

    /// Immediate-form ALU operation `dst = src1 <op> imm`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not an ALU opcode.
    pub fn alui(op: Opcode, dst: Reg, a: Reg, imm: i64) -> Inst {
        let i = Inst {
            dst: Some(dst),
            src1: Some(a),
            imm,
            ..Inst::raw(op)
        };
        i.expect_valid()
    }

    /// `add dst, a, b`.
    pub fn add(dst: Reg, a: Reg, b: Reg) -> Inst {
        Inst::alu(Opcode::Add, dst, a, b)
    }

    /// `add dst, a, #imm`.
    pub fn addi(dst: Reg, a: Reg, imm: i64) -> Inst {
        Inst::alui(Opcode::Add, dst, a, imm)
    }

    /// `sub dst, a, b`.
    pub fn sub(dst: Reg, a: Reg, b: Reg) -> Inst {
        Inst::alu(Opcode::Sub, dst, a, b)
    }

    /// `and dst, a, b`.
    pub fn and(dst: Reg, a: Reg, b: Reg) -> Inst {
        Inst::alu(Opcode::And, dst, a, b)
    }

    /// `or dst, a, b`.
    pub fn or(dst: Reg, a: Reg, b: Reg) -> Inst {
        Inst::alu(Opcode::Or, dst, a, b)
    }

    /// `xor dst, a, b`.
    pub fn xor(dst: Reg, a: Reg, b: Reg) -> Inst {
        Inst::alu(Opcode::Xor, dst, a, b)
    }

    /// `sll dst, a, #imm` (shift left by immediate).
    pub fn slli(dst: Reg, a: Reg, imm: i64) -> Inst {
        Inst::alui(Opcode::Sll, dst, a, imm)
    }

    /// `srl dst, a, #imm` (logical shift right by immediate).
    pub fn srli(dst: Reg, a: Reg, imm: i64) -> Inst {
        Inst::alui(Opcode::Srl, dst, a, imm)
    }

    /// `slt dst, a, b` (signed set-less-than).
    pub fn slt(dst: Reg, a: Reg, b: Reg) -> Inst {
        Inst::alu(Opcode::Slt, dst, a, b)
    }

    /// `seq dst, a, b` (set-if-equal).
    pub fn seq(dst: Reg, a: Reg, b: Reg) -> Inst {
        Inst::alu(Opcode::Seq, dst, a, b)
    }

    /// `mov dst, src`.
    pub fn mov(dst: Reg, src: Reg) -> Inst {
        Inst {
            dst: Some(dst),
            src1: Some(src),
            ..Inst::raw(Opcode::Mov)
        }
        .expect_valid()
    }

    /// `li dst, #imm` (load immediate).
    pub fn li(dst: Reg, imm: i64) -> Inst {
        Inst {
            dst: Some(dst),
            imm,
            ..Inst::raw(Opcode::Li)
        }
        .expect_valid()
    }

    // ----- constructors: complex integer --------------------------------

    /// `mul dst, a, b` (integer cluster only).
    pub fn mul(dst: Reg, a: Reg, b: Reg) -> Inst {
        Inst::alu(Opcode::Mul, dst, a, b)
    }

    /// `div dst, a, b` (integer cluster only).
    pub fn div(dst: Reg, a: Reg, b: Reg) -> Inst {
        Inst::alu(Opcode::Div, dst, a, b)
    }

    /// `rem dst, a, b` (integer cluster only).
    pub fn rem(dst: Reg, a: Reg, b: Reg) -> Inst {
        Inst::alu(Opcode::Rem, dst, a, b)
    }

    // ----- constructors: floating point ----------------------------------

    /// `fadd dst, a, b`.
    pub fn fadd(dst: Reg, a: Reg, b: Reg) -> Inst {
        Inst::alu(Opcode::FAdd, dst, a, b)
    }

    /// `fmul dst, a, b`.
    pub fn fmul(dst: Reg, a: Reg, b: Reg) -> Inst {
        Inst::alu(Opcode::FMul, dst, a, b)
    }

    /// `fdiv dst, a, b`.
    pub fn fdiv(dst: Reg, a: Reg, b: Reg) -> Inst {
        Inst::alu(Opcode::FDiv, dst, a, b)
    }

    /// `fcmplt dst, a, b`: integer `dst = (a < b) as i64` on FP sources.
    pub fn fcmplt(dst: Reg, a: Reg, b: Reg) -> Inst {
        Inst::alu(Opcode::FCmpLt, dst, a, b)
    }

    /// `cvtif dst, src`: convert integer to FP.
    pub fn cvtif(dst: Reg, src: Reg) -> Inst {
        Inst {
            dst: Some(dst),
            src1: Some(src),
            ..Inst::raw(Opcode::CvtIf)
        }
        .expect_valid()
    }

    /// `cvtfi dst, src`: convert FP to integer (truncating).
    pub fn cvtfi(dst: Reg, src: Reg) -> Inst {
        Inst {
            dst: Some(dst),
            src1: Some(src),
            ..Inst::raw(Opcode::CvtFi)
        }
        .expect_valid()
    }

    // ----- constructors: memory ------------------------------------------

    /// `ld dst, imm(base)`.
    pub fn ld(dst: Reg, base: Reg, offset: i64) -> Inst {
        Inst {
            dst: Some(dst),
            src1: Some(base),
            imm: offset,
            ..Inst::raw(Opcode::Ld)
        }
        .expect_valid()
    }

    /// `st data, imm(base)` — note the data register is `src2`.
    pub fn st(data: Reg, base: Reg, offset: i64) -> Inst {
        Inst {
            src1: Some(base),
            src2: Some(data),
            imm: offset,
            ..Inst::raw(Opcode::St)
        }
        .expect_valid()
    }

    /// `fld dst, imm(base)` — FP load.
    pub fn fld(dst: Reg, base: Reg, offset: i64) -> Inst {
        Inst {
            dst: Some(dst),
            src1: Some(base),
            imm: offset,
            ..Inst::raw(Opcode::FLd)
        }
        .expect_valid()
    }

    /// `fst data, imm(base)` — FP store.
    pub fn fst(data: Reg, base: Reg, offset: i64) -> Inst {
        Inst {
            src1: Some(base),
            src2: Some(data),
            imm: offset,
            ..Inst::raw(Opcode::FSt)
        }
        .expect_valid()
    }

    // ----- constructors: control ------------------------------------------

    fn branch(op: Opcode, a: Reg, b: Reg, target: Label) -> Inst {
        Inst {
            src1: Some(a),
            src2: Some(b),
            target: Some(target),
            ..Inst::raw(op)
        }
        .expect_valid()
    }

    /// `beq a, b, target`.
    pub fn beq(a: Reg, b: Reg, target: Label) -> Inst {
        Inst::branch(Opcode::Beq, a, b, target)
    }

    /// `bne a, b, target`.
    pub fn bne(a: Reg, b: Reg, target: Label) -> Inst {
        Inst::branch(Opcode::Bne, a, b, target)
    }

    /// `blt a, b, target` (signed).
    pub fn blt(a: Reg, b: Reg, target: Label) -> Inst {
        Inst::branch(Opcode::Blt, a, b, target)
    }

    /// `bge a, b, target` (signed).
    pub fn bge(a: Reg, b: Reg, target: Label) -> Inst {
        Inst::branch(Opcode::Bge, a, b, target)
    }

    fn branchi(op: Opcode, a: Reg, imm: i64, target: Label) -> Inst {
        Inst {
            src1: Some(a),
            imm,
            target: Some(target),
            ..Inst::raw(op)
        }
        .expect_valid()
    }

    /// `beq a, #imm, target` (immediate-compare form).
    pub fn beqi(a: Reg, imm: i64, target: Label) -> Inst {
        Inst::branchi(Opcode::Beq, a, imm, target)
    }

    /// `bne a, #imm, target`.
    pub fn bnei(a: Reg, imm: i64, target: Label) -> Inst {
        Inst::branchi(Opcode::Bne, a, imm, target)
    }

    /// `blt a, #imm, target` (signed).
    pub fn blti(a: Reg, imm: i64, target: Label) -> Inst {
        Inst::branchi(Opcode::Blt, a, imm, target)
    }

    /// `bge a, #imm, target` (signed).
    pub fn bgei(a: Reg, imm: i64, target: Label) -> Inst {
        Inst::branchi(Opcode::Bge, a, imm, target)
    }

    /// `j target` (unconditional direct jump).
    pub fn j(target: Label) -> Inst {
        Inst {
            target: Some(target),
            ..Inst::raw(Opcode::J)
        }
        .expect_valid()
    }

    /// `halt`.
    pub fn halt() -> Inst {
        Inst::raw(Opcode::Halt)
    }

    /// `nop`.
    pub fn nop() -> Inst {
        Inst::raw(Opcode::Nop)
    }

    // ----- accessors -------------------------------------------------------

    /// Iterator over the source registers actually read, skipping the
    /// hard-wired zero register (which never creates a dependence).
    pub fn srcs(&self) -> impl Iterator<Item = Reg> + '_ {
        [self.src1, self.src2]
            .into_iter()
            .flatten()
            .filter(|r| !r.is_zero())
    }

    /// The destination register if the instruction writes one, with
    /// writes to the zero register filtered out (they are discarded).
    pub fn effective_dst(&self) -> Option<Reg> {
        self.dst.filter(|r| !r.is_zero())
    }

    /// The functional-unit class (delegates to [`Opcode::class`]).
    pub fn class(&self) -> ExecClass {
        self.op.class()
    }

    /// Checks the operand-layout invariants for this opcode family.
    ///
    /// # Errors
    ///
    /// Returns an [`InstError`] describing the violated invariant, e.g.
    /// a store with a destination register or a branch without a target.
    pub fn validate(&self) -> Result<(), InstError> {
        let fail = |reason| {
            Err(InstError {
                inst: Box::new(*self),
                reason,
            })
        };
        use Opcode::*;
        match self.op {
            Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Seq | Mul | Div | Rem | FAdd
            | FSub | FMul | FDiv | FCmpLt => {
                if self.dst.is_none() {
                    return fail("ALU operation requires a destination");
                }
                if self.src1.is_none() {
                    return fail("ALU operation requires src1");
                }
                if self.target.is_some() {
                    return fail("ALU operation cannot have a branch target");
                }
            }
            Mov | FMov | CvtIf | CvtFi => {
                if self.dst.is_none() || self.src1.is_none() {
                    return fail("move/convert requires dst and src1");
                }
                if self.src2.is_some() {
                    return fail("move/convert takes a single source");
                }
            }
            Li => {
                if self.dst.is_none() {
                    return fail("li requires a destination");
                }
                if self.src1.is_some() || self.src2.is_some() {
                    return fail("li takes no register sources");
                }
            }
            Ld | FLd => {
                if self.dst.is_none() || self.src1.is_none() {
                    return fail("load requires dst and base register");
                }
                if self.src2.is_some() {
                    return fail("load takes a single source (the base)");
                }
            }
            St | FSt => {
                if self.dst.is_some() {
                    return fail("store cannot have a destination");
                }
                if self.src1.is_none() || self.src2.is_none() {
                    return fail("store requires base (src1) and data (src2)");
                }
            }
            Beq | Bne | Blt | Bge => {
                if self.target.is_none() {
                    return fail("branch requires a target");
                }
                if self.dst.is_some() {
                    return fail("branch cannot have a destination");
                }
                if self.src1.is_none() {
                    return fail("branch requires src1");
                }
            }
            J => {
                if self.target.is_none() {
                    return fail("jump requires a target");
                }
                if self.dst.is_some() || self.src1.is_some() || self.src2.is_some() {
                    return fail("jump takes no operands");
                }
            }
            Halt | Nop => {
                if self.dst.is_some() || self.src1.is_some() || self.src2.is_some() {
                    return fail("halt/nop take no operands");
                }
            }
        }
        // Bank checks: FP opcodes read/write FP registers, etc.
        let int_dst = |r: Option<Reg>| r.is_none_or(|r| r.is_int());
        let fp_dst = |r: Option<Reg>| r.is_none_or(|r| r.is_fp());
        match self.op {
            FAdd | FSub | FMul | FDiv | FMov => {
                if !fp_dst(self.dst) || !fp_dst(self.src1) || !fp_dst(self.src2) {
                    return fail("FP arithmetic uses FP registers");
                }
            }
            FCmpLt => {
                if !int_dst(self.dst) || !fp_dst(self.src1) || !fp_dst(self.src2) {
                    return fail("fcmplt writes an integer register from FP sources");
                }
            }
            CvtIf => {
                if !fp_dst(self.dst) || !int_dst(self.src1) {
                    return fail("cvtif converts int -> fp");
                }
            }
            CvtFi => {
                if !int_dst(self.dst) || !fp_dst(self.src1) {
                    return fail("cvtfi converts fp -> int");
                }
            }
            FLd => {
                if !fp_dst(self.dst) || !int_dst(self.src1) {
                    return fail("fld loads an FP register via an integer base");
                }
            }
            FSt => {
                if !int_dst(self.src1) || !fp_dst(self.src2) {
                    return fail("fst stores an FP register via an integer base");
                }
            }
            _ => {
                if !int_dst(self.dst) || !int_dst(self.src1) || !int_dst(self.src2) {
                    return fail("integer operation uses integer registers");
                }
            }
        }
        Ok(())
    }

    fn expect_valid(self) -> Inst {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
        self
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.op.mnemonic();
        use Opcode::*;
        match self.op {
            Ld | FLd => write!(
                f,
                "{m} {}, {}({})",
                self.dst.unwrap(),
                self.imm,
                self.src1.unwrap()
            ),
            St | FSt => write!(
                f,
                "{m} {}, {}({})",
                self.src2.unwrap(),
                self.imm,
                self.src1.unwrap()
            ),
            Beq | Bne | Blt | Bge => match self.src2 {
                Some(b) => write!(
                    f,
                    "{m} {}, {}, {}",
                    self.src1.unwrap(),
                    b,
                    self.target.unwrap()
                ),
                None => write!(
                    f,
                    "{m} {}, #{}, {}",
                    self.src1.unwrap(),
                    self.imm,
                    self.target.unwrap()
                ),
            },
            J => write!(f, "{m} {}", self.target.unwrap()),
            Halt | Nop => f.write_str(m),
            Li => write!(f, "{m} {}, #{}", self.dst.unwrap(), self.imm),
            Mov | FMov | CvtIf | CvtFi => {
                write!(f, "{m} {}, {}", self.dst.unwrap(), self.src1.unwrap())
            }
            _ => match self.src2 {
                Some(b) => write!(f, "{m} {}, {}, {}", self.dst.unwrap(), self.src1.unwrap(), b),
                None => write!(
                    f,
                    "{m} {}, {}, #{}",
                    self.dst.unwrap(),
                    self.src1.unwrap(),
                    self.imm
                ),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_produce_valid_instructions() {
        let insts = [
            Inst::add(Reg::int(1), Reg::int(2), Reg::int(3)),
            Inst::addi(Reg::int(1), Reg::int(2), -8),
            Inst::li(Reg::int(9), 1234),
            Inst::mov(Reg::int(4), Reg::int(5)),
            Inst::mul(Reg::int(1), Reg::int(2), Reg::int(3)),
            Inst::ld(Reg::int(1), Reg::int(30), 16),
            Inst::st(Reg::int(2), Reg::int(30), -16),
            Inst::fld(Reg::fp(1), Reg::int(30), 0),
            Inst::fst(Reg::fp(1), Reg::int(30), 8),
            Inst::fadd(Reg::fp(1), Reg::fp(2), Reg::fp(3)),
            Inst::fcmplt(Reg::int(1), Reg::fp(1), Reg::fp(2)),
            Inst::cvtif(Reg::fp(0), Reg::int(1)),
            Inst::cvtfi(Reg::int(1), Reg::fp(0)),
            Inst::beq(Reg::int(1), Reg::ZERO, Label(0)),
            Inst::j(Label(3)),
            Inst::halt(),
            Inst::nop(),
        ];
        for i in insts {
            assert!(i.validate().is_ok(), "{i} should validate");
        }
    }

    #[test]
    fn srcs_skips_zero_register() {
        let i = Inst::add(Reg::int(1), Reg::ZERO, Reg::int(2));
        let srcs: Vec<_> = i.srcs().collect();
        assert_eq!(srcs, vec![Reg::int(2)]);
    }

    #[test]
    fn effective_dst_discards_zero_register_writes() {
        let i = Inst::add(Reg::ZERO, Reg::int(1), Reg::int(2));
        assert_eq!(i.effective_dst(), None);
        let j = Inst::add(Reg::int(3), Reg::int(1), Reg::int(2));
        assert_eq!(j.effective_dst(), Some(Reg::int(3)));
    }

    #[test]
    fn store_data_register_is_a_source() {
        let st = Inst::st(Reg::int(7), Reg::int(30), 0);
        let srcs: Vec<_> = st.srcs().collect();
        assert!(srcs.contains(&Reg::int(7)));
        assert!(srcs.contains(&Reg::int(30)));
        assert_eq!(st.effective_dst(), None);
    }

    #[test]
    fn validate_rejects_malformed() {
        // store with a destination
        let mut bad = Inst::st(Reg::int(1), Reg::int(2), 0);
        bad.dst = Some(Reg::int(3));
        assert!(bad.validate().is_err());
        // branch without target
        let mut b = Inst::beq(Reg::int(1), Reg::int(2), Label(0));
        b.target = None;
        assert!(b.validate().is_err());
        // FP add over integer registers
        let mut f = Inst::fadd(Reg::fp(1), Reg::fp(2), Reg::fp(3));
        f.src1 = Some(Reg::int(2));
        assert!(f.validate().is_err());
    }

    #[test]
    fn immediate_branches_validate_and_display() {
        let b = Inst::blti(Reg::int(3), 7, Label(2));
        assert!(b.validate().is_ok());
        assert_eq!(b.to_string(), "blt r3, #7, L2");
        let srcs: Vec<_> = b.srcs().collect();
        assert_eq!(srcs, vec![Reg::int(3)]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            Inst::addi(Reg::int(1), Reg::int(2), 4).to_string(),
            "add r1, r2, #4"
        );
        assert_eq!(
            Inst::st(Reg::int(2), Reg::int(3), 8).to_string(),
            "st r2, 8(r3)"
        );
        assert_eq!(Inst::j(Label(2)).to_string(), "j L2");
        assert_eq!(Inst::li(Reg::int(1), -5).to_string(), "li r1, #-5");
    }

    #[test]
    #[should_panic(expected = "invalid instruction")]
    fn constructor_panics_on_bank_mismatch() {
        // `add` over FP registers must panic via expect_valid.
        let _ = Inst::add(Reg::fp(1), Reg::fp(2), Reg::fp(3));
    }
}
