//! Opcodes and their static classification.
//!
//! The classification drives everything the steering logic and the
//! timing model need to know about an instruction *before* it executes:
//! which functional-unit class it occupies ([`ExecClass`]), and which
//! clusters are capable of executing it ([`ClusterNeed`]).

use std::fmt;
use std::str::FromStr;

/// Every opcode of the mini ISA.
///
/// Arithmetic opcodes come in register/register form; an immediate may
/// replace the second source operand (see [`crate::Inst`]). Memory
/// opcodes use a base register plus signed displacement, like Alpha.
///
/// # Example
///
/// ```
/// use dca_isa::{Opcode, ExecClass};
/// assert_eq!(Opcode::Mul.class(), ExecClass::IntMul);
/// assert!(Opcode::Beq.is_branch());
/// assert!(Opcode::Ld.is_mem());
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Opcode {
    // --- simple integer -------------------------------------------------
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left.
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Set-if-less-than (signed): `dst = (a < b) as i64`.
    Slt,
    /// Set-if-equal: `dst = (a == b) as i64`.
    Seq,
    /// Register move (`dst = src1`).
    Mov,
    /// Load immediate (`dst = imm`).
    Li,
    // --- complex integer ------------------------------------------------
    /// Integer multiplication (integer cluster only).
    Mul,
    /// Integer division (integer cluster only). Division by zero yields 0,
    /// like a trapping implementation that delivers a default.
    Div,
    /// Integer remainder (integer cluster only). Remainder by zero yields 0.
    Rem,
    // --- floating point ---------------------------------------------------
    /// FP addition.
    FAdd,
    /// FP subtraction.
    FSub,
    /// FP multiplication.
    FMul,
    /// FP division.
    FDiv,
    /// FP move (`dst = src1`).
    FMov,
    /// FP compare less-than; writes an *integer* destination register.
    FCmpLt,
    /// Convert integer to FP.
    CvtIf,
    /// Convert FP to integer (truncating).
    CvtFi,
    // --- memory ---------------------------------------------------------
    /// Integer load: `dst = mem[src1 + imm]` (64-bit).
    Ld,
    /// Integer store: `mem[src1 + imm] = src2` (64-bit).
    St,
    /// FP load: `dst = mem[src1 + imm]` (64-bit IEEE double).
    FLd,
    /// FP store: `mem[src1 + imm] = src2`.
    FSt,
    // --- control --------------------------------------------------------
    /// Branch if equal (`src1 == src2`).
    Beq,
    /// Branch if not equal.
    Bne,
    /// Branch if less-than (signed).
    Blt,
    /// Branch if greater-or-equal (signed).
    Bge,
    /// Unconditional direct jump.
    J,
    /// Stop the program.
    Halt,
    /// No operation.
    Nop,
}

/// Functional-unit class an instruction occupies while executing.
///
/// Latencies are configured in `dca-uarch`; the paper does not list
/// them, so SimpleScalar v3.0 defaults are used (see DESIGN.md §4).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ExecClass {
    /// Single-cycle integer ALU operation (both clusters have 3 such
    /// units). Branches and effective-address adds also use this class.
    IntAlu,
    /// Pipelined integer multiply (integer cluster only).
    IntMul,
    /// Unpipelined integer divide (integer cluster only).
    IntDiv,
    /// FP add/compare/convert (FP cluster only).
    FpAlu,
    /// Pipelined FP multiply (FP cluster only).
    FpMul,
    /// Unpipelined FP divide (FP cluster only).
    FpDiv,
    /// Memory read; the steerable part is an [`ExecClass::IntAlu`]
    /// effective-address micro-op, the access itself goes through the
    /// unified disambiguation logic.
    Load,
    /// Memory write; like [`ExecClass::Load`] plus a data operand read
    /// at commit.
    Store,
    /// Control transfer (executes on an integer ALU).
    Ctrl,
    /// No functional unit needed.
    Nop,
}

/// Which clusters are architecturally capable of executing an opcode.
///
/// This encodes the machine organisation of the paper's Figure 1:
/// cluster 1 (index 0, "integer") owns the complex integer units,
/// cluster 2 (index 1, "FP") owns the FP units, and both own simple
/// integer ALUs.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ClusterNeed {
    /// Simple integer work: either cluster may execute it.
    Either,
    /// Complex integer work: only the integer cluster.
    IntOnly,
    /// Floating-point work: only the FP cluster.
    FpOnly,
}

impl Opcode {
    /// The functional-unit class of this opcode.
    pub fn class(self) -> ExecClass {
        use Opcode::*;
        match self {
            Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Seq | Mov | Li => {
                ExecClass::IntAlu
            }
            Mul => ExecClass::IntMul,
            Div | Rem => ExecClass::IntDiv,
            FAdd | FSub | FMov | FCmpLt | CvtIf | CvtFi => ExecClass::FpAlu,
            FMul => ExecClass::FpMul,
            FDiv => ExecClass::FpDiv,
            Ld | FLd => ExecClass::Load,
            St | FSt => ExecClass::Store,
            Beq | Bne | Blt | Bge | J => ExecClass::Ctrl,
            Halt | Nop => ExecClass::Nop,
        }
    }

    /// Which clusters can execute this opcode.
    ///
    /// Memory operations report the need of their *effective-address*
    /// micro-op (a simple integer add), i.e. [`ClusterNeed::Either`];
    /// the destination of an FP load still lives in the FP cluster's
    /// register file, which the simulator handles during renaming.
    pub fn cluster_need(self) -> ClusterNeed {
        match self.class() {
            ExecClass::IntMul | ExecClass::IntDiv => ClusterNeed::IntOnly,
            ExecClass::FpAlu | ExecClass::FpMul | ExecClass::FpDiv => ClusterNeed::FpOnly,
            ExecClass::Load | ExecClass::Store => ClusterNeed::Either,
            ExecClass::IntAlu | ExecClass::Ctrl | ExecClass::Nop => ClusterNeed::Either,
        }
    }

    /// `true` for memory operations (loads and stores).
    pub fn is_mem(self) -> bool {
        matches!(self.class(), ExecClass::Load | ExecClass::Store)
    }

    /// `true` for loads.
    pub fn is_load(self) -> bool {
        self.class() == ExecClass::Load
    }

    /// `true` for stores.
    pub fn is_store(self) -> bool {
        self.class() == ExecClass::Store
    }

    /// `true` for conditional branches (not unconditional jumps).
    pub fn is_cond_branch(self) -> bool {
        matches!(self, Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge)
    }

    /// `true` for any control transfer (conditional branch or jump).
    pub fn is_branch(self) -> bool {
        self.is_cond_branch() || self == Opcode::J
    }

    /// `true` if the opcode may be executed by the simple integer ALUs
    /// present in both clusters (the defining property of the paper's
    /// extended FP cluster).
    pub fn is_simple_int(self) -> bool {
        matches!(self.class(), ExecClass::IntAlu | ExecClass::Ctrl)
    }

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Add => "add",
            Sub => "sub",
            And => "and",
            Or => "or",
            Xor => "xor",
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            Slt => "slt",
            Seq => "seq",
            Mov => "mov",
            Li => "li",
            Mul => "mul",
            Div => "div",
            Rem => "rem",
            FAdd => "fadd",
            FSub => "fsub",
            FMul => "fmul",
            FDiv => "fdiv",
            FMov => "fmov",
            FCmpLt => "fcmplt",
            CvtIf => "cvtif",
            CvtFi => "cvtfi",
            Ld => "ld",
            St => "st",
            FLd => "fld",
            FSt => "fst",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            J => "j",
            Halt => "halt",
            Nop => "nop",
        }
    }

    /// All opcodes, in declaration order. Handy for exhaustive tests
    /// and for the assembler's mnemonic table.
    pub fn all() -> &'static [Opcode] {
        use Opcode::*;
        &[
            Add, Sub, And, Or, Xor, Sll, Srl, Sra, Slt, Seq, Mov, Li, Mul, Div, Rem, FAdd, FSub,
            FMul, FDiv, FMov, FCmpLt, CvtIf, CvtFi, Ld, St, FLd, FSt, Beq, Bne, Blt, Bge, J, Halt,
            Nop,
        ]
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Error returned when parsing an unknown mnemonic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpcodeParseError {
    text: String,
}

impl fmt::Display for OpcodeParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown mnemonic `{}`", self.text)
    }
}

impl std::error::Error for OpcodeParseError {}

impl FromStr for Opcode {
    type Err = OpcodeParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Opcode::all()
            .iter()
            .copied()
            .find(|op| op.mnemonic() == s)
            .ok_or_else(|| OpcodeParseError { text: s.to_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_need_matches_figure_1() {
        // Complex integer units live only in cluster 1 (the integer one).
        assert_eq!(Opcode::Mul.cluster_need(), ClusterNeed::IntOnly);
        assert_eq!(Opcode::Div.cluster_need(), ClusterNeed::IntOnly);
        assert_eq!(Opcode::Rem.cluster_need(), ClusterNeed::IntOnly);
        // FP units only in cluster 2.
        for op in [Opcode::FAdd, Opcode::FMul, Opcode::FDiv, Opcode::FCmpLt] {
            assert_eq!(op.cluster_need(), ClusterNeed::FpOnly);
        }
        // Everything else is simple-integer and goes anywhere.
        for op in [Opcode::Add, Opcode::Beq, Opcode::Ld, Opcode::St, Opcode::J] {
            assert_eq!(op.cluster_need(), ClusterNeed::Either);
        }
    }

    #[test]
    fn memory_classification() {
        assert!(Opcode::Ld.is_load() && Opcode::Ld.is_mem());
        assert!(Opcode::FLd.is_load());
        assert!(Opcode::St.is_store() && !Opcode::St.is_load());
        assert!(Opcode::FSt.is_store());
        assert!(!Opcode::Add.is_mem());
    }

    #[test]
    fn branch_classification() {
        assert!(Opcode::Beq.is_cond_branch());
        assert!(Opcode::J.is_branch() && !Opcode::J.is_cond_branch());
        assert!(!Opcode::Halt.is_branch());
    }

    #[test]
    fn mnemonics_round_trip() {
        for &op in Opcode::all() {
            assert_eq!(op.mnemonic().parse::<Opcode>().unwrap(), op);
        }
        assert!("bogus".parse::<Opcode>().is_err());
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut names: Vec<_> = Opcode::all().iter().map(|o| o.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Opcode::all().len());
    }

    #[test]
    fn simple_int_excludes_complex_and_fp() {
        assert!(Opcode::Add.is_simple_int());
        assert!(Opcode::Beq.is_simple_int());
        assert!(!Opcode::Mul.is_simple_int());
        assert!(!Opcode::FAdd.is_simple_int());
        assert!(!Opcode::Ld.is_simple_int()); // the access, not the EA op
    }
}
