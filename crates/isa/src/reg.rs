//! Logical (architectural) registers.
//!
//! The machine has 32 integer registers `r0..r31` and 32 floating-point
//! registers `f0..f31`. `r0` is hard-wired to zero, like Alpha's `r31`
//! and MIPS' `$zero`: reads return 0, writes are discarded, and the
//! register renaming logic of the simulator never allocates a physical
//! register for it.

use std::fmt;
use std::str::FromStr;

/// Number of integer logical registers (`r0` is the hard-wired zero).
pub const NUM_INT_REGS: usize = 32;
/// Number of floating-point logical registers.
pub const NUM_FP_REGS: usize = 32;

/// A logical register operand: either integer (`r0..r31`) or
/// floating-point (`f0..f31`).
///
/// # Example
///
/// ```
/// use dca_isa::Reg;
///
/// let r = Reg::int(5);
/// assert!(r.is_int());
/// assert_eq!(r.index(), 5);
/// assert_eq!(r.to_string(), "r5");
/// assert_eq!("f3".parse::<Reg>().unwrap(), Reg::fp(3));
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Reg {
    /// An integer register `rN`.
    Int(u8),
    /// A floating-point register `fN`.
    Fp(u8),
}

impl Reg {
    /// The hard-wired zero register `r0`.
    pub const ZERO: Reg = Reg::Int(0);

    /// Creates the integer register `rN`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn int(n: u8) -> Reg {
        assert!(
            (n as usize) < NUM_INT_REGS,
            "integer register index {n} out of range"
        );
        Reg::Int(n)
    }

    /// Creates the floating-point register `fN`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn fp(n: u8) -> Reg {
        assert!(
            (n as usize) < NUM_FP_REGS,
            "fp register index {n} out of range"
        );
        Reg::Fp(n)
    }

    /// Returns `true` for integer registers.
    pub fn is_int(self) -> bool {
        matches!(self, Reg::Int(_))
    }

    /// Returns `true` for floating-point registers.
    pub fn is_fp(self) -> bool {
        matches!(self, Reg::Fp(_))
    }

    /// Returns `true` for the hard-wired zero register `r0`.
    pub fn is_zero(self) -> bool {
        self == Reg::ZERO
    }

    /// The register number within its bank (0..32).
    pub fn index(self) -> u8 {
        match self {
            Reg::Int(n) | Reg::Fp(n) => n,
        }
    }

    /// A dense index over both banks: integer registers map to
    /// `0..32`, floating-point registers to `32..64`. Useful for
    /// flat lookup tables such as the steering parent table.
    pub fn flat_index(self) -> usize {
        match self {
            Reg::Int(n) => n as usize,
            Reg::Fp(n) => NUM_INT_REGS + n as usize,
        }
    }

    /// Total number of distinct [`Reg::flat_index`] values.
    pub const FLAT_COUNT: usize = NUM_INT_REGS + NUM_FP_REGS;
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Int(n) => write!(f, "r{n}"),
            Reg::Fp(n) => write!(f, "f{n}"),
        }
    }
}

/// Error returned when parsing a register name fails.
///
/// # Example
///
/// ```
/// use dca_isa::Reg;
/// assert!("r99".parse::<Reg>().is_err());
/// assert!("x1".parse::<Reg>().is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegParseError {
    text: String,
}

impl fmt::Display for RegParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid register name `{}`", self.text)
    }
}

impl std::error::Error for RegParseError {}

impl FromStr for Reg {
    type Err = RegParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || RegParseError { text: s.to_owned() };
        let (bank, num) = s.split_at(s.len().min(1));
        let n: u8 = num.parse().map_err(|_| err())?;
        match bank {
            "r" if (n as usize) < NUM_INT_REGS => Ok(Reg::Int(n)),
            "f" if (n as usize) < NUM_FP_REGS => Ok(Reg::Fp(n)),
            _ => Err(err()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register() {
        assert!(Reg::ZERO.is_zero());
        assert!(Reg::ZERO.is_int());
        assert!(!Reg::int(1).is_zero());
        assert!(!Reg::fp(0).is_zero());
    }

    #[test]
    fn flat_index_is_dense_and_disjoint() {
        let mut seen = [false; Reg::FLAT_COUNT];
        for n in 0..32 {
            seen[Reg::int(n).flat_index()] = true;
            seen[Reg::fp(n).flat_index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn display_round_trips_through_parse() {
        for n in 0..32u8 {
            let r = Reg::int(n);
            assert_eq!(r.to_string().parse::<Reg>().unwrap(), r);
            let f = Reg::fp(n);
            assert_eq!(f.to_string().parse::<Reg>().unwrap(), f);
        }
    }

    #[test]
    fn parse_rejects_bad_names() {
        for bad in ["", "r", "f", "r32", "f32", "r-1", "q3", "r 1", "R1"] {
            assert!(bad.parse::<Reg>().is_err(), "{bad} should not parse");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_constructor_validates() {
        let _ = Reg::int(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fp_constructor_validates() {
        let _ = Reg::fp(255);
    }
}
