//! Golden-fixture pin for the N-cluster refactor: the N=2 homogeneous
//! geometry must reproduce the original two-cluster machine
//! **bit-identically** — same stats *and* same rendered trace — for all
//! 13 steering schemes on both issue engines.
//!
//! The fixture file `tests/golden/n2_stats.txt` was generated from the
//! tree *before* the `ClusterId` enum was replaced by the dense-index
//! newtype (set `BLESS_N2_GOLDEN=1` to regenerate — only meaningful if
//! the behaviour change is intentional and called out in the PR). Every
//! line digests one (bench, scheme, engine) run: the full per-cluster
//! stat vector plus an FNV-1a hash of the rendered trace table, whose
//! text includes per-uop cluster assignments and stage timestamps, so
//! any drift in steering decisions, timing, or trace formatting fails
//! the comparison.

use dca::sim::{Engine, SimConfig, Simulator};
use dca_bench::{SchemeKind, ALL_SCHEMES};
use dca_workloads::{build, Scale};

const FUEL: u64 = 120_000;
const TRACE_CAP: usize = 4096;

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn digest_line(bench: &str, scheme: SchemeKind, engine: Engine) -> String {
    let w = build(bench, Scale::Smoke);
    let cfg = SimConfig {
        engine,
        ..SimConfig::paper_clustered()
    };
    let mut steering = scheme.instantiate(&w.program);
    let mut sim = Simulator::new(&cfg, &w.program, w.memory.clone());
    sim.enable_trace(TRACE_CAP);
    let s = sim.run_mut(steering.as_mut(), FUEL);
    let trace = sim.take_trace().expect("trace was enabled");

    // Per-cluster vectors: print the two live entries. (Post-refactor
    // the arrays are MAX_CLUSTERS long; entries beyond the machine's
    // cluster count must be zero at N=2, asserted here so the golden
    // two-entry digest remains a complete description.)
    assert!(
        s.steered.iter().skip(2).all(|&v| v == 0),
        "{bench}/{scheme:?}: steered into a cluster that does not exist at N=2"
    );
    assert!(
        s.copies_by_dir.iter().skip(2).all(|&v| v == 0),
        "{bench}/{scheme:?}: copies from a cluster that does not exist at N=2"
    );

    let uarch = fnv64(format!("{:?}/{:?}/{:?}/{:?}", s.l1i, s.l1d, s.l2, s.bpred).as_bytes());
    let balance = fnv64(format!("{:?}", s.balance).as_bytes());
    let table = trace.render_table();
    format!(
        "{bench} {scheme:?} {engine:?} cycles={} committed={} uops={} copies={} crit={} \
         dir0={} dir1={} steer0={} steer1={} repl={} loads={} stores={} fwd={} br={} misp={} \
         stall={} slice={} uarch={uarch:016x} balance={balance:016x} \
         trace_len={} trace_dropped={} trace={:016x}",
        s.cycles,
        s.committed,
        s.committed_uops,
        s.copies,
        s.critical_copies,
        s.copies_by_dir[0],
        s.copies_by_dir[1],
        s.steered[0],
        s.steered[1],
        s.replication_reg_cycles,
        s.loads,
        s.stores,
        s.forwarded_loads,
        s.branches,
        s.mispredicts,
        s.dispatch_stall_cycles,
        s.slice_hits,
        trace.len(),
        trace.dropped(),
        fnv64(table.as_bytes()),
    )
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/n2_stats.txt")
}

/// All 13 schemes × both engines × two workload characters (tight loop
/// and pointer chasing), digested and pinned against the pre-refactor
/// fixture.
#[test]
fn n2_matches_pre_refactor_golden() {
    let mut lines = Vec::new();
    for bench in ["compress", "li"] {
        for scheme in ALL_SCHEMES {
            for engine in [Engine::Event, Engine::Scan] {
                lines.push(digest_line(bench, scheme, engine));
            }
        }
    }
    let actual = lines.join("\n") + "\n";

    let path = golden_path();
    if std::env::var_os("BLESS_N2_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        eprintln!("blessed {} ({} runs)", path.display(), lines.len());
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    for (i, (got, want)) in actual.lines().zip(golden.lines()).enumerate() {
        assert_eq!(
            got, want,
            "line {}: N=2 diverges from the pre-refactor two-cluster machine",
            i + 1
        );
    }
    assert_eq!(
        actual.lines().count(),
        golden.lines().count(),
        "run count changed; regenerate deliberately with BLESS_N2_GOLDEN=1"
    );
}
