//! Cross-crate integration: the timing simulator must commit *exactly*
//! the dynamic instruction stream the functional interpreter produces,
//! for every workload, machine and steering scheme — timing never
//! changes architecture.

use dca::prog::Interp;
use dca::sim::{SimConfig, Simulator};
use dca::steer::{
    FifoSteering, GeneralBalance, Modulo, Naive, NonSliceBalance, PrioritySliceBalance,
    SliceBalance, SliceKind, SliceSteering, StaticPartition,
};
use dca::workloads::{build, Scale, NAMES};

const FUEL: u64 = 40_000;

fn stream_len(w: &dca::workloads::Workload) -> u64 {
    Interp::new(&w.program, w.memory.clone())
        .with_fuel(FUEL)
        .count() as u64
}

#[test]
fn every_scheme_commits_the_functional_stream() {
    let cfg = SimConfig::paper_clustered();
    for name in NAMES {
        let w = build(name, Scale::Smoke);
        let expected = stream_len(&w);
        let schemes: Vec<(&str, Box<dyn dca::sim::Steering>)> = vec![
            ("modulo", Box::new(Modulo::new())),
            ("naive", Box::new(Naive::new())),
            ("static", Box::new(StaticPartition::analyze(&w.program))),
            ("ldst-slice", Box::new(SliceSteering::new(SliceKind::LdSt))),
            ("br-slice", Box::new(SliceSteering::new(SliceKind::Br))),
            ("ldst-nsb", Box::new(NonSliceBalance::new(SliceKind::LdSt))),
            ("ldst-sb", Box::new(SliceBalance::new(SliceKind::LdSt))),
            ("br-psb", Box::new(PrioritySliceBalance::new(SliceKind::Br))),
            ("general", Box::new(GeneralBalance::new())),
            ("fifo", Box::new(FifoSteering::paper())),
        ];
        for (label, mut scheme) in schemes {
            let stats = Simulator::new(&cfg, &w.program, w.memory.clone())
                .run(scheme.as_mut(), FUEL);
            assert_eq!(
                stats.committed, expected,
                "{name}/{label}: committed != functional stream"
            );
        }
    }
}

#[test]
fn base_and_upper_bound_machines_commit_the_stream() {
    for name in NAMES {
        let w = build(name, Scale::Smoke);
        let expected = stream_len(&w);
        for cfg in [SimConfig::paper_base(), SimConfig::paper_upper_bound()] {
            let stats = Simulator::new(&cfg, &w.program, w.memory.clone())
                .run(&mut Naive::new(), FUEL);
            assert_eq!(stats.committed, expected, "{name} on {:?}…", cfg.unified);
        }
    }
}

#[test]
fn simulation_is_deterministic_per_scheme() {
    let cfg = SimConfig::paper_clustered();
    let w = build("vortex", Scale::Smoke);
    let run = |_: u32| {
        let mut s = GeneralBalance::new();
        Simulator::new(&cfg, &w.program, w.memory.clone()).run(&mut s, FUEL)
    };
    let a = run(0);
    let b = run(1);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.copies, b.copies);
    assert_eq!(a.critical_copies, b.critical_copies);
    assert_eq!(a.steered, b.steered);
    assert_eq!(a.balance, b.balance);
}

#[test]
fn copies_never_appear_without_bypasses() {
    for name in NAMES {
        let w = build(name, Scale::Smoke);
        let stats = Simulator::new(&SimConfig::paper_base(), &w.program, w.memory.clone())
            .run(&mut Naive::new(), FUEL);
        assert_eq!(stats.copies, 0, "{name}: base machine must not copy");
        assert_eq!(stats.steered[1], 0, "{name}: integer code stays in C1");
    }
}
