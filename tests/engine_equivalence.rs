//! The event-driven issue engine must be **bit-for-bit stat-identical**
//! to the scan engine it replaced: same cycle counts, same copies, same
//! issue distribution, same balance histogram — for *every* steering
//! scheme, because schemes observe the machine through `SteerCtx` ready
//! counts and per-cycle callbacks, and any divergence there compounds.
//!
//! This is the acceptance gate of the event-engine work (ISSUE 1): the
//! scan engine stays in the tree as the executable specification
//! ([`dca::sim::Engine::Scan`]) precisely so this test can hold forever.

use dca::sim::{Engine, SimConfig, SimStats, Simulator};
use dca_bench::{Machine, SchemeKind, ALL_SCHEMES};
use dca_workloads::{build, Scale};

const FUEL: u64 = 120_000;

fn run(cfg: &SimConfig, bench: &str, scheme: SchemeKind) -> SimStats {
    let w = build(bench, Scale::Smoke);
    let mut steering = scheme.instantiate(&w.program);
    Simulator::new(cfg, &w.program, w.memory.clone()).run(steering.as_mut(), FUEL)
}

fn assert_identical(a: &SimStats, b: &SimStats, what: &str) {
    assert_eq!(a.cycles, b.cycles, "{what}: cycles diverge");
    assert_eq!(a.committed, b.committed, "{what}: committed diverge");
    assert_eq!(a.committed_uops, b.committed_uops, "{what}: µops diverge");
    assert_eq!(a.copies, b.copies, "{what}: copies diverge");
    assert_eq!(a.critical_copies, b.critical_copies, "{what}: critical copies diverge");
    assert_eq!(a.copies_by_dir, b.copies_by_dir, "{what}: copy directions diverge");
    assert_eq!(a.steered, b.steered, "{what}: issue distribution diverges");
    assert_eq!(a.balance, b.balance, "{what}: balance histogram diverges");
    assert_eq!(
        a.replication_reg_cycles, b.replication_reg_cycles,
        "{what}: replication integral diverges"
    );
    assert_eq!(a.loads, b.loads, "{what}: loads diverge");
    assert_eq!(a.stores, b.stores, "{what}: stores diverge");
    assert_eq!(a.forwarded_loads, b.forwarded_loads, "{what}: forwarding diverges");
    assert_eq!(a.branches, b.branches, "{what}: branches diverge");
    assert_eq!(a.mispredicts, b.mispredicts, "{what}: mispredicts diverge");
    assert_eq!(a.l1i, b.l1i, "{what}: L1I diverges");
    assert_eq!(a.l1d, b.l1d, "{what}: L1D diverges");
    assert_eq!(a.l2, b.l2, "{what}: L2 diverges");
    assert_eq!(a.bpred, b.bpred, "{what}: predictor diverges");
    assert_eq!(
        a.dispatch_stall_cycles, b.dispatch_stall_cycles,
        "{what}: dispatch stalls diverge"
    );
    assert_eq!(a.slice_hits, b.slice_hits, "{what}: slice hits diverge");
}

/// Every scheme, on the clustered machine, on two workloads with very
/// different characters (`compress`: tight loop; `li`: pointer chasing
/// with critical loads).
#[test]
fn all_schemes_identical_on_clustered_machine() {
    for bench in ["compress", "li"] {
        for scheme in ALL_SCHEMES {
            let event = run(&SimConfig::paper_clustered(), bench, scheme);
            let scan_cfg = SimConfig {
                engine: Engine::Scan,
                ..SimConfig::paper_clustered()
            };
            let scan = run(&scan_cfg, bench, scheme);
            assert_identical(&event, &scan, &format!("{bench}/{scheme:?}"));
            assert!(event.committed > 0, "{bench}/{scheme:?} ran no instructions");
        }
    }
}

/// The skip-ahead fast path must replay `Steering::on_cycle` into
/// windowed imbalance state exactly as stepped cycles would: the
/// I2 `VecDeque` window of the `ImbalanceMonitor` ages once per
/// (skipped or real) cycle, and a divergence there changes steering
/// decisions and therefore every downstream statistic. The pointer-
/// chasing `li` analogue is the quiescent-heavy stressor — its
/// load-to-load dependence chains leave the machine idle for long
/// spans, so the event engine spends most cycles inside skip-ahead —
/// and each `ImbalanceMetric` variant weights the windowed term
/// differently (I2-only being the pure-window worst case).
#[test]
fn imbalance_metric_variants_identical_on_quiescent_workload() {
    use dca::sim::Simulator;
    use dca_steer::{ImbalanceConfig, ImbalanceMetric, NonSliceBalance, SliceBalance, SliceKind};

    let w = build("li", Scale::Smoke);
    for metric in [
        ImbalanceMetric::I1Only,
        ImbalanceMetric::I2Only,
        ImbalanceMetric::Combined,
    ] {
        let cfg_of = |engine| SimConfig {
            engine,
            ..SimConfig::paper_clustered()
        };
        let imb = ImbalanceConfig {
            metric,
            ..ImbalanceConfig::default()
        };
        // Both monitor-driven scheme families, so the window is
        // exercised through every call pattern.
        for slice in [false, true] {
            let run_engine = |engine| {
                if slice {
                    let mut s = SliceBalance::with_config(SliceKind::LdSt, imb);
                    Simulator::new(&cfg_of(engine), &w.program, w.memory.clone())
                        .run(&mut s, FUEL)
                } else {
                    let mut s = NonSliceBalance::with_config(SliceKind::LdSt, imb);
                    Simulator::new(&cfg_of(engine), &w.program, w.memory.clone())
                        .run(&mut s, FUEL)
                }
            };
            let event = run_engine(Engine::Event);
            let scan = run_engine(Engine::Scan);
            assert_identical(
                &event,
                &scan,
                &format!("li/{metric:?}/{}", if slice { "slice-bal" } else { "non-slice" }),
            );
            assert!(event.committed > 0);
        }
    }
}

/// The other machine models exercise different backend paths: no
/// copies (base), unified issue (UB), bus starvation (one-bus), and a
/// structurally starved small machine.
#[test]
fn other_machines_identical() {
    let configs = [
        Machine::Base.config(),
        Machine::UpperBound.config(),
        Machine::OneBus.config(),
        SimConfig::small_test(),
    ];
    for cfg in configs {
        for scheme in [SchemeKind::Naive, SchemeKind::GeneralBalance, SchemeKind::Fifo] {
            let event = run(&cfg, "go", scheme);
            let scan = run(&SimConfig { engine: Engine::Scan, ..cfg.clone() }, "go", scheme);
            assert_identical(&event, &scan, &format!("{:?}/{scheme:?}", cfg.fus[1]));
        }
    }
}
