//! Snapshot-restore equivalence (the acceptance gate of the
//! continuous-warming work): for **every** steering scheme, restoring a
//! [`UarchSnapshot`] captured after a warming prefix and then
//! simulating an interval must be **bit-identical** — statistics *and*
//! per-µop trace — to streaming the same prefix through
//! `warm_functional` inline and simulating the same interval.
//!
//! Two independent state paths are pinned against each other:
//!
//! * **inline** — `Simulator::resume_from(ckpt)` + `warm_functional(W)`
//!   builds cache/predictor state inside the simulator (raw LRU
//!   stamps, live tick counter), then measures;
//! * **snapshot** — a detached [`ContinuousWarmer`] replays the same
//!   `W` instructions, its snapshot is **encoded, decoded and
//!   restored** (rank-normalised LRU, rebased tick) into a fresh
//!   simulator resumed at the warmed position, which then measures.
//!
//! Bit-identical output proves the codec's rank normalisation loses
//! nothing observable, and that `restore_uarch`'s baseline handling
//! matches `warm_functional`'s — which is exactly what lets the
//! paper-scale harness swap detached warming for restored snapshots.

use dca::prog::{fast_forward, Interp, WarmHook as _};
use dca::sim::{ContinuousWarmer, SimConfig, SimStats, Simulator};
use dca::uarch::UarchSnapshot;
use dca_bench::{SchemeKind, ALL_SCHEMES};
use dca_workloads::{build, Scale};

const PERIOD: u64 = 10_000;
const WARMUP: u64 = 6_000;
const INTERVAL: u64 = 5_000;

fn assert_identical(a: &SimStats, b: &SimStats, what: &str) {
    assert_eq!(a.cycles, b.cycles, "{what}: cycles diverge");
    assert_eq!(a.committed, b.committed, "{what}: committed diverge");
    assert_eq!(a.committed_uops, b.committed_uops, "{what}: µops diverge");
    assert_eq!(a.copies, b.copies, "{what}: copies diverge");
    assert_eq!(a.critical_copies, b.critical_copies, "{what}: critical copies diverge");
    assert_eq!(a.copies_by_dir, b.copies_by_dir, "{what}: copy directions diverge");
    assert_eq!(a.steered, b.steered, "{what}: issue distribution diverges");
    assert_eq!(a.balance, b.balance, "{what}: balance histogram diverges");
    assert_eq!(
        a.replication_reg_cycles, b.replication_reg_cycles,
        "{what}: replication integral diverges"
    );
    assert_eq!(a.loads, b.loads, "{what}: loads diverge");
    assert_eq!(a.stores, b.stores, "{what}: stores diverge");
    assert_eq!(a.forwarded_loads, b.forwarded_loads, "{what}: forwarding diverges");
    assert_eq!(a.branches, b.branches, "{what}: branches diverge");
    assert_eq!(a.mispredicts, b.mispredicts, "{what}: mispredicts diverge");
    assert_eq!(a.l1i, b.l1i, "{what}: L1I diverges");
    assert_eq!(a.l1d, b.l1d, "{what}: L1D diverges");
    assert_eq!(a.l2, b.l2, "{what}: L2 diverges");
    assert_eq!(a.bpred, b.bpred, "{what}: predictor diverges");
    assert_eq!(
        a.dispatch_stall_cycles, b.dispatch_stall_cycles,
        "{what}: dispatch stalls diverge"
    );
    assert_eq!(a.slice_hits, b.slice_hits, "{what}: slice hits diverge");
}

/// All 13 schemes on the clustered machine at smoke scale, from a
/// mid-stream checkpoint of `compress`.
#[test]
fn snapshot_restore_is_bit_identical_to_inline_warming_for_all_schemes() {
    let cfg = SimConfig::paper_clustered();
    let w = build("compress", Scale::Smoke);
    let ff = fast_forward(&w.program, w.memory.clone(), PERIOD, 40_000);
    let ckpt = &ff.checkpoints[1];
    assert_eq!(ckpt.seq(), PERIOD, "mid-stream checkpoint");

    for scheme in ALL_SCHEMES {
        let what = format!("compress/{scheme:?}");

        // Inline path: cold resume, detached warm_functional, measure.
        let mut steer_a = scheme.instantiate(&w.program);
        let mut sim_a = Simulator::resume_from(&cfg, &w.program, ckpt);
        let warmed = sim_a.warm_functional(WARMUP);
        assert_eq!(warmed, WARMUP, "{what}: stream covers the warming prefix");
        sim_a.enable_trace(4096);
        let stats_a = sim_a.run_mut(steer_a.as_mut(), ckpt.seq() + warmed + INTERVAL);

        // Snapshot path: a detached warmer replays the same prefix,
        // its state survives an encode→decode round trip, and the
        // restored simulator measures the same window with *zero*
        // warm_functional instructions.
        let mut warmer = ContinuousWarmer::new(&cfg);
        let mut it = Interp::resume(&w.program, ckpt).with_fuel(ckpt.seq() + WARMUP);
        let mut replayed = 0;
        for d in it.by_ref() {
            warmer.observe(&d);
            replayed += 1;
        }
        assert_eq!(replayed, WARMUP, "{what}: warmer saw the same prefix");
        let warm_ckpt = it
            .checkpoint()
            .with_uarch(warmer.snapshot().expect("warmer always snapshots"));
        let snap = UarchSnapshot::decode(warm_ckpt.uarch().expect("attached"))
            .expect("snapshot decodes");
        let mut steer_b = scheme.instantiate(&w.program);
        let mut sim_b = Simulator::resume_from(&cfg, &w.program, &warm_ckpt);
        sim_b.restore_uarch(&snap).expect("geometry matches");
        sim_b.enable_trace(4096);
        let stats_b = sim_b.run_mut(steer_b.as_mut(), warm_ckpt.seq() + INTERVAL);

        assert_identical(&stats_a, &stats_b, &what);
        assert!(stats_a.committed > 0, "{what}: interval measured nothing");

        // Traces are bit-identical too: same µops, same stage
        // timestamps, cycle for cycle.
        let trace_a = sim_a.take_trace().expect("trace enabled");
        let trace_b = sim_b.take_trace().expect("trace enabled");
        assert_eq!(
            trace_a.render_table(),
            trace_b.render_table(),
            "{what}: traces diverge"
        );
    }
}

/// The same equivalence holds on the base machine (no bypasses) — the
/// warming path is machine-independent but the measured backend is
/// not, so pin the other extreme too.
#[test]
fn snapshot_restore_matches_inline_on_the_base_machine() {
    let cfg = SimConfig::paper_base();
    let w = build("li", Scale::Smoke);
    let ff = fast_forward(&w.program, w.memory.clone(), PERIOD, 40_000);
    let ckpt = &ff.checkpoints[1];

    let mut steer_a = SchemeKind::Naive.instantiate(&w.program);
    let mut sim_a = Simulator::resume_from(&cfg, &w.program, ckpt);
    let warmed = sim_a.warm_functional(WARMUP);
    let stats_a = sim_a.run_mut(steer_a.as_mut(), ckpt.seq() + warmed + INTERVAL);

    let mut warmer = ContinuousWarmer::new(&cfg);
    let mut it = Interp::resume(&w.program, ckpt).with_fuel(ckpt.seq() + WARMUP);
    for d in it.by_ref() {
        warmer.observe(&d);
    }
    let warm_ckpt = it.checkpoint().with_uarch(warmer.snapshot().expect("snapshot"));
    let snap = UarchSnapshot::decode(warm_ckpt.uarch().expect("attached")).expect("decodes");
    let mut steer_b = SchemeKind::Naive.instantiate(&w.program);
    let mut sim_b = Simulator::resume_from(&cfg, &w.program, &warm_ckpt);
    sim_b.restore_uarch(&snap).expect("geometry matches");
    let stats_b = sim_b.run_mut(steer_b.as_mut(), warm_ckpt.seq() + INTERVAL);

    assert_identical(&stats_a, &stats_b, "li/base/Naive");
}
