//! Property tests of the checkpoint/restore subsystem (ISSUE 2): for
//! any program and any snapshot point, resuming an interpreter from a
//! checkpoint must reproduce *exactly* what straight-line execution
//! would have produced — the dynamic stream, the final architectural
//! registers, and memory. The sampled-simulation harness leans on this
//! equivalence for every measured interval.

use dca::prog::{fast_forward, Interp, Memory, ProgramBuilder};
use dca::prog::Program;
use dca_isa::{Inst, Reg};
use proptest::prelude::*;

const FUEL: u64 = 4_000;

/// A random always-terminating program: a few blocks of arithmetic and
/// arena-confined memory traffic, each looping on its own bounded
/// countdown so control flow (taken/not-taken mixes) varies by case.
fn arb_program() -> impl Strategy<Value = Program> {
    let body_inst = prop_oneof![
        (1u8..10, 1u8..10, 1u8..10).prop_map(|(d, a, b)| Inst::add(Reg::int(d), Reg::int(a), Reg::int(b))),
        (1u8..10, 1u8..10, -50i64..50).prop_map(|(d, a, i)| Inst::addi(Reg::int(d), Reg::int(a), i)),
        (1u8..10, 1u8..10, 1u8..10).prop_map(|(d, a, b)| Inst::mul(Reg::int(d), Reg::int(a), Reg::int(b))),
        (1u8..10, 1u8..10, 1u8..10).prop_map(|(d, a, b)| Inst::xor(Reg::int(d), Reg::int(a), Reg::int(b))),
        (1u8..10, -400i64..400).prop_map(|(d, i)| Inst::li(Reg::int(d), i)),
        // Arena-confined memory ops: r12/r13 always hold arena bases.
        (1u8..10, 12u8..14, 0i64..96).prop_map(|(d, b, off)| Inst::ld(Reg::int(d), Reg::int(b), off & !7)),
        (1u8..10, 12u8..14, 0i64..96).prop_map(|(v, b, off)| Inst::st(Reg::int(v), Reg::int(b), off & !7)),
    ];
    (
        2usize..5,
        2i64..6,
        proptest::collection::vec(body_inst, 4..28),
    )
        .prop_map(|(nblocks, loops, mut pool)| {
            let counter = Reg::int(30);
            let mut b = ProgramBuilder::new();
            b.block("entry");
            b.push(Inst::li(Reg::int(12), 0x30000));
            b.push(Inst::li(Reg::int(13), 0x31000));
            let per_block = (pool.len() / nblocks).max(1);
            for bi in 0..nblocks {
                let l = b.block(format!("b{bi}"));
                b.push(Inst::li(counter, loops));
                let body = b.block(format!("b{bi}_body"));
                let _ = l;
                let take = per_block.min(pool.len());
                b.extend(pool.drain(..take));
                b.push(Inst::addi(counter, counter, -1));
                b.push(Inst::bge(counter, Reg::ZERO, body));
            }
            b.block("exit");
            b.push(Inst::halt());
            b.build().expect("generated program is valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Resuming at checkpoint N is indistinguishable from having run
    /// straight through: identical remaining stream, identical final
    /// register file, identical memory.
    #[test]
    fn resume_equals_straight_line_execution(
        prog in arb_program(),
        cut in 1u64..200,
    ) {
        let mut straight = Interp::new(&prog, Memory::new()).with_fuel(FUEL);
        let mut prefix = 0u64;
        while prefix < cut && straight.next().is_some() {
            prefix += 1;
        }
        let ckpt = straight.checkpoint();
        prop_assert_eq!(ckpt.seq(), prefix);
        let tail_straight: Vec<_> = straight.by_ref().collect();

        let mut resumed = Interp::resume(&prog, &ckpt).with_fuel(FUEL);
        let tail_resumed: Vec<_> = resumed.by_ref().collect();
        prop_assert_eq!(&tail_resumed, &tail_straight);
        prop_assert_eq!(resumed.halted(), straight.halted());
        for r in 0..32u8 {
            prop_assert_eq!(resumed.int_reg(r), straight.int_reg(r), "r{} diverged", r);
        }
        // The arena is where every store landed.
        for addr in (0x30000u64..0x31800).step_by(8) {
            prop_assert_eq!(
                resumed.memory().read_u64(addr),
                straight.memory().read_u64(addr),
                "memory diverged at {:#x}", addr
            );
        }
    }

    /// The checkpoints of one fast-forward pass tile the stream: the
    /// concatenated per-interval streams equal the full stream, and
    /// each checkpoint's snapshot is isolated from execution continuing
    /// past it (copy-on-write pages must not alias mutably).
    #[test]
    fn fast_forward_checkpoints_tile_the_stream(
        prog in arb_program(),
        every in 16u64..120,
    ) {
        let full: Vec<_> = Interp::new(&prog, Memory::new()).with_fuel(FUEL).collect();
        let ff = fast_forward(&prog, Memory::new(), every, FUEL);
        prop_assert_eq!(ff.total_insts, full.len() as u64);
        let mut rebuilt = Vec::new();
        for (k, c) in ff.checkpoints.iter().enumerate() {
            let end = ff
                .checkpoints
                .get(k + 1)
                .map_or(FUEL, |n| n.seq());
            rebuilt.extend(Interp::resume(&prog, c).with_fuel(end));
        }
        prop_assert_eq!(&rebuilt, &full);
    }
}
