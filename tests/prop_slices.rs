//! Property tests for the slice machinery: the run-time one-bit flag
//! table of §3.3 must be *sound* with respect to the static analysis —
//! it may lag (membership accrues over executions) but it must never
//! flag an instruction outside the static backward slice.

use dca::isa::{Inst, Label, Opcode, Reg};
use dca::prog::{br_slice, ldst_slice, Block, Program, Rdg};
use dca::steer::tables::SliceFlags;
use dca::steer::SliceKind;
use proptest::prelude::*;

/// Single-block *loop* bodies with a random dependence structure.
///
/// The block branches back to itself, so the static RDG (built by
/// reaching definitions over the CFG) contains the loop-carried edges.
/// That matters for the multi-round observations below: observing the
/// body k times in order is exactly the dynamic instruction stream of k
/// loop iterations, and the parent table wraps around between rounds —
/// the writer of a register read at the top of round 2 is an
/// instruction from the tail of round 1. Those wrap-around edges are
/// real dependences of the looped execution, so the body must actually
/// loop for the static slice to be the right reference.
fn arb_loop_body() -> impl Strategy<Value = Program> {
    proptest::collection::vec((0u8..4, 1u8..10, 1u8..10, 1u8..10, 0i64..64), 4..40).prop_map(
        |specs| {
            let mut insts: Vec<Inst> = vec![Inst::li(Reg::int(10), 0x20000)];
            for (kind, d, a, b, off) in specs {
                let d = Reg::int(d);
                let a = Reg::int(a);
                let b = Reg::int(b);
                let inst = match kind {
                    0 => Inst::add(d, a, b),
                    1 => Inst::xor(d, a, b),
                    2 => Inst::ld(d, Reg::int(10), off & !7),
                    _ => Inst::st(a, Reg::int(10), off & !7),
                };
                insts.push(inst);
            }
            insts.push(Inst::beq(Reg::int(1), Reg::int(2), Label(0)));
            let blocks = vec![
                Block::new("body", insts),
                Block::new("exit", vec![Inst::halt()]),
            ];
            Program::from_blocks(blocks).expect("valid loop program")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness: after any number of in-order observations, the
    /// dynamic LdSt flag table is a subset of the static LdSt slice.
    #[test]
    fn dynamic_ldst_flags_subset_of_static(prog in arb_loop_body(), rounds in 1usize..4) {
        let rdg = Rdg::build(&prog);
        let static_slice = ldst_slice(&prog, &rdg);
        let mut flags = SliceFlags::new();
        for _ in 0..rounds {
            for si in prog.static_insts() {
                if si.inst.op == Opcode::Halt {
                    continue;
                }
                flags.observe(si.sidx, &si.inst, SliceKind::LdSt);
            }
        }
        for si in prog.static_insts() {
            if flags.contains(si.sidx) {
                prop_assert!(
                    static_slice.contains_sidx(si.sidx),
                    "sidx {} `{}` flagged but not in the static slice",
                    si.sidx, si.inst
                );
            }
        }
    }

    /// Same soundness property for the Br slice.
    #[test]
    fn dynamic_br_flags_subset_of_static(prog in arb_loop_body(), rounds in 1usize..4) {
        let rdg = Rdg::build(&prog);
        let static_slice = br_slice(&prog, &rdg);
        let mut flags = SliceFlags::new();
        for _ in 0..rounds {
            for si in prog.static_insts() {
                if si.inst.op == Opcode::Halt {
                    continue;
                }
                flags.observe(si.sidx, &si.inst, SliceKind::Br);
            }
        }
        for si in prog.static_insts() {
            if flags.contains(si.sidx) {
                prop_assert!(static_slice.contains_sidx(si.sidx));
            }
        }
    }

    /// Convergence: on a single-block loop (one path through the body,
    /// so every static RDG edge is realised dynamically from the second
    /// iteration on), enough observation rounds make the flag table
    /// *equal* to the static slice.
    #[test]
    fn flags_converge_on_loops(prog in arb_loop_body()) {
        let rdg = Rdg::build(&prog);
        let static_slice = ldst_slice(&prog, &rdg);
        let mut flags = SliceFlags::new();
        // Depth of any backward chain is bounded by program length; one
        // extra round covers the cold parent table of round 1.
        for _ in 0..prog.len() + 1 {
            for si in prog.static_insts() {
                if si.inst.op == Opcode::Halt {
                    continue;
                }
                flags.observe(si.sidx, &si.inst, SliceKind::LdSt);
            }
        }
        for si in prog.static_insts() {
            if si.inst.op == Opcode::Halt {
                continue;
            }
            prop_assert_eq!(
                flags.contains(si.sidx),
                static_slice.contains_sidx(si.sidx),
                "sidx {} `{}` dynamic != static after convergence",
                si.sidx, si.inst
            );
        }
    }

    /// Static slices are closed under RDG parents (the defining
    /// property of a backward slice).
    #[test]
    fn static_slices_closed_under_parents(prog in arb_loop_body()) {
        let rdg = Rdg::build(&prog);
        for slice in [ldst_slice(&prog, &rdg), br_slice(&prog, &rdg)] {
            for node in rdg.nodes() {
                if slice.contains(node) {
                    for &p in rdg.parents(node) {
                        prop_assert!(slice.contains(p));
                    }
                }
            }
        }
    }
}
