//! Property-based end-to-end testing: arbitrary (valid) programs are
//! pushed through the functional interpreter and the full clustered
//! pipeline under several steering schemes. The invariants:
//!
//! 1. the simulator never panics, deadlocks or livelocks;
//! 2. it commits exactly the functional stream (timing never changes
//!    architecture);
//! 3. per-scheme statistics stay internally consistent.

use dca::isa::{Inst, Label, Opcode, Reg};
use dca::prog::{Block, Interp, Memory, Program};
use dca::sim::{SimConfig, Simulator};
use dca::steer::{GeneralBalance, Modulo, SliceBalance, SliceKind};
use proptest::prelude::*;

const FUEL: u64 = 3_000;

/// Strategy for a random (always-valid) instruction over a small
/// register window, with memory confined to a 64 KB arena.
fn arb_body_inst() -> impl Strategy<Value = Inst> {
    let reg = (1u8..12).prop_map(Reg::int);
    let arena = 0x20000i64..0x2FF00;
    prop_oneof![
        (reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(d, a, b)| Inst::add(d, a, b)),
        (reg.clone(), reg.clone(), -64i64..64).prop_map(|(d, a, i)| Inst::addi(d, a, i)),
        (reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(d, a, b)| Inst::xor(d, a, b)),
        (reg.clone(), reg.clone(), 0i64..16).prop_map(|(d, a, i)| Inst::slli(d, a, i)),
        (reg.clone(), -512i64..512).prop_map(|(d, i)| Inst::li(d, i)),
        (reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(d, a, b)| Inst::mul(d, a, b)),
        // Memory: base register is overwritten with an arena address
        // first, so the pair is always safe.
        (reg.clone(), arena.clone()).prop_map(|(d, addr)| Inst::li(d, addr)),
        (reg.clone(), reg.clone(), 0i64..64)
            .prop_map(|(d, b, off)| Inst::ld(d, b, off & !7)),
        (reg.clone(), reg.clone(), 0i64..64)
            .prop_map(|(v, b, off)| Inst::st(v, b, off & !7)),
    ]
}

/// A random program: a chain of blocks, each ending in a bounded
/// countdown branch (guaranteeing termination) or a jump forward.
fn arb_program() -> impl Strategy<Value = Program> {
    (2usize..6, proptest::collection::vec(arb_body_inst(), 3..40)).prop_map(
        |(nblocks, mut pool)| {
            let counter = Reg::int(30);
            let mut blocks = Vec::new();
            // entry: seed registers with arena addresses so loads and
            // stores always hit the arena.
            let mut entry = vec![Inst::li(counter, 7)];
            for r in 1..12u8 {
                entry.push(Inst::li(Reg::int(r), 0x20000 + i64::from(r) * 512));
            }
            blocks.push(Block::new("entry", entry));
            let per_block = (pool.len() / nblocks).max(1);
            for bi in 0..nblocks {
                let take = per_block.min(pool.len());
                let mut insts: Vec<Inst> = pool.drain(..take).collect();
                if insts.is_empty() {
                    insts.push(Inst::nop());
                }
                // Loop back to this block while the counter is positive:
                // each block re-decrements, so every loop terminates.
                let own_label = Label(bi as u32 + 1);
                insts.push(Inst::addi(counter, counter, -1));
                insts.push(Inst::bge(counter, Reg::ZERO, own_label));
                insts.push(Inst::li(counter, 7));
                blocks.push(Block::new(format!("b{bi}"), insts));
            }
            blocks.push(Block::new("exit", vec![Inst::halt()]));
            // Blocks fall through in order; the per-block loops are the
            // only back edges. Fix the last body block to fall into exit.
            Program::from_blocks(split_ctrl(blocks)).expect("generated program is valid")
        },
    )
}

/// Mirror of the builder's auto-split for hand-assembled block lists.
fn split_ctrl(blocks: Vec<Block>) -> Vec<Block> {
    let mut out: Vec<Block> = Vec::new();
    let mut remap = Vec::new();
    for b in &blocks {
        remap.push(out.len() as u32);
        let mut cur = Vec::new();
        let mut part = 0;
        for &inst in &b.insts {
            let ctrl = inst.op.is_branch() || inst.op == Opcode::Halt;
            cur.push(inst);
            if ctrl {
                out.push(Block::new(
                    format!("{}p{part}", b.name),
                    std::mem::take(&mut cur),
                ));
                part += 1;
            }
        }
        if !cur.is_empty() || part == 0 {
            out.push(Block::new(format!("{}p{part}", b.name), cur));
        }
    }
    for b in &mut out {
        for inst in &mut b.insts {
            if let Some(l) = inst.target {
                inst.target = Some(Label(remap[l.0 as usize]));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sim_commits_functional_stream_on_random_programs(prog in arb_program()) {
        let expected = Interp::new(&prog, Memory::new()).with_fuel(FUEL).count() as u64;
        let cfg = SimConfig::paper_clustered();
        // Two very different schemes; both must agree with the stream.
        let mut modulo = Modulo::new();
        let a = Simulator::new(&cfg, &prog, Memory::new()).run(&mut modulo, FUEL);
        prop_assert_eq!(a.committed, expected);
        let mut general = GeneralBalance::new();
        let b = Simulator::new(&cfg, &prog, Memory::new()).run(&mut general, FUEL);
        prop_assert_eq!(b.committed, expected);
        // Internal consistency.
        prop_assert!(a.committed_uops >= a.committed);
        prop_assert_eq!(a.committed_uops - a.committed, a.copies);
        prop_assert!(a.critical_copies <= a.copies);
        prop_assert!(b.steered[0] + b.steered[1] == b.committed);
    }

    #[test]
    fn small_machine_handles_random_programs(prog in arb_program()) {
        let expected = Interp::new(&prog, Memory::new()).with_fuel(FUEL).count() as u64;
        let mut scheme = SliceBalance::new(SliceKind::LdSt);
        let s = Simulator::new(&SimConfig::small_test(), &prog, Memory::new())
            .run(&mut scheme, FUEL);
        prop_assert_eq!(s.committed, expected);
    }

    #[test]
    fn upper_bound_rarely_slower_than_base(prog in arb_program()) {
        let mut n1 = dca::steer::Naive::new();
        let base = Simulator::new(&SimConfig::paper_base(), &prog, Memory::new())
            .run(&mut n1, FUEL);
        let mut n2 = dca::steer::Naive::new();
        let ub = Simulator::new(&SimConfig::paper_upper_bound(), &prog, Memory::new())
            .run(&mut n2, FUEL);
        prop_assert_eq!(base.committed, ub.committed);
        // Strict monotonicity ("more resources is never slower") is
        // FALSE for out-of-order machines: the 16-way machine issues
        // loads in a different order, the D-cache replaces different
        // lines, and on adversarial address streams the wider machine
        // takes a few extra misses (a Graham/Belady-style scheduling
        // anomaly; see `scheduling_anomaly_regression` below for a
        // concrete 19-instruction case, base 178 vs UB 187 cycles).
        // What we can assert is a slack bound: the anomaly is a
        // second-order cache effect, never a structural slowdown.
        prop_assert!(ub.cycles <= base.cycles + base.cycles / 4 + 8,
            "ub {} vs base {}", ub.cycles, base.cycles);
    }
}

/// Regression for the scheduling anomaly found by fuzzing: a single
/// loop whose loads and stores straddle enough D-cache sets that the
/// 16-way machine's earlier (reordered) load issue evicts lines the
/// base machine kept. Both machines must commit the same stream and
/// stay within the documented slack; the UB machine genuinely runs a
/// handful of cycles *slower* here, which is expected and allowed.
#[test]
fn scheduling_anomaly_regression() {
    let asm = "
        entry:
            li r30, #7
            li r1, #131584
            li r2, #132096
            li r3, #132608
            li r5, #133632
            li r7, #134656
            li r8, #135168
            li r9, #135680
            li r10, #136192
            li r11, #136704
        body:
            add r6, r9, r2
            st r8, 32(r5)
            add r10, r2, #-32
            sll r11, r3, #12
            mul r7, r5, r3
            li r9, #152025
            add r1, r3, #-8
            ld r11, 56(r5)
            xor r3, r10, r5
            sll r7, r2, #7
            st r2, 0(r9)
            ld r2, 24(r7)
            li r11, #154753
            st r9, 32(r5)
            st r3, 24(r11)
            mul r5, r5, r11
            sll r3, r10, #5
            xor r4, r1, r10
            add r7, r10, #-22
            add r30, r30, #-1
            bge r30, r0, body
        exit:
            halt
    ";
    let prog = dca::prog::parse_asm(asm).expect("valid asm");
    let expected = Interp::new(&prog, Memory::new()).with_fuel(FUEL).count() as u64;
    let mut n1 = dca::steer::Naive::new();
    let base = Simulator::new(&SimConfig::paper_base(), &prog, Memory::new()).run(&mut n1, FUEL);
    let mut n2 = dca::steer::Naive::new();
    let ub =
        Simulator::new(&SimConfig::paper_upper_bound(), &prog, Memory::new()).run(&mut n2, FUEL);
    assert_eq!(base.committed, expected);
    assert_eq!(ub.committed, expected);
    // The anomaly shows up as extra D-cache misses on the wider
    // machine, not as a structural stall: bounded by the slack.
    assert!(
        ub.cycles <= base.cycles + base.cycles / 4 + 8,
        "ub {} vs base {}",
        ub.cycles,
        base.cycles
    );
}
