//! The strongest cross-cutting invariant of the reproduction: **no
//! steering scheme may change architecture**. Every one of the 13
//! schemes, on every machine it is legal for, must commit exactly the
//! dynamic instruction stream the functional interpreter produces, with
//! internally consistent statistics.

use dca::prog::{Block, Interp, Memory, Program};
use dca::isa::{Inst, Label, Opcode, Reg};
use dca::sim::{SimConfig, Simulator};
use dca_bench::{SchemeKind, ALL_SCHEMES};
use proptest::prelude::*;

const FUEL: u64 = 2_500;

fn arb_body_inst() -> impl Strategy<Value = Inst> {
    let reg = (1u8..12).prop_map(Reg::int);
    prop_oneof![
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(d, a, b)| Inst::add(d, a, b)),
        (reg.clone(), reg.clone(), -64i64..64).prop_map(|(d, a, i)| Inst::addi(d, a, i)),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(d, a, b)| Inst::xor(d, a, b)),
        (reg.clone(), reg.clone(), 0i64..16).prop_map(|(d, a, i)| Inst::slli(d, a, i)),
        (reg.clone(), -512i64..512).prop_map(|(d, i)| Inst::li(d, i)),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(d, a, b)| Inst::mul(d, a, b)),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(d, a, b)| Inst::div(d, a, b)),
        (reg.clone(), 0x20000i64..0x2FF00).prop_map(|(d, addr)| Inst::li(d, addr)),
        (reg.clone(), reg.clone(), 0i64..64).prop_map(|(d, b, off)| Inst::ld(d, b, off & !7)),
        (reg, (1u8..12).prop_map(Reg::int), 0i64..64)
            .prop_map(|(v, b, off)| Inst::st(v, b, off & !7)),
    ]
}

/// Multi-block looping programs with arena-confined memory accesses.
fn arb_program() -> impl Strategy<Value = Program> {
    (1usize..4, proptest::collection::vec(arb_body_inst(), 3..24)).prop_map(
        |(nblocks, mut pool)| {
            let counter = Reg::int(30);
            let mut blocks = Vec::new();
            let mut entry = vec![Inst::li(counter, 5)];
            for r in 1..12u8 {
                entry.push(Inst::li(Reg::int(r), 0x20000 + i64::from(r) * 512));
            }
            blocks.push(Block::new("entry", entry));
            let per_block = (pool.len() / nblocks).max(1);
            for bi in 0..nblocks {
                let take = per_block.min(pool.len());
                let mut insts: Vec<Inst> = pool.drain(..take).collect();
                if insts.is_empty() {
                    insts.push(Inst::nop());
                }
                let own = Label(bi as u32 + 1);
                insts.push(Inst::addi(counter, counter, -1));
                insts.push(Inst::bge(counter, Reg::ZERO, own));
                insts.push(Inst::li(counter, 5));
                blocks.push(Block::new(format!("b{bi}"), insts));
            }
            blocks.push(Block::new("exit", vec![Inst::halt()]));
            Program::from_blocks(split_ctrl(blocks)).expect("generated program is valid")
        },
    )
}

/// Mirror of the builder's auto-split for hand-assembled block lists.
fn split_ctrl(blocks: Vec<Block>) -> Vec<Block> {
    let mut out: Vec<Block> = Vec::new();
    let mut remap = Vec::new();
    for b in &blocks {
        remap.push(out.len() as u32);
        let mut cur = Vec::new();
        let mut part = 0;
        for &inst in &b.insts {
            let ctrl = inst.op.is_branch() || inst.op == Opcode::Halt;
            cur.push(inst);
            if ctrl {
                out.push(Block::new(
                    format!("{}p{part}", b.name),
                    std::mem::take(&mut cur),
                ));
                part += 1;
            }
        }
        if !cur.is_empty() || part == 0 {
            out.push(Block::new(format!("{}p{part}", b.name), cur));
        }
    }
    for b in &mut out {
        for inst in &mut b.insts {
            if let Some(l) = inst.target {
                inst.target = Some(Label(remap[l.0 as usize]));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All 13 schemes agree with the functional stream on the clustered
    /// machine, and their statistics are internally consistent.
    #[test]
    fn all_schemes_commit_the_functional_stream(prog in arb_program()) {
        let expected = Interp::new(&prog, Memory::new()).with_fuel(FUEL).count() as u64;
        let cfg = SimConfig::paper_clustered();
        for kind in ALL_SCHEMES {
            let mut scheme = kind.instantiate(&prog);
            let s = Simulator::new(&cfg, &prog, Memory::new())
                .run(scheme.as_mut(), FUEL);
            prop_assert_eq!(s.committed, expected, "{:?} diverged", kind);
            prop_assert_eq!(s.committed_uops, s.committed + s.copies, "{:?}", kind);
            prop_assert_eq!(s.steered[0] + s.steered[1], s.committed, "{:?}", kind);
            prop_assert!(s.critical_copies <= s.copies, "{:?}", kind);
            prop_assert_eq!(s.balance.cycles(), s.cycles, "{:?}", kind);
        }
    }

    /// The naive scheme on the base machine (the paper's denominator)
    /// also matches, and never communicates.
    #[test]
    fn base_machine_matches_and_never_copies(prog in arb_program()) {
        let expected = Interp::new(&prog, Memory::new()).with_fuel(FUEL).count() as u64;
        let mut scheme = SchemeKind::Naive.instantiate(&prog);
        let s = Simulator::new(&SimConfig::paper_base(), &prog, Memory::new())
            .run(scheme.as_mut(), FUEL);
        prop_assert_eq!(s.committed, expected);
        prop_assert_eq!(s.copies, 0);
        prop_assert_eq!(s.steered[1], 0, "integer work never reaches C2");
    }
}
