//! Smoke-scale reproduction sanity: the qualitative relationships the
//! paper establishes must hold even at reduced workload sizes.
//!
//! These are deliberately loose (suite means at smoke scale are noisy);
//! the full quantitative reproduction lives in the `dca-bench` figure
//! binaries and EXPERIMENTS.md.

use dca::sim::{SimConfig, SimStats, Simulator};
use dca::steer::{FifoSteering, GeneralBalance, Modulo, Naive, SliceKind, SliceSteering};
use dca::workloads::{build, Scale, NAMES};

const FUEL: u64 = 60_000;

fn mean_ipc(runs: &[SimStats]) -> f64 {
    runs.iter().map(SimStats::ipc).sum::<f64>() / runs.len() as f64
}

fn run_suite(cfg: &SimConfig, mut make: impl FnMut() -> Box<dyn dca::sim::Steering>) -> Vec<SimStats> {
    NAMES
        .iter()
        .map(|name| {
            let w = build(name, Scale::Smoke);
            let mut s = make();
            Simulator::new(cfg, &w.program, w.memory.clone()).run(s.as_mut(), FUEL)
        })
        .collect()
}

#[test]
fn upper_bound_dominates_everything() {
    let base = run_suite(&SimConfig::paper_base(), || Box::new(Naive::new()));
    let ub = run_suite(&SimConfig::paper_upper_bound(), || Box::new(Naive::new()));
    let general = run_suite(&SimConfig::paper_clustered(), || {
        Box::new(GeneralBalance::new())
    });
    for ((b, u), g) in base.iter().zip(&ub).zip(&general) {
        assert!(u.cycles <= b.cycles, "UB must not lose to base");
        // Allow tiny per-benchmark noise for general vs UB, but UB wins
        // overall.
        let _ = g;
    }
    assert!(mean_ipc(&ub) >= mean_ipc(&general));
    assert!(mean_ipc(&ub) > mean_ipc(&base));
}

#[test]
fn general_balance_beats_base_and_modulo_on_average() {
    let base = run_suite(&SimConfig::paper_base(), || Box::new(Naive::new()));
    let modulo = run_suite(&SimConfig::paper_clustered(), || Box::new(Modulo::new()));
    let general = run_suite(&SimConfig::paper_clustered(), || {
        Box::new(GeneralBalance::new())
    });
    assert!(
        mean_ipc(&general) > mean_ipc(&base),
        "general {} must beat base {}",
        mean_ipc(&general),
        mean_ipc(&base)
    );
    assert!(
        mean_ipc(&general) > mean_ipc(&modulo),
        "general {} must beat modulo {}",
        mean_ipc(&general),
        mean_ipc(&modulo)
    );
}

#[test]
fn modulo_communicates_far_more_than_general_balance() {
    let modulo = run_suite(&SimConfig::paper_clustered(), || Box::new(Modulo::new()));
    let general = run_suite(&SimConfig::paper_clustered(), || {
        Box::new(GeneralBalance::new())
    });
    let m: f64 = modulo.iter().map(SimStats::comms_per_inst).sum();
    let g: f64 = general.iter().map(SimStats::comms_per_inst).sum();
    assert!(m > 2.0 * g, "modulo {m} vs general {g}");
}

#[test]
fn fifo_communicates_more_than_general_balance() {
    // §3.9: "quite similar workload balance but the FIFO-based approach
    // generates a significantly higher number of communications."
    let fifo = run_suite(&SimConfig::paper_clustered(), || {
        Box::new(FifoSteering::paper())
    });
    let general = run_suite(&SimConfig::paper_clustered(), || {
        Box::new(GeneralBalance::new())
    });
    let f: f64 = fifo.iter().map(SimStats::comms_per_inst).sum();
    let g: f64 = general.iter().map(SimStats::comms_per_inst).sum();
    assert!(f > g, "fifo {f} vs general {g}");
}

#[test]
fn slice_steering_improves_over_base() {
    let base = run_suite(&SimConfig::paper_base(), || Box::new(Naive::new()));
    let ldst = run_suite(&SimConfig::paper_clustered(), || {
        Box::new(SliceSteering::new(SliceKind::LdSt))
    });
    assert!(mean_ipc(&ldst) > mean_ipc(&base));
}

#[test]
fn replication_is_low_under_general_balance() {
    // Figure 15: ~3 registers replicated on average, far below the full
    // 31-register replication of the 21264.
    let general = run_suite(&SimConfig::paper_clustered(), || {
        Box::new(GeneralBalance::new())
    });
    for s in &general {
        assert!(
            s.avg_replication() < 16.0,
            "replication {} too high",
            s.avg_replication()
        );
    }
}
