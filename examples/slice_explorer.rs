//! Slice explorer: the paper's running example (Figure 2) analysed by
//! the library — build the register dependence graph, print the LdSt
//! and Br slices, then steer the loop with both slice schemes and
//! compare the communications each generates.
//!
//! ```text
//! cargo run --example slice_explorer
//! ```

use dca::prog::{br_slice, ldst_slice, parse_asm, Memory, Rdg};
use dca::sim::{SimConfig, Simulator};
use dca::steer::{SliceKind, SliceSteering};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 2 of the paper:
    //     for (i = 0; i < N; i++) {
    //         if (C[i] != 0) A[i] = B[i] / C[i];
    //         else A[i] = 0;
    //     }
    // hand-compiled like the paper's assembly (r1 = i*8, r2/r3/r4 =
    // B/C/A base addresses, r5 = N*8).
    let prog = parse_asm(
        "entry:
            li  r1, #0           ; i = 0                      [paper 1]
            li  r2, #65536       ; B
            li  r3, #131072      ; C
            li  r4, #196608      ; A
            li  r5, #512         ; N*8
         for:
            add r6, r2, r1       ; EA = B + i                 [paper 2]
            ld  r7, 0(r6)        ; B[i]                       [paper 3]
            add r8, r3, r1       ; EA = C + i                 [paper 4]
            ld  r9, 0(r8)        ; C[i]                       [paper 5]
            beq r9, r0, else     ; if (C[i] == 0)             [paper 6]
            div r10, r7, r9      ; B[i] / C[i]                [paper 7]
            j   store            ;                            [paper 8]
         else:
            li  r10, #0          ; A[i] = 0                   [paper 9]
         store:
            add r11, r4, r1      ; EA = A + i                 [paper 10]
            st  r10, 0(r11)      ; A[i] = ...                 [paper 11]
            add r1, r1, #8       ; i++                        [paper 12]
            bne r1, r5, for      ;                            [paper 13]
         exit:
            halt",
    )?;

    let rdg = Rdg::build(&prog);
    let ldst = ldst_slice(&prog, &rdg);
    let br = br_slice(&prog, &rdg);

    println!("inst                          | LdSt | Br");
    println!("------------------------------+------+----");
    for si in prog.static_insts() {
        println!(
            "{:2}  {:25} |  {}   |  {}",
            si.sidx,
            si.inst.to_string(),
            if ldst.contains_sidx(si.sidx) { "x" } else { " " },
            if br.contains_sidx(si.sidx) { "x" } else { " " },
        );
    }
    println!(
        "\nLdSt slice: {} instructions; Br slice: {} instructions",
        ldst.inst_count(),
        br.inst_count()
    );
    println!(
        "The division (the store *data*) is in neither slice: store data \
         feeds the memory-access half of the store, which the paper keeps \
         disconnected from the address calculation (Section 3.1).\n"
    );

    // Now run the loop under both slice steerings (Section 3.3/3.4).
    let cfg = SimConfig::paper_clustered();
    for kind in [SliceKind::LdSt, SliceKind::Br] {
        let mut scheme = SliceSteering::new(kind);
        let stats = Simulator::new(&cfg, &prog, Memory::new()).run(&mut scheme, 100_000);
        println!(
            "{:4?} slice steering: IPC {:.2}, {} copies ({} critical), \
             steered INT/FP = {}/{}",
            kind,
            stats.ipc(),
            stats.copies,
            stats.critical_copies,
            stats.steered[0],
            stats.steered[1],
        );
    }
    Ok(())
}
