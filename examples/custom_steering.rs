//! Extending the library: implement your own steering scheme against
//! the public [`dca::sim::Steering`] interface and race it against the
//! paper's best mechanism.
//!
//! The custom scheme here is deliberately simple — "hash the PC" — a
//! plausible first idea that the paper's results implicitly argue
//! against, because it ignores both operand locality and workload
//! balance. Running this example shows by how much.
//!
//! ```text
//! cargo run --release --example custom_steering
//! ```

use dca::sim::{Allowed, ClusterId, DecodedView, SimConfig, Simulator, SteerCtx, Steering};
use dca::steer::{GeneralBalance, Naive};
use dca::workloads::{build, Scale};

/// Steer by PC hash: instructions at "even" line addresses go to the
/// integer cluster, others to the FP cluster.
struct PcHash;

impl Steering for PcHash {
    fn name(&self) -> String {
        "pc-hash".into()
    }

    fn steer(
        &mut self,
        d: &DecodedView<'_>,
        allowed: Allowed,
        _ctx: &SteerCtx,
    ) -> Option<ClusterId> {
        if let Some(f) = allowed.forced() {
            return Some(f);
        }
        Some(if (d.pc >> 5) & 1 == 0 {
            ClusterId::INT
        } else {
            ClusterId::FP
        })
    }
}

fn main() {
    let bench = "compress";
    let w = build(bench, Scale::Default);
    let cfg = SimConfig::paper_clustered();
    let base_cfg = SimConfig::paper_base();

    let base = Simulator::new(&base_cfg, &w.program, w.memory.clone())
        .run(&mut Naive::new(), 2_000_000);

    let mut mine = PcHash;
    let custom = Simulator::new(&cfg, &w.program, w.memory.clone()).run(&mut mine, 2_000_000);

    let mut paper = GeneralBalance::new();
    let best = Simulator::new(&cfg, &w.program, w.memory.clone()).run(&mut paper, 2_000_000);

    println!("benchmark: {bench}");
    println!(
        "{:<16} {:>8} {:>12} {:>12}",
        "scheme", "IPC", "speed-up", "comms/inst"
    );
    for (name, s) in [("base", &base), ("pc-hash", &custom), ("general bal.", &best)] {
        println!(
            "{:<16} {:>8.3} {:>11.1}% {:>12.3}",
            name,
            s.ipc(),
            s.speedup_over(&base),
            s.comms_per_inst()
        );
    }
    println!(
        "\nPC hashing balances the load but ignores dependences — its \
         communication rate is {}x the general balance scheme's.",
        (custom.comms_per_inst() / best.comms_per_inst().max(1e-9)).round()
    );
}
