//! Kernel gallery: run every micro-kernel under every steering scheme
//! and print the IPC matrix — a compact map of *which program structure
//! rewards which steering policy*.
//!
//! ```text
//! cargo run --release --example kernel_gallery
//! ```

use dca::prog::Program;
use dca::sim::{SimConfig, Simulator};
use dca::stats::Table;
use dca::steer::{
    GeneralBalance, Modulo, Naive, SliceBalance, SliceKind, SliceSteering,
};
use dca::workloads::kernels;
use dca::workloads::Workload;

fn schemes(prog: &Program) -> Vec<(&'static str, Box<dyn dca::sim::Steering>)> {
    let _ = prog;
    vec![
        ("naive", Box::new(Naive::new())),
        ("modulo", Box::new(Modulo::new())),
        ("ldst-slice", Box::new(SliceSteering::new(SliceKind::LdSt))),
        (
            "slice-bal",
            Box::new(SliceBalance::new(SliceKind::LdSt)),
        ),
        ("general", Box::new(GeneralBalance::new())),
    ]
}

fn main() {
    let kernels: Vec<(&str, Workload)> = vec![
        ("serial-chain", kernels::serial_chain(4000, 6)),
        ("parallel×6", kernels::parallel_chains(4000, 6)),
        ("pointer-chase", kernels::pointer_chase(256, 24)),
        ("twin-walks", kernels::twin_walks(256, 24)),
        ("branchy-50%", kernels::branchy(1024, 8, 50)),
        ("streaming", kernels::streaming(8192, 4, 1)),
    ];
    let mut headers = vec!["kernel"];
    let names: Vec<&str> = schemes(&kernels[0].1.program)
        .iter()
        .map(|(n, _)| *n)
        .collect();
    headers.extend(names.iter().copied());
    let mut t = Table::new(&headers);
    for (label, w) in &kernels {
        let mut row = vec![label.to_string()];
        for (_, mut scheme) in schemes(&w.program) {
            let s = Simulator::new(&SimConfig::paper_clustered(), &w.program, w.memory.clone())
                .run(scheme.as_mut(), 2_000_000);
            row.push(format!("{:.2}", s.ipc()));
        }
        t.row(&row);
    }
    println!("IPC by kernel × steering scheme (paper's clustered machine)\n");
    println!("{}", t.to_aligned());
    println!(
        "\nReading the map: no scheme dominates — structure decides.\n\
         * serial-chain: anything that cuts the chain pays (modulo halves\n\
           IPC); keeping it in one cluster (naive/ldst-slice) is optimal.\n\
         * parallel chains: pure balance problem — modulo/balance schemes\n\
           double naive's IPC by using both clusters.\n\
         * pointer-chase: load-latency-bound; steering barely matters, it\n\
           can only lose by cutting the address recurrence (modulo).\n\
         * twin-walks: two slice families — schemes that migrate a whole\n\
           walk (ldst-slice here, modulo by accident of parity) win over\n\
           keeping both local.\n\
         * the balanced generalists (slice-bal/general) are never the\n\
           worst case on any structure: exactly the paper's argument for\n\
           them on mixed real programs."
    );
}
