//! Design-space sweep: how sensitive is general balance steering to
//! the number of inter-cluster buses and the copy latency?
//!
//! §3.8 of the paper claims one bus per direction performs as well as
//! three; this example reproduces that claim and extends it with a
//! latency sweep the paper motivates in its wire-delay introduction.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use dca::sim::{SimConfig, Simulator};
use dca::steer::{GeneralBalance, Naive};
use dca::workloads::{build, Scale};

fn main() {
    let benches = ["compress", "m88ksim", "vortex"];
    let fuel = 1_000_000;

    println!("General balance steering: mean speed-up over base vs bus design\n");
    println!(
        "{:<26} {:>12} {:>12} {:>12}",
        "configuration", benches[0], benches[1], benches[2]
    );

    let mut base_ipc = Vec::new();
    for b in benches {
        let w = build(b, Scale::Default);
        let s = Simulator::new(&SimConfig::paper_base(), &w.program, w.memory.clone())
            .run(&mut Naive::new(), fuel);
        base_ipc.push(s.ipc());
    }

    for (label, buses, latency) in [
        ("3 buses / 1 cycle (paper)", 3, 1),
        ("1 bus   / 1 cycle (§3.8)", 1, 1),
        ("3 buses / 2 cycles", 3, 2),
        ("3 buses / 4 cycles", 3, 4),
        ("1 bus   / 4 cycles", 1, 4),
    ] {
        let mut cfg = SimConfig::paper_clustered();
        cfg.buses_per_dir = buses;
        cfg.copy_latency = latency;
        let mut cells = Vec::new();
        for (k, b) in benches.iter().enumerate() {
            let w = build(b, Scale::Default);
            let s = Simulator::new(&cfg, &w.program, w.memory.clone())
                .run(&mut GeneralBalance::new(), fuel);
            cells.push(format!("{:+.1}%", (s.ipc() / base_ipc[k] - 1.0) * 100.0));
        }
        println!(
            "{:<26} {:>12} {:>12} {:>12}",
            label, cells[0], cells[1], cells[2]
        );
    }
    println!(
        "\nExpectation from the paper: the first two rows are nearly equal\n\
         (bus count barely matters at these communication rates), while\n\
         growing copy latency steadily erodes the clustered speed-up."
    );
}
