//! Quickstart: assemble a small program, simulate it on the base and
//! clustered machines, and print the speed-up.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dca::prog::{parse_asm, Memory};
use dca::sim::{SimConfig, Simulator};
use dca::steer::{GeneralBalance, Naive};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A little histogram kernel: loads, hashing, data-dependent
    // branches — enough for the steering logic to have real choices.
    let program = parse_asm(
        "entry:
            li  r1, #0          ; i
            li  r2, #20000      ; iterations
            li  r3, #65536      ; data array
            li  r4, #131072     ; histogram array
            li  r5, #0x0        ; will fail? no: plain decimal only
            halt",
    );
    // (Demonstrating error handling: `0x0` is not valid assembler
    // syntax, so we get a diagnostic with the line number.)
    assert!(program.is_err());

    let program = parse_asm(
        "entry:
            li  r1, #0          ; i
            li  r2, #20000      ; iterations
            li  r3, #65536      ; data array
            li  r4, #131072     ; histogram array
         loop:
            and r6, r1, #1023
            sll r6, r6, #3
            add r6, r6, r3
            ld  r7, 0(r6)       ; x = data[i % 1024]
            and r8, r7, #255
            sll r8, r8, #3
            add r8, r8, r4
            ld  r9, 0(r8)       ; h = hist[x % 256]
            add r9, r9, #1
            st  r9, 0(r8)       ; hist[x % 256]++
            blt r7, r0, skip    ; data-dependent branch
            xor r10, r10, r7
         skip:
            add r1, r1, #1
            bne r1, r2, loop
            halt",
    )?;

    // Seed the data array with something irregular.
    let mut mem = Memory::new();
    for i in 0..1024u64 {
        let v = (i.wrapping_mul(2654435761) >> 7) as i64 - (1 << 24);
        mem.write_i64(65536 + i * 8, v);
    }

    let base = Simulator::new(&SimConfig::paper_base(), &program, mem.clone())
        .run(&mut Naive::new(), 1_000_000);
    let clustered = Simulator::new(&SimConfig::paper_clustered(), &program, mem)
        .run(&mut GeneralBalance::new(), 1_000_000);

    println!("base machine      : IPC {:.3} ({} cycles)", base.ipc(), base.cycles);
    println!(
        "general balance   : IPC {:.3} ({} cycles), {:.3} comms/inst, {:.1} regs replicated",
        clustered.ipc(),
        clustered.cycles,
        clustered.comms_per_inst(),
        clustered.avg_replication(),
    );
    println!(
        "speed-up          : {:+.1}%  (the paper reports +36% on SpecInt95 average)",
        clustered.speedup_over(&base)
    );
    Ok(())
}
