//! Pipeline viewer: trace a small kernel cycle-by-cycle under two
//! steering schemes and render the pipetrace diagrams side by side —
//! the copy µops and the stalls they cause are directly visible.
//!
//! ```text
//! cargo run --example pipeline_viewer
//! ```

use dca::prog::{parse_asm, Memory};
use dca::sim::{SimConfig, Simulator, Steering, Trace};
use dca::steer::{GeneralBalance, Modulo};

fn trace_with(scheme: &mut dyn Steering) -> (dca::sim::SimStats, Trace) {
    // A serial dependence chain crossed with an independent strand:
    // modulo steering cuts the chain every other instruction, general
    // balance keeps each strand in one cluster.
    let prog = parse_asm(
        "entry:
            li r1, #6           ; loop counter
         loop:
            add r2, r2, #1      ; serial chain
            add r2, r2, #2
            add r2, r2, #3
            add r3, r3, #5      ; independent strand
            add r1, r1, #-1
            bne r1, r0, loop
            halt",
    )
    .expect("kernel assembles");
    let mut sim = Simulator::new(&SimConfig::paper_clustered(), &prog, Memory::new());
    sim.enable_trace(256);
    let stats = sim.run_mut(scheme, 10_000);
    (stats, sim.take_trace().expect("tracing enabled"))
}

fn main() {
    for (label, scheme) in [
        ("modulo", &mut Modulo::new() as &mut dyn Steering),
        ("general balance", &mut GeneralBalance::new()),
    ] {
        let (stats, trace) = trace_with(scheme);
        println!("==== {label} ====");
        println!(
            "cycles {}  IPC {:.2}  copies {} ({} critical)\n",
            stats.cycles,
            stats.ipc(),
            stats.copies,
            stats.critical_copies
        );
        println!("{}", trace.render_table());
        println!("{}", trace.render_pipe(0, 64));
        println!(
            "mean IQ wait: INT {:.1} cycles, FP {:.1} cycles\n",
            trace.mean_queue_wait(dca::sim::ClusterId::INT),
            trace.mean_queue_wait(dca::sim::ClusterId::FP),
        );
    }
    println!(
        "Every `> copy` row is an inter-cluster transfer; under modulo \
         steering they sit on the serial chain's critical path (the `e` of \
         the consumer starts only after the copy's `e` finishes), while \
         general balance keeps the chain local and the copies disappear."
    );
}
