//! A tiny, dependency-free stand-in for the [proptest] crate.
//!
//! The build environment has no access to crates.io, so this shim
//! implements exactly the subset of the proptest API this workspace's
//! tests use: integer-range / tuple / `Just` / mapped / union / vec
//! strategies, `any::<bool>()`, the `proptest!`, `prop_oneof!` and
//! `prop_assert*` macros, and `ProptestConfig::with_cases`.
//!
//! Semantics differ from the real crate in two deliberate ways:
//!
//! * **no shrinking** — a failing case panics with the generated input
//!   (via the regular assert message), it is not minimised;
//! * **deterministic seeding** — cases derive from a fixed per-test
//!   seed (FNV of the test name), so failures reproduce across runs.
//!
//! [proptest]: https://crates.io/crates/proptest

/// Deterministic 64-bit generator (SplitMix64) driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from `name` (FNV-1a), stable across runs.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A value generator. The real crate's `Strategy` also carries
/// shrinking machinery; here it is only generation.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (lo + off) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);

/// Uniform choice between boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; `options` must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.options.len() as u64) as usize;
        self.options[k].generate(rng)
    }
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Generates a uniformly random `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_int {
    ($($t:ty => $anyname:ident),+) => {$(
        /// Generates any value of the type.
        #[derive(Clone, Copy, Debug, Default)]
        pub struct $anyname;

        impl Strategy for $anyname {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = $anyname;

            fn arbitrary() -> $anyname {
                $anyname
            }
        }
    )+};
}

arbitrary_int!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64,
               i8 => AnyI8, i16 => AnyI16, i32 => AnyI32, i64 => AnyI64);

/// The canonical strategy for `T` (`any::<bool>()` et al.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// A vector whose length is uniform in `len` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Number of cases to run per property (the only knob this shim keeps).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Cases generated per property function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Asserts a condition inside a property (plain `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($strategy)),+];
        $crate::Union::new(options)
    }};
}

/// Defines `#[test]` functions that run their body over generated
/// inputs. Supports the `#![proptest_config(..)]` header and one or
/// more `fn name(arg in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (@funcs ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let config = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (@funcs ($config:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// The glob-import module mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (1u8..10).generate(&mut rng);
            assert!((1..10).contains(&v));
            let w = (-64i64..64).generate(&mut rng);
            assert!((-64..64).contains(&w));
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..200 {
            let v = collection::vec(0u64..5, 2..7).generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_multiple_args(a in 0u32..10, b in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(a < 10);
            prop_assert_ne!(b, 0);
            prop_assert_eq!(u32::from(b).min(2), u32::from(b));
        }
    }
}
