//! A tiny, dependency-free stand-in for the [criterion] benchmark
//! harness.
//!
//! The build environment has no access to crates.io, so this shim
//! implements the subset this workspace's benches use: `Criterion`,
//! `benchmark_group` / `bench_function` / `throughput` / `finish`,
//! `Bencher::iter`, `black_box`, `Throughput::Elements` and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark warms up briefly, then takes
//! `sample_size` samples (each a timed batch of iterations sized to
//! ~5 ms) and reports the **median** ns/iteration, plus elements/s
//! when a throughput was declared. No statistical analysis, plots or
//! baselines.
//!
//! Machine-readable output: when the environment variable
//! `CRITERION_SHIM_JSON` names a path, the final summary is also
//! written there as JSON (used by CI to record `BENCH_pipeline.json`).
//!
//! [criterion]: https://crates.io/crates/criterion

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work performed per iteration, used to derive a rate.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// `group/function` identifier.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations measured in total.
    pub iterations: u64,
    /// Declared per-iteration workload, if any.
    pub throughput: Option<Throughput>,
}

impl Measurement {
    /// Elements (or bytes) per second, when a throughput was declared.
    pub fn rate_per_sec(&self) -> Option<f64> {
        let n = match self.throughput? {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        };
        if self.ns_per_iter <= 0.0 {
            return None;
        }
        Some(n as f64 * 1e9 / self.ns_per_iter)
    }
}

/// Runs closures under timing (the argument of `bench_function`).
pub struct Bencher<'m> {
    samples: &'m mut Vec<f64>,
    iters_done: &'m mut u64,
    sample_size: usize,
}

impl Bencher<'_> {
    /// Times `routine`, collecting the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch sizing: grow the batch until one batch
        // takes ≥ ~5 ms (or 1<<20 iterations, whichever first).
        let mut batch: u64 = 1;
        let target = Duration::from_millis(5);
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            *self.iters_done += batch;
            if dt >= target || batch >= 1 << 20 {
                self.samples
                    .push(dt.as_nanos() as f64 / batch as f64);
                break;
            }
            batch *= 2;
        }
        for _ in 1..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            *self.iters_done += batch;
            self.samples.push(dt.as_nanos() as f64 / batch as f64);
        }
    }
}

/// A named group of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration workload for subsequent functions.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measures one benchmark function.
    pub fn bench_function<N: AsRef<str>, F>(&mut self, name: N, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let name = name.as_ref();
        let mut samples = Vec::new();
        let mut iters = 0u64;
        {
            let mut b = Bencher {
                samples: &mut samples,
                iters_done: &mut iters,
                sample_size: self.criterion.sample_size,
            };
            f(&mut b);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let median = if samples.is_empty() {
            0.0
        } else {
            samples[samples.len() / 2]
        };
        let m = Measurement {
            id: format!("{}/{}", self.name, name),
            ns_per_iter: median,
            iterations: iters,
            throughput: self.throughput,
        };
        report(&m);
        self.criterion.results.push(m);
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(&mut self) {}
}

fn human_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn report(m: &Measurement) {
    match m.rate_per_sec() {
        Some(rate) => println!(
            "{:<44} time: {:>12}   thrpt: {:.3} Melem/s",
            m.id,
            human_time(m.ns_per_iter),
            rate / 1e6
        ),
        None => println!("{:<44} time: {:>12}", m.id, human_time(m.ns_per_iter)),
    }
}

/// The harness entry point: holds configuration and collected results.
pub struct Criterion {
    sample_size: usize,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            throughput: None,
        }
    }

    /// All measurements taken so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Writes the JSON summary if `CRITERION_SHIM_JSON` is set.
    /// Called by `criterion_main!` after all groups have run.
    pub fn write_json_summary(&self) {
        let Ok(path) = std::env::var("CRITERION_SHIM_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let mut out = String::from("{\n  \"benchmarks\": [\n");
        for (i, m) in self.results.iter().enumerate() {
            let sep = if i + 1 == self.results.len() { "" } else { "," };
            let rate = m
                .rate_per_sec()
                .map_or("null".to_string(), |r| format!("{r:.1}"));
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"per_sec\": {}}}{}\n",
                m.id, m.ns_per_iter, rate, sep
            ));
        }
        out.push_str("  ]\n}\n");
        match std::fs::write(&path, out) {
            Ok(()) => eprintln!("[criterion-shim] wrote {path}"),
            Err(e) => eprintln!("[criterion-shim] could not write {path}: {e}"),
        }
    }
}

/// Declares a benchmark group function (criterion's `name`/`config`/
/// `targets` form and the positional form are both accepted).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() -> $crate::Criterion {
            let mut criterion = $config;
            $($target(&mut criterion);)+
            criterion
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main`, running each group and emitting the JSON summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench` (and possibly filters) to
            // harness-less bench binaries; this shim runs everything.
            $(
                let criterion = $group();
                criterion.write_json_summary();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default().sample_size(3);
        work(&mut c);
        assert_eq!(c.results().len(), 1);
        let m = &c.results()[0];
        assert_eq!(m.id, "shim/sum");
        assert!(m.ns_per_iter > 0.0);
        assert!(m.rate_per_sec().expect("throughput declared") > 0.0);
    }

    #[test]
    fn human_units() {
        assert!(human_time(12.0).ends_with("ns"));
        assert!(human_time(12_000.0).ends_with("µs"));
        assert!(human_time(12_000_000.0).ends_with("ms"));
        assert!(human_time(2e9).ends_with(" s"));
    }
}
