#!/usr/bin/env bash
# Observability overhead benchmark (ISSUE 8 acceptance): runs
# `figures sampling` at paper scale with and without span tracing +
# metrics export, REPS times each against a fresh (cold) store
# directory, and asserts that
#   (a) the best instrumented wall-clock is within MAX_OVERHEAD_PCT of
#       the best baseline wall-clock,
#   (b) results/sampling.md is byte-identical between the two modes,
#   (c) the emitted trace passes obs_validate (valid Chrome
#       trace-event JSON with spans from all four layers) and the
#       metrics file is a well-formed Prometheus exposition.
# Records everything in BENCH_obs.json.
#
# Usage: scripts/bench_obs.sh [output.json]
#   FIGURES_BIN       figures binary   (default target/release/figures)
#   VALIDATE_BIN      obs_validate     (default target/release/obs_validate)
#   SCALE             figures scale    (default paper)
#   REPS              runs per mode    (default 3; best-of is compared)
#   MAX_OVERHEAD_PCT  acceptance gate  (default 2)
#   EXTRA_ARGS        extra figures flags (e.g. --sample-period N to
#                     force sampling at non-paper scales)
set -euo pipefail

OUT="${1:-BENCH_obs.json}"
BIN="${FIGURES_BIN:-target/release/figures}"
VALIDATE="${VALIDATE_BIN:-target/release/obs_validate}"
SCALE="${SCALE:-paper}"
REPS="${REPS:-3}"
MAX_OVERHEAD_PCT="${MAX_OVERHEAD_PCT:-2}"
EXTRA_ARGS="${EXTRA_ARGS:-}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

[ -x "$BIN" ] || { echo "error: $BIN not built (cargo build --release -p dca-bench --bin figures)" >&2; exit 1; }
[ -x "$VALIDATE" ] || { echo "error: $VALIDATE not built (cargo build --release -p dca-bench --bin obs_validate)" >&2; exit 1; }

# One cold sampled run; echoes its wall-clock in ns. $2.. are extra
# figures flags (the instrumented mode's --trace-out/--metrics-out).
run() { # label [extra flags...]
  local label="$1"; shift
  local store="$TMP/store-$label" t0 t1
  rm -rf "$store"
  t0=$(date +%s%N)
  # shellcheck disable=SC2086 — EXTRA_ARGS is intentionally word-split.
  "$BIN" sampling --scale "$SCALE" --store-dir "$store" $EXTRA_ARGS "$@" \
    >"$TMP/$label.out" 2>"$TMP/$label.err"
  t1=$(date +%s%N)
  cp results/sampling.md "$TMP/$label.md"
  echo $((t1 - t0))
}

BASE_BEST=""
OBS_BEST=""
for i in $(seq 1 "$REPS"); do
  b=$(run "base$i")
  o=$(run "obs$i" --trace-out "$TMP/trace$i.json" --metrics-out "$TMP/metrics$i.prom")
  if [ -z "$BASE_BEST" ] || [ "$b" -lt "$BASE_BEST" ]; then BASE_BEST=$b; fi
  if [ -z "$OBS_BEST" ] || [ "$o" -lt "$OBS_BEST" ]; then OBS_BEST=$o; fi
done

# (b) instrumentation must not perturb report bytes.
if ! cmp -s "$TMP/base1.md" "$TMP/obs1.md"; then
  echo "FAIL: results/sampling.md differs with tracing/metrics enabled" >&2
  diff "$TMP/base1.md" "$TMP/obs1.md" >&2 || true
  exit 1
fi

# (c) the artefacts themselves are valid.
"$VALIDATE" "$TMP/trace1.json" "$TMP/metrics1.prom"

# (a) wall-clock overhead of the instrumented run.
read -r BASE_S OBS_S OVERHEAD OK <<<"$(awk -v b="$BASE_BEST" -v o="$OBS_BEST" -v m="$MAX_OVERHEAD_PCT" \
  'BEGIN { bs=b/1e9; os=o/1e9; ov=(os-bs)/(bs>0?bs:1e-9)*100; printf "%.3f %.3f %.2f %d", bs, os, ov, (ov<=m) }')"

TRACE_EVENTS=$(grep -c '"ph": "X"' "$TMP/trace1.json" || true)
cat >"$OUT" <<JSON
{
  "benchmark": "observability overhead (figures sampling --scale $SCALE, cold store, best of $REPS)",
  "baseline_secs": $BASE_S,
  "instrumented_secs": $OBS_S,
  "overhead_pct": $OVERHEAD,
  "max_overhead_pct": $MAX_OVERHEAD_PCT,
  "trace_span_events": $TRACE_EVENTS,
  "report_byte_identical": true,
  "artefacts_valid": true
}
JSON
cat "$OUT"

if [ "$OK" != "1" ]; then
  echo "FAIL: instrumented run ${OVERHEAD}% slower (limit ${MAX_OVERHEAD_PCT}%)" >&2
  exit 1
fi
echo "OK: instrumentation overhead ${OVERHEAD}% (limit ${MAX_OVERHEAD_PCT}%), byte-identical report, valid artefacts"
