#!/usr/bin/env bash
# HTTP-front benchmark (ISSUE 10 acceptance): starts `dca serve` with
# both fronts and `--jobs 2`, fans FRAME_N framed clients and HTTP_N
# curl clients at the same figure, and asserts
#   (a) every report is byte-identical across transports AND matches
#       what offline `dca figures` writes to results/sampling.md,
#   (b) requests coalesced across transports: dedup_hits >= 3,
#   (c) the daemon shuts down cleanly: exit 0, unix socket unlinked,
#       HTTP port closed, no leaked lock files or .tmp-* temps.
# Records the fan-out latency in BENCH_serve_http.json.
#
# Usage: scripts/bench_serve_http.sh [output.json]
#   DCA_BIN   dca binary            (default target/release/dca)
#   SCALE     figure scale          (default paper)
#   FRAME_N   framed clients        (default 4)
#   HTTP_N    curl clients          (default 4)
set -euo pipefail

OUT="${1:-BENCH_serve_http.json}"
case "$OUT" in /*) ;; *) OUT="$PWD/$OUT" ;; esac
BIN="${DCA_BIN:-target/release/dca}"
case "$BIN" in /*) ;; *) BIN="$PWD/$BIN" ;; esac
SCALE="${SCALE:-paper}"
FRAME_N="${FRAME_N:-4}"
HTTP_N="${HTTP_N:-4}"
TMP="$(mktemp -d)"
SOCK="$TMP/dca.sock"
STORE="$TMP/store"
SRV=""
cleanup() {
  [ -n "$SRV" ] && kill "$SRV" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

[ -x "$BIN" ] || { echo "error: $BIN not built (cargo build --release -p dca-cli)" >&2; exit 1; }
command -v curl >/dev/null || { echo "error: curl not available" >&2; exit 1; }

# Start the daemon with both fronts; parse the ephemeral HTTP port
# from its stderr progress line ("serve: http on 127.0.0.1:PORT").
"$BIN" serve --listen "$SOCK" --http-addr 127.0.0.1:0 --jobs 2 \
  --store-dir "$STORE" 2>"$TMP/serve.log" &
SRV=$!
HTTP=""
for _ in $(seq 1 100); do
  if [ -S "$SOCK" ]; then
    HTTP=$(grep -o 'serve: http on [0-9.:]*' "$TMP/serve.log" | head -1 | awk '{print $4}')
    [ -n "$HTTP" ] && break
  fi
  sleep 0.1
done
if [ -z "$HTTP" ]; then
  echo "FAIL: daemon did not bind both fronts:" >&2
  cat "$TMP/serve.log" >&2
  exit 1
fi

PAYLOAD='{"figure": "sampling", "args": ["--scale", "'"$SCALE"'"]}'

# One curl client: submit, poll to completion, fetch the report.
http_fetch() { # outfile
  local resp job
  resp=$(curl -sS -X POST -H 'content-type: application/json' \
    --data "$PAYLOAD" "http://$HTTP/v1/figures")
  job=$(printf '%s' "$resp" | grep -o '"job":[0-9]*' | grep -o '[0-9]*$')
  [ -n "$job" ] || { echo "FAIL: submit reply lacks a job id: $resp" >&2; return 1; }
  until curl -sS "http://$HTTP/v1/jobs/$job" | grep -q '"state":"done"'; do
    sleep 0.2
  done
  curl -sS -o "$1" "http://$HTTP/v1/jobs/$job/result"
}

# ---- fan-out: HTTP_N curl + FRAME_N framed clients, one figure ------
T0=$(date +%s%N)
# The first POST starts the job; everyone else must coalesce onto it.
http_fetch "$TMP/http-1.md" &
pids=("$!")
sleep 0.3
for i in $(seq 2 "$HTTP_N"); do
  http_fetch "$TMP/http-$i.md" &
  pids+=("$!")
done
for i in $(seq 1 "$FRAME_N"); do
  "$BIN" client --addr "$SOCK" --figure sampling \
    --out "$TMP/frame-$i.md" --json-out "$TMP/frame-$i.json" -q \
    -- --scale "$SCALE" &
  pids+=("$!")
done
for p in "${pids[@]}"; do wait "$p"; done
T1=$(date +%s%N)

# (a) byte-identical across transports...
for f in $(seq 1 "$FRAME_N"); do
  if ! cmp -s "$TMP/http-1.md" "$TMP/frame-$f.md"; then
    echo "FAIL: frame client $f's report differs from the HTTP one" >&2
    diff "$TMP/http-1.md" "$TMP/frame-$f.md" >&2 || true
    exit 1
  fi
done
for h in $(seq 2 "$HTTP_N"); do
  if ! cmp -s "$TMP/http-1.md" "$TMP/http-$h.md"; then
    echo "FAIL: HTTP client $h's report differs from HTTP client 1's" >&2
    exit 1
  fi
done
# ...and identical to what offline `dca figures` writes.
mkdir -p "$TMP/offline"
(cd "$TMP/offline" && "$BIN" figures sampling --scale "$SCALE" --no-store -q \
  >/dev/null 2>"$TMP/offline.log")
if ! cmp -s "$TMP/http-1.md" "$TMP/offline/results/sampling.md"; then
  echo "FAIL: served report differs from offline dca figures output" >&2
  diff "$TMP/http-1.md" "$TMP/offline/results/sampling.md" >&2 || true
  exit 1
fi

# (b) cross-transport dedup: everyone after the first coalesced.
DEDUP=$("$BIN" client --addr "$SOCK" --stats \
  | grep -o '"dedup_hits": [0-9]*' | grep -o '[0-9]*$')
if [ "$DEDUP" -lt 3 ]; then
  echo "FAIL: expected >= 3 cross-transport dedup hits, got $DEDUP" >&2
  exit 1
fi

# (c) clean shutdown over HTTP; nothing leaked.
curl -sS -X POST "http://$HTTP/v1/shutdown" >/dev/null
if ! wait "$SRV"; then
  echo "FAIL: daemon exited non-zero" >&2
  exit 1
fi
SRV=""
if [ -e "$SOCK" ]; then
  echo "FAIL: daemon left its socket file behind" >&2
  exit 1
fi
if curl -s --max-time 2 "http://$HTTP/v1/ping" >/dev/null 2>&1; then
  echo "FAIL: HTTP port still answering after shutdown" >&2
  exit 1
fi
LEAKED=$(find "$STORE" \( -name '*.lock' -o -name '.tmp-*' \) 2>/dev/null | wc -l)
if [ "$LEAKED" -ne 0 ]; then
  echo "FAIL: $LEAKED leaked lock/temp file(s) after shutdown:" >&2
  find "$STORE" \( -name '*.lock' -o -name '.tmp-*' \) >&2
  exit 1
fi

FAN_MS=$(awk -v n=$((T1 - T0)) 'BEGIN { printf "%.1f", n / 1e6 }')
cat >"$OUT" <<JSON
{
  "benchmark": "dca serve --http-addr --jobs 2 (figure sampling --scale $SCALE)",
  "frame_clients": $FRAME_N,
  "http_clients": $HTTP_N,
  "jobs": 2,
  "fanout_latency_ms": $FAN_MS,
  "dedup_hits": $DEDUP,
  "reports_byte_identical": true,
  "matches_offline_figures": true,
  "clean_shutdown": true
}
JSON
cat "$OUT"
echo "OK: $HTTP_N http + $FRAME_N frame clients, $DEDUP coalesced, clean shutdown"
