#!/usr/bin/env bash
# Cold-versus-warm-store benchmark of the sampling quartet (ISSUE 3
# acceptance, extended by the continuous-warming work): runs
# `figures sampling --scale paper` three times against the same store
# directory — cold (fresh directory), then twice warm — and records
# the cold/warm wall-clocks in BENCH_store.json.
#
# Asserts that the warm run (a) executed zero fast-forward
# instructions, (b) produced a byte-identical results/sampling.md —
# including across the two back-to-back warm invocations (the
# continuous-warming paper run must be stable under a warm store) —
# and (c) was at least MIN_SPEEDUP× faster than the cold run.
#
# Usage: scripts/bench_store.sh [output.json]
#   FIGURES_BIN  figures binary       (default target/release/figures)
#   STORE_DIR    store directory      (default .dca-store-bench, wiped)
#   MIN_SPEEDUP  acceptance threshold (default 5)
set -euo pipefail

OUT="${1:-BENCH_store.json}"
BIN="${FIGURES_BIN:-target/release/figures}"
STORE_DIR="${STORE_DIR:-.dca-store-bench}"
MIN_SPEEDUP="${MIN_SPEEDUP:-5}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

[ -x "$BIN" ] || { echo "error: $BIN not built (cargo build --release -p dca-bench --bin figures)" >&2; exit 1; }

rm -rf "$STORE_DIR"

run() { # label
  local label="$1" t0 t1
  t0=$(date +%s%N)
  SAMPLING_JSON="$TMP/$label.json" "$BIN" sampling --scale paper \
    --store-dir "$STORE_DIR" >"$TMP/$label.out" 2>"$TMP/$label.err"
  t1=$(date +%s%N)
  cp results/sampling.md "$TMP/$label.md"
  echo $((t1 - t0))
}

COLD_NS=$(run cold)
WARM_NS=$(run warm)
WARM2_NS=$(run warm2)

# (b) byte-identical measurement report — cold vs warm, and across two
# back-to-back warm-store invocations.
if ! cmp -s "$TMP/cold.md" "$TMP/warm.md"; then
  echo "FAIL: results/sampling.md differs between cold and warm runs" >&2
  diff "$TMP/cold.md" "$TMP/warm.md" >&2 || true
  exit 1
fi
if ! cmp -s "$TMP/warm.md" "$TMP/warm2.md"; then
  echo "FAIL: results/sampling.md differs between back-to-back warm runs" >&2
  diff "$TMP/warm.md" "$TMP/warm2.md" >&2 || true
  exit 1
fi

# The store uses the sharded v3 layout (ISSUE 6): checkpoint streams
# under ck/, interval results under rs/, both populated by the runs.
for sub in ck rs; do
  n=$(find "$STORE_DIR/$sub" -type f 2>/dev/null | wc -l)
  if [ "$n" -eq 0 ]; then
    echo "FAIL: sharded store layout missing a populated $STORE_DIR/$sub/" >&2
    exit 1
  fi
done

# The sampling summary must carry the detached-vs-continuous warming
# transient delta (cold-vs-continuous bias measurement, DESIGN.md §9).
if ! grep -q '"warming_transient"' "$TMP/warm.json"; then
  echo "FAIL: BENCH_sampling summary lacks the warming_transient block" >&2
  exit 1
fi
TRANSIENT=$(grep -o '"warming_transient": {[^}]*}' "$TMP/warm.json" | head -1)

# (a) zero fast-forward instructions on the warm run.
WARM_FF=$(grep -o '"executed_insts": [0-9]*' "$TMP/warm.json" | head -1 | grep -o '[0-9]*$')
COLD_FF=$(grep -o '"executed_insts": [0-9]*' "$TMP/cold.json" | head -1 | grep -o '[0-9]*$')
if [ "$WARM_FF" != "0" ]; then
  echo "FAIL: warm run executed $WARM_FF fast-forward instructions (want 0)" >&2
  exit 1
fi

# (c) wall-clock speed-up.
read -r COLD_S WARM_S SPEEDUP OK <<<"$(awk -v c="$COLD_NS" -v w="$WARM_NS" -v m="$MIN_SPEEDUP" \
  'BEGIN { cs=c/1e9; ws=w/1e9; sp=cs/(ws>0?ws:1e-9); printf "%.3f %.3f %.1f %d", cs, ws, sp, (sp>=m) }')"

WARM2_S=$(awk -v w="$WARM2_NS" 'BEGIN { printf "%.3f", w/1e9 }')
cat >"$OUT" <<JSON
{
  "benchmark": "sampling quartet (figures sampling --scale paper)",
  "cold_secs": $COLD_S,
  "warm_secs": $WARM_S,
  "warm2_secs": $WARM2_S,
  "speedup_warm_vs_cold": $SPEEDUP,
  "min_speedup_required": $MIN_SPEEDUP,
  "cold_fast_forward_insts": $COLD_FF,
  "warm_fast_forward_insts": $WARM_FF,
  "report_byte_identical": true,
  "warm_runs_byte_identical": true,
  $TRANSIENT
}
JSON
cat "$OUT"

if [ "$OK" != "1" ]; then
  echo "FAIL: warm-store speed-up ${SPEEDUP}x below required ${MIN_SPEEDUP}x" >&2
  exit 1
fi
echo "OK: warm store ${SPEEDUP}x faster, zero fast-forward instructions, byte-identical report"
