#!/usr/bin/env bash
# Serve-mode benchmark (ISSUE 9 acceptance): starts the `dca serve`
# daemon on a unix socket, fans CLIENTS concurrent clients at the
# same figure, and asserts
#   (a) every client's report is byte-identical,
#   (b) the daemon computed ONCE — dedup_hits == CLIENTS-1,
#   (c) the daemon shuts down cleanly: exit 0, socket unlinked, and
#       no leaked lock files or .tmp-* temps in the store,
#   (d) a restarted daemon over the same store serves the figure
#       warm — zero fast-forward instructions, zero recomputed
#       intervals, byte-identical body.
# Records the cold and warm request latencies in BENCH_serve.json.
#
# Usage: scripts/bench_serve.sh [output.json]
#   DCA_BIN  dca binary          (default target/release/dca)
#   SCALE    figure scale        (default paper)
#   CLIENTS  concurrent clients  (default 4)
set -euo pipefail

OUT="${1:-BENCH_serve.json}"
BIN="${DCA_BIN:-target/release/dca}"
SCALE="${SCALE:-paper}"
N="${CLIENTS:-4}"
TMP="$(mktemp -d)"
SOCK="$TMP/dca.sock"
STORE="$TMP/store"
SRV=""
cleanup() {
  [ -n "$SRV" ] && kill "$SRV" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

[ -x "$BIN" ] || { echo "error: $BIN not built (cargo build --release -p dca-cli)" >&2; exit 1; }

start_daemon() {
  "$BIN" serve --listen "$SOCK" --store-dir "$STORE" -q &
  SRV=$!
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return
    sleep 0.1
  done
  echo "FAIL: daemon did not bind $SOCK" >&2
  exit 1
}

stop_daemon() {
  "$BIN" client --addr "$SOCK" --shutdown -q
  if ! wait "$SRV"; then
    echo "FAIL: daemon exited non-zero" >&2
    exit 1
  fi
  SRV=""
  if [ -e "$SOCK" ]; then
    echo "FAIL: daemon left its socket file behind" >&2
    exit 1
  fi
}

# ---- cold: N concurrent clients, one computation ---------------------
start_daemon
T0=$(date +%s%N)
pids=()
for i in $(seq 1 "$N"); do
  "$BIN" client --addr "$SOCK" --figure sampling \
    --out "$TMP/cold-$i.md" --json-out "$TMP/cold-$i.json" -q \
    -- --scale "$SCALE" &
  pids+=("$!")
done
for p in "${pids[@]}"; do wait "$p"; done
T1=$(date +%s%N)

# (a) every subscriber saw the same bytes.
for i in $(seq 2 "$N"); do
  if ! cmp -s "$TMP/cold-1.md" "$TMP/cold-$i.md"; then
    echo "FAIL: client $i's report differs from client 1's" >&2
    diff "$TMP/cold-1.md" "$TMP/cold-$i.md" >&2 || true
    exit 1
  fi
done

# (b) one computation: the other N-1 requests coalesced onto it.
DEDUP=$("$BIN" client --addr "$SOCK" --stats \
  | grep -o '"dedup_hits": [0-9]*' | grep -o '[0-9]*$')
if [ "$DEDUP" -ne $((N - 1)) ]; then
  echo "FAIL: expected $((N - 1)) dedup hits for $N identical requests, got $DEDUP" >&2
  exit 1
fi

# (c) clean shutdown, nothing leaked in the store.
stop_daemon
LEAKED=$(find "$STORE" \( -name '*.lock' -o -name '.tmp-*' \) 2>/dev/null | wc -l)
if [ "$LEAKED" -ne 0 ]; then
  echo "FAIL: $LEAKED leaked lock/temp file(s) after shutdown:" >&2
  find "$STORE" \( -name '*.lock' -o -name '.tmp-*' \) >&2
  exit 1
fi

# ---- warm: a restarted daemon serves from the store ------------------
start_daemon
T2=$(date +%s%N)
"$BIN" client --addr "$SOCK" --figure sampling \
  --out "$TMP/warm.md" --json-out "$TMP/warm.json" -q \
  -- --scale "$SCALE"
T3=$(date +%s%N)
stop_daemon

# (d) warm means warm: no fast-forward, no recompute, same bytes.
for want in '"warm": true' '"ff_insts": 0' '"intervals_computed": 0'; do
  if ! grep -qF "$want" "$TMP/warm.json"; then
    echo "FAIL: warm request summary lacks $want:" >&2
    cat "$TMP/warm.json" >&2
    exit 1
  fi
done
if ! cmp -s "$TMP/cold-1.md" "$TMP/warm.md"; then
  echo "FAIL: warm report differs from the cold one" >&2
  diff "$TMP/cold-1.md" "$TMP/warm.md" >&2 || true
  exit 1
fi

read -r COLD_MS WARM_MS <<<"$(awk -v c=$((T1 - T0)) -v w=$((T3 - T2)) \
  'BEGIN { printf "%.1f %.1f", c / 1e6, w / 1e6 }')"
cat >"$OUT" <<JSON
{
  "benchmark": "dca serve (figure sampling --scale $SCALE, $N concurrent clients)",
  "clients": $N,
  "cold_latency_ms": $COLD_MS,
  "warm_latency_ms": $WARM_MS,
  "dedup_hits": $DEDUP,
  "reports_byte_identical": true,
  "warm_zero_recompute": true,
  "clean_shutdown": true
}
JSON
cat "$OUT"
echo "OK: $N clients, 1 computation ($DEDUP coalesced), warm restart served with zero recompute"
