#!/usr/bin/env bash
# Multi-process store stress (ISSUE 6 acceptance): N `figures sampling`
# processes race on one shared --store-dir. The shard locks must elect
# one writer per shard and everyone else must be served from the store,
# so every worker's report is byte-identical to a cold single-process
# reference; afterwards the shared store must verify clean (exit 0),
# hold the sharded ck/ + rs/ layout, and leave no locks behind.
#
# Usage: scripts/stress_store.sh [N]
#   FIGURES_BIN  figures binary  (default target/release/figures)
#   DCA_BIN      dca binary      (default target/release/dca)
set -euo pipefail

N="${1:-4}"
FIGURES_BIN="${FIGURES_BIN:-$PWD/target/release/figures}"
DCA_BIN="${DCA_BIN:-$PWD/target/release/dca}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

for bin in "$FIGURES_BIN" "$DCA_BIN"; do
  [ -x "$bin" ] || { echo "error: $bin not built (cargo build --release)" >&2; exit 1; }
done

# Small sampled run: big enough to persist checkpoint and result
# shards, small enough that N copies finish in seconds.
ARGS=(sampling --scale smoke --max-insts 40000 --sample-period 10000
      --sample-warmup 1000 --sample-interval 2000)

# Cold single-process reference against its own store.
mkdir -p "$TMP/ref"
(cd "$TMP/ref" && "$FIGURES_BIN" "${ARGS[@]}" --store-dir "$TMP/ref-store" >log 2>&1)

# N workers, each in its own working directory, share one cold store.
STORE="$TMP/shared-store"
pids=()
for i in $(seq 1 "$N"); do
  mkdir -p "$TMP/w$i"
  (cd "$TMP/w$i" && "$FIGURES_BIN" "${ARGS[@]}" --store-dir "$STORE" >log 2>&1) &
  pids+=($!)
done
fail=0
for p in "${pids[@]}"; do wait "$p" || fail=1; done
if [ "$fail" != 0 ]; then
  echo "FAIL: a concurrent worker exited non-zero" >&2
  tail -n 20 "$TMP"/w*/log >&2
  exit 1
fi

for i in $(seq 1 "$N"); do
  if ! cmp -s "$TMP/ref/results/sampling.md" "$TMP/w$i/results/sampling.md"; then
    echo "FAIL: worker $i report differs from the single-process reference" >&2
    diff "$TMP/ref/results/sampling.md" "$TMP/w$i/results/sampling.md" >&2 || true
    exit 1
  fi
done

# The shared store verifies clean (exit 0) with the sharded layout.
"$DCA_BIN" store verify --store-dir "$STORE"
for sub in ck rs; do
  n=$(find "$STORE/$sub" -type f | wc -l)
  [ "$n" -gt 0 ] || { echo "FAIL: $STORE/$sub is empty (sharded layout missing)" >&2; exit 1; }
done
left=$(find "$STORE/locks" -name '*.lock' 2>/dev/null | wc -l)
[ "$left" -eq 0 ] || { echo "FAIL: $left shard lock(s) left behind" >&2; exit 1; }

echo "OK: $N concurrent workers, byte-identical reports, store verifies clean"
